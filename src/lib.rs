//! # MOELA — Multi-Objective Evolutionary/Learning DSE framework
//!
//! This facade crate re-exports the public API of the MOELA reproduction
//! workspace: the core hybrid optimizer ([`moela_core`]), the 3D NoC
//! heterogeneous manycore platform model ([`moela_manycore`]), the workload
//! substrate ([`moela_traffic`]), the thermal substrate ([`moela_thermal`]),
//! the multi-objective optimization toolkit ([`moela_moo`]), the
//! random-forest learner ([`moela_ml`]), and the baseline algorithms
//! ([`moela_baselines`]).
//!
//! ## Quickstart
//!
//! ```
//! use moela::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small 3x3x2 platform running a synthetic BFS-like workload.
//! let platform = PlatformConfig::builder()
//!     .dims(3, 3, 2)
//!     .cpus(2)
//!     .llcs(4)
//!     .planar_links(24)
//!     .tsvs(6)
//!     .build()?;
//! let workload = Workload::synthesize(Benchmark::Bfs, platform.pe_mix(), 7);
//! let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;
//!
//! let config = MoelaConfig::builder()
//!     .population(12)
//!     .generations(5)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let outcome = Moela::new(config, &problem).run(&mut rng);
//! assert!(!outcome.population.is_empty());
//! # Ok(())
//! # }
//! ```

pub use moela_baselines as baselines;
pub use moela_core as core;
pub use moela_manycore as manycore;
pub use moela_ml as ml;
pub use moela_moo as moo;
pub use moela_nocsim as nocsim;
pub use moela_obs as obs;
pub use moela_persist as persist;
pub use moela_serve as serve;
pub use moela_thermal as thermal;
pub use moela_traffic as traffic;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use moela_baselines::{
        Moead, MoeadConfig, MooStage, MooStageConfig, Moos, MoosConfig, Nsga2, Nsga2Config,
    };
    pub use moela_core::{Moela, MoelaConfig, MoelaOutcome};
    pub use moela_manycore::{
        Design, ManycoreProblem, ObjectiveSet, PeKind, PeMix, PlatformConfig,
    };
    pub use moela_moo::hypervolume::hypervolume;
    pub use moela_moo::{Counted, EvalCounter, Problem};
    pub use moela_traffic::{Benchmark, Workload};
}
