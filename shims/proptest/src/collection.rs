//! Collection strategies (`proptest::collection` subset).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// A length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeSpec {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeSpec for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeSpec for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeSpec for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// A strategy generating `Vec`s of an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length is drawn from `len` (a `usize` or a range of `usize`).
pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
