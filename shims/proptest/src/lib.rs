//! Workspace-local, offline subset of the `proptest` API.
//!
//! The build hosts for this repository cannot reach crates.io, so this
//! crate vendors what the workspace's property tests actually use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] implemented for numeric `Range`s, and
//! * [`collection::vec`] for fixed- and ranged-length vectors.
//!
//! Semantics versus upstream: inputs are sampled uniformly at random from
//! a fixed-seed generator (one deterministic stream per test, forked per
//! case) and failures are reported by ordinary panics **without input
//! shrinking**. The failing case index and inputs are embedded in the
//! panic message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A recipe for generating random values of one type.
///
/// Upstream strategies also know how to *shrink*; this offline subset only
/// samples.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Just a constant value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// What one sampled case did; [`prop_assume!`] early-returns `Rejected`.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Passed,
    /// A `prop_assume!` precondition failed; the case is skipped.
    Rejected,
}

/// Drives one test's cases with per-case forked RNG streams.
#[doc(hidden)]
pub struct Runner {
    config: ProptestConfig,
    test_seed: u64,
}

impl Runner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // Stable per-test seed (FNV-1a over the name) so each test draws
        // the same inputs every run, independent of sibling tests.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Self { config, test_seed: seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for one case.
    pub fn case_rng(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.test_seed ^ (u64::from(case) << 32 | 0x5DEE_CE66))
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::Runner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.case_rng(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                    $crate::CaseOutcome::Passed
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} failed for inputs: {}",
                        runner.cases(),
                        inputs.trim_end_matches(", ")
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Skips the current case when its precondition does not hold. Only
/// valid directly inside a [`proptest!`] body (it early-returns from the
/// generated case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return $crate::CaseOutcome::Rejected;
        }
    };
}

/// Asserts a condition inside a property test (panics on failure; no
/// shrinking in this offline subset).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 0usize..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips_rejected_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_lengths_honor_the_spec(
            fixed in crate::collection::vec(0u8..5, 4),
            ranged in crate::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert!(fixed.iter().all(|&v| v < 5));
        }

        #[test]
        fn nested_vecs_compose(grid in crate::collection::vec(crate::collection::vec(0.0f64..1.0, 3), 1..5)) {
            prop_assert!(!grid.is_empty() && grid.len() < 5);
            prop_assert!(grid.iter().all(|row| row.len() == 3));
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        let a = super::Runner::new(ProptestConfig::with_cases(4), "demo");
        let b = super::Runner::new(ProptestConfig::with_cases(4), "demo");
        let s: Vec<f64> = (0..4).map(|c| (0.0f64..1.0).generate(&mut a.case_rng(c))).collect();
        let t: Vec<f64> = (0..4).map(|c| (0.0f64..1.0).generate(&mut b.case_rng(c))).collect();
        assert_eq!(s, t);
    }
}
