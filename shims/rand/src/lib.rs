//! Workspace-local, dependency-free subset of the `rand` 0.8 API.
//!
//! The build hosts for this repository have no access to crates.io, so the
//! workspace vendors the slice of `rand` it actually uses: [`RngCore`],
//! [`Rng`] (`gen_range`/`gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — small, fast, and deterministic across platforms, which is
//! all the workspace requires (every experiment fixes its seeds). It is
//! **not** the ChaCha12 stream of upstream `StdRng`, so absolute sequences
//! differ from crates.io `rand`; nothing in this workspace depends on the
//! upstream sequences.

/// The core of a random number generator: a source of random words.
///
/// Object-safe, mirroring `rand::RngCore`, so optimizers can thread
/// `&mut dyn RngCore` through trait objects.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit = unit_f64(rng) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// A uniform draw from `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must lie in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64();
                for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                    *b = s;
                }
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for checkpointing. Feeding
        /// the returned array to [`StdRng::from_state`] yields a generator
        /// that continues the stream exactly where this one stands.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]. An all-zero state (a xoshiro fixed point,
        /// never produced by a live generator) is nudged exactly as
        /// [`SeedableRng::from_seed`] nudges it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self { s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3] };
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let s1: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let s3: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(0..=4);
            assert!((0..=4).contains(&i));
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits} hits for p = 0.3");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle staying sorted is ~1/20!");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0..10);
        assert!(v < 10);
        let mut reborrow: &mut dyn RngCore = dynamic;
        let mut items = [1, 2, 3, 4];
        items.shuffle(&mut reborrow);
        // Just exercise gen_bool through the trait object; any outcome is fine.
        let _ = reborrow.gen_bool(0.5);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn from_state_nudges_the_all_zero_fixed_point() {
        let mut rng = StdRng::from_state([0; 4]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
