//! Workspace-local, offline subset of the `criterion` 0.5 API.
//!
//! The build hosts for this repository cannot reach crates.io, so this
//! crate provides the pieces the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock sampler.
//!
//! Versus upstream: no statistical analysis, plots, or baselines. Each
//! benchmark runs a short warm-up, then `sample_size` timed samples with
//! an iteration count chosen so a sample lasts roughly
//! [`TARGET_SAMPLE_TIME`]; the median, minimum, and maximum per-iteration
//! times are printed to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Warm-up budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(300);
/// Rough wall-clock target for one timed sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// How per-iteration inputs are sized in [`Bencher::iter_batched`].
/// The sampler here runs one setup per routine call regardless, so the
/// variants only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per sample.
    SmallInput,
    /// Large inputs: upstream batches few per sample.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver (upstream `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (consuming, to
    /// support `Criterion::default().sample_size(n)` in `config =`
    /// expressions).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (upstream emits summary artifacts here; this shim
    /// has nothing left to do).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; measures the routine it is given.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = black_box(setup());
            let start = Instant::now();
            let out = routine(input);
            elapsed += start.elapsed();
            black_box(out);
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm up and estimate the per-iteration cost from one-iteration
    // samples so the timed phase can pick a sensible batch size.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    let mut per_iter_estimate = Duration::from_nanos(1);
    while warmup_start.elapsed() < WARMUP_TIME && warmup_iters < 1_000_000 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_estimate = b.elapsed.max(Duration::from_nanos(1));
        warmup_iters += 1;
    }

    let iters_per_sample = (TARGET_SAMPLE_TIME.as_nanos() / per_iter_estimate.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    println!(
        "{id:<48} time: [{} {} {}]  ({sample_size} samples x {iters_per_sample} iters)",
        format_ns(lo),
        format_ns(median),
        format_ns(hi),
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function; supports both the positional form
/// `criterion_group!(name, target, ...)` and the configured form
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
/// Accepts (and ignores) the CLI arguments `cargo bench` forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
    }

    criterion_group!(positional, trivial);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(5);
        targets = trivial
    }

    #[test]
    fn groups_run_without_panicking() {
        positional();
        configured();
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
            calls += 1;
        });
        group.finish();
        assert!(calls > 0);
    }
}
