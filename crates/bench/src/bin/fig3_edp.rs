//! Regenerates **Fig. 3**: the EDP overhead of MOEA/D's and MOOS's
//! selected designs relative to MOELA's, per application, in the
//! 5-objective scenario.
//!
//! Selection rule (paper §V.D): from each algorithm's final population,
//! set a temperature threshold 5 % above that population's coolest design,
//! then pick the lowest-EDP design within the threshold (or the coolest
//! design if none qualifies). EDP comes from the analytic model of
//! `moela-traffic::edp` — the gem5-gpu re-simulation substitute.
//!
//! Run with:
//! `cargo run -p moela-bench --release --bin fig3_edp [-- --budget N --seeds a,b]`

use moela_bench::{build_cell, mean, run_algo, Algo, HarnessConfig};
use moela_manycore::{Design, ManycoreProblem, ObjectiveSet};
use moela_moo::run::RunResult;
use moela_nocsim::{SimConfig, Simulator};
use moela_traffic::edp::EdpModel;
use moela_traffic::Benchmark;

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Fig. 3 reproduction — EDP overhead vs MOELA, 5 objectives (budget {} evals, seeds {:?})",
        cfg.budget, cfg.seeds
    );
    println!();
    let header: Vec<String> =
        ["App", "MOEA/D overhead", "MOOS overhead", "MOELA EDP", "MOELA peak T"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    println!("{}", moela_bench::format_row(&header, &widths));

    let rows = moela_bench::parallel_map(cfg.apps.clone(), |app| {
        let mut per_seed: Vec<(f64, f64, f64, f64)> = Vec::new();
        for &seed in &cfg.seeds {
            let cell = build_cell(app, ObjectiveSet::Five, 200, seed);
            let model = EdpModel::new(app);
            let moela = run_algo(&cell, Algo::Moela, &cfg, seed);
            let moead = run_algo(&cell, Algo::Moead, &cfg, seed);
            let moos = run_algo(&cell, Algo::Moos, &cfg, seed);
            let (edp_moela, t_moela) = select_design(&cell.problem, &model, &moela, cfg.simulate);
            let (edp_moead, _) = select_design(&cell.problem, &model, &moead, cfg.simulate);
            let (edp_moos, _) = select_design(&cell.problem, &model, &moos, cfg.simulate);
            per_seed.push((
                edp_moead / edp_moela - 1.0,
                edp_moos / edp_moela - 1.0,
                edp_moela,
                t_moela,
            ));
        }
        (app, per_seed)
    });
    let mut moead_overheads = Vec::new();
    let mut moos_overheads = Vec::new();
    for (app, per_seed) in rows {
        let moead_o = mean(&per_seed.iter().map(|r| r.0).collect::<Vec<_>>());
        let moos_o = mean(&per_seed.iter().map(|r| r.1).collect::<Vec<_>>());
        let edp = mean(&per_seed.iter().map(|r| r.2).collect::<Vec<_>>());
        let temp = mean(&per_seed.iter().map(|r| r.3).collect::<Vec<_>>());
        moead_overheads.push(moead_o);
        moos_overheads.push(moos_o);
        println!(
            "{}",
            moela_bench::format_row(
                &[
                    app.name().to_owned(),
                    format!("{:+.2}%", moead_o * 100.0),
                    format!("{:+.2}%", moos_o * 100.0),
                    format!("{edp:.3e}"),
                    format!("{temp:.1} K"),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        moela_bench::format_row(
            &[
                "Average".to_owned(),
                format!("{:+.2}%", mean(&moead_overheads) * 100.0),
                format!("{:+.2}%", mean(&moos_overheads) * 100.0),
                String::new(),
                String::new(),
            ],
            &widths
        )
    );
    println!("\npaper's shape: overheads ≥ 0 (up to 7.7 %), averaging 3–4 %");
}

/// The paper's Fig. 3 selection: lowest EDP within the +5 % peak-temperature
/// threshold of this population (coolest design as fallback). Returns
/// `(edp, peak_temperature)`. With `simulate`, the latency/congestion
/// inputs of the EDP model come from the flit-level simulator instead of
/// the analytic network statistics.
fn select_design(
    problem: &ManycoreProblem,
    model: &EdpModel,
    result: &RunResult<Design>,
    simulate: bool,
) -> (f64, f64) {
    let scored: Vec<(f64, f64)> = result
        .front()
        .into_iter()
        .map(|(design, _)| {
            let full = problem.evaluate_full(&design);
            let network = if simulate {
                let sim = Simulator::new(problem, &design, SimConfig::default());
                sim.run(20_000)
                    .to_network_stats(full.network.network_energy_rate, full.network.total_pe_power)
            } else {
                full.network
            };
            (model.edp(&network), full.peak_temperature)
        })
        .collect();
    let t_min = scored.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let threshold = t_min * 1.05;
    scored
        .iter()
        .filter(|(_, t)| *t <= threshold)
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .copied()
        .unwrap_or_else(|| {
            scored.iter().min_by(|a, b| a.1.total_cmp(&b.1)).copied().expect("front is non-empty")
        })
}

/// Kept so `--apps` validation logic stays exercised even when the binary
/// is run with no arguments in CI smoke tests.
#[allow(dead_code)]
fn all_apps() -> [Benchmark; 7] {
    Benchmark::ALL
}
