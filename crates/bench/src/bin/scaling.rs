//! System-size scaling study (extension).
//!
//! The paper motivates MOELA partly by the claim (§II.B) that prior
//! ML-guided searches' "solution quality … deteriorates as we scale up
//! system size and the number of objectives". This binary measures it:
//! MOELA, MOEA/D and MOOS at a fixed evaluation budget on three platforms
//! of increasing size, reporting final PHV per algorithm and the gain of
//! MOELA over each baseline.
//!
//! Run with:
//! `cargo run -p moela-bench --release --bin scaling [-- --budget N --seeds a,b]`

use moela_bench::{mean, run_algo, Algo, Cell, HarnessConfig};
use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::hypervolume::hv_gain;
use moela_moo::normalize::Normalizer;
use moela_moo::Problem;
use moela_traffic::{Benchmark, Workload};
use rand::SeedableRng;

/// The platforms under test: name, grid, CPU/LLC counts, link budgets.
#[allow(clippy::type_complexity)]
const PLATFORMS: [(&str, (usize, usize, usize), usize, usize, usize, usize); 3] = [
    // (label, (nx, ny, layers), cpus, llcs, planar, tsvs)
    ("4x4x4 (64 tiles, paper)", (4, 4, 4), 8, 16, 96, 48),
    ("6x6x3 (108 tiles)", (6, 6, 3), 12, 24, 180, 72),
    ("8x8x2 (128 tiles)", (8, 8, 2), 16, 32, 224, 64),
];

fn main() {
    let cfg = HarnessConfig::from_args();
    let app = Benchmark::Hot;
    println!(
        "scaling study — final PHV on {app}, 5 objectives, budget {} evals, seeds {:?}\n",
        cfg.budget, cfg.seeds
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "platform", "MOELA", "MOEA/D", "MOOS", "vs MOEA/D", "vs MOOS"
    );

    let rows = moela_bench::parallel_map(PLATFORMS.to_vec(), |entry| {
        let (label, (nx, ny, layers), cpus, llcs, planar, tsvs) = entry;
        let mut phv = [Vec::new(), Vec::new(), Vec::new()];
        for &seed in &cfg.seeds {
            let platform = PlatformConfig::builder()
                .dims(nx, ny, layers)
                .cpus(cpus)
                .llcs(llcs)
                .planar_links(planar)
                .tsvs(tsvs)
                .build()
                .expect("scaling platforms are feasible");
            let workload = Workload::synthesize(app, platform.pe_mix(), seed);
            let problem =
                ManycoreProblem::new(platform, workload, ObjectiveSet::Five).expect("consistent");
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let corpus: Vec<Vec<f64>> =
                (0..200).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
            let normalizer = Normalizer::fit(&corpus);
            let cell = Cell { app, set: ObjectiveSet::Five, problem, normalizer };
            for (slot, algo) in [Algo::Moela, Algo::Moead, Algo::Moos].iter().enumerate() {
                let out = run_algo(&cell, *algo, &cfg, seed);
                phv[slot].push(out.phv(&cell.normalizer));
            }
        }
        (label, phv.map(|v| mean(&v)))
    });

    for (label, [moela, moead, moos]) in rows {
        println!(
            "{:<26} {:>10.4} {:>10.4} {:>10.4} {:>13.1}% {:>11.1}%",
            label,
            moela,
            moead,
            moos,
            hv_gain(moela, moead) * 100.0,
            hv_gain(moela, moos) * 100.0
        );
    }
    println!("\npaper's claim (§II.B): the ML-guided local-search baselines degrade");
    println!("with system size; MOELA's hybrid loop should hold its advantage.");
}
