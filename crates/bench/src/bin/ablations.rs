//! Ablation study of MOELA's design choices (§IV.A of the paper plus the
//! knobs DESIGN.md calls out):
//!
//! * **ordering** — local-search-first (the paper's choice) vs EA-first;
//! * **ML guidance** — learned start selection vs always-random starts
//!   (`iter_early = ∞`);
//! * **`n_local`** — how many local searches run per iteration;
//! * **training-set cap** — the paper's 10 K cap vs a tiny 200-sample cap.
//!
//! Each variant runs on the same cell (app, 5 objectives, shared
//! normalizer and budget); the score is the final PHV.
//!
//! Run with:
//! `cargo run -p moela-bench --release --bin ablations [-- --budget N --seeds a,b]`

use moela_bench::{build_cell, mean, HarnessConfig};
use moela_core::{Moela, MoelaConfig, MoelaConfigBuilder};
use moela_manycore::ObjectiveSet;
use moela_traffic::Benchmark;
use rand::SeedableRng;

fn main() {
    let mut cfg = HarnessConfig::from_args();
    if cfg.apps.len() > 2 {
        // Ablations don't need the full app matrix by default.
        cfg.apps = vec![Benchmark::Bfs, Benchmark::Hot];
    }
    println!(
        "MOELA ablations — final PHV on 5 objectives (budget {} evals, seeds {:?})\n",
        cfg.budget, cfg.seeds
    );

    #[allow(clippy::type_complexity)]
    let variants: Vec<(&str, Box<dyn Fn(MoelaConfigBuilder) -> MoelaConfigBuilder>)> = vec![
        ("baseline (LS-first, ML on)", Box::new(|b| b)),
        ("EA-first ordering", Box::new(|b| b.ea_first(true))),
        ("no ML guidance", Box::new(|b| b.iter_early(usize::MAX / 2))),
        ("n_local = 1", Box::new(|b| b.n_local(1))),
        ("n_local = 8", Box::new(|b| b.n_local(8))),
        ("train cap = 200", Box::new(|b| b.train_cap(200))),
    ];

    let header: Vec<String> = std::iter::once("variant".to_owned())
        .chain(cfg.apps.iter().map(|a| a.name().to_owned()))
        .collect();
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(28)).collect();
    println!("{}", moela_bench::format_row(&header, &widths));

    for (name, tweak) in &variants {
        let mut row = vec![(*name).to_owned()];
        for &app in &cfg.apps {
            let mut phvs = Vec::new();
            for &seed in &cfg.seeds {
                let cell = build_cell(app, ObjectiveSet::Five, 200, seed);
                let builder = MoelaConfig::builder()
                    .population(cfg.population)
                    .generations(usize::MAX / 2)
                    .trace_normalizer(cell.normalizer.clone())
                    .max_evaluations(cfg.budget)
                    .time_budget(cfg.time_guard);
                let config = tweak(builder).build().expect("ablation config is valid");
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let out = Moela::new(config, &cell.problem).run(&mut rng);
                phvs.push(out.phv(&cell.normalizer));
            }
            row.push(format!("{:.4}", mean(&phvs)));
        }
        println!("{}", moela_bench::format_row(&row, &widths));
    }
    println!("\npaper's claim (§IV.A): LS-before-EA ordering gives the best results");
}
