//! Regenerates **Table II**: the PHV gain of MOELA over MOEA/D and MOOS at
//! the stop budget, per application and objective count.
//!
//! Gain = `(PHV_MOELA − PHV_baseline) / PHV_baseline`, both fronts scored
//! under the cell's shared corpus normalizer.
//!
//! Run with:
//! `cargo run -p moela-bench --release --bin table2_phv [-- --budget N --seeds a,b]`

use moela_bench::{build_cell, mean, run_algo, Algo, HarnessConfig};
use moela_moo::hypervolume::hv_gain;

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Table II reproduction — PHV gain of MOELA at T_stop (budget {} evals, seeds {:?})",
        cfg.budget, cfg.seeds
    );
    println!();

    let mut header = vec!["App".to_owned()];
    for baseline in [Algo::Moead, Algo::Moos] {
        for set in &cfg.sets {
            header.push(format!("{} {}", baseline.name(), set));
        }
    }
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(10)).collect();
    println!("{}", moela_bench::format_row(&header, &widths));

    let rows = moela_bench::parallel_map(cfg.apps.clone(), |app| {
        let mut values = Vec::new();
        for baseline in [Algo::Moead, Algo::Moos] {
            for &set in &cfg.sets {
                let mut gains = Vec::new();
                for &seed in &cfg.seeds {
                    let cell = build_cell(app, set, 200, seed);
                    let moela = run_algo(&cell, Algo::Moela, &cfg, seed);
                    let other = run_algo(&cell, baseline, &cfg, seed);
                    gains.push(hv_gain(moela.phv(&cell.normalizer), other.phv(&cell.normalizer)));
                }
                values.push(mean(&gains));
            }
        }
        (app, values)
    });
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfg.sets.len() * 2];
    for (app, values) in rows {
        let mut row = vec![app.name().to_owned()];
        for (col, &g) in values.iter().enumerate() {
            columns[col].push(g);
            row.push(format!("{:+.1}%", g * 100.0));
        }
        println!("{}", moela_bench::format_row(&row, &widths));
    }

    let mut avg_row = vec!["Average".to_owned()];
    for col in &columns {
        avg_row.push(format!("{:+.1}%", mean(col) * 100.0));
    }
    println!("{}", moela_bench::format_row(&avg_row, &widths));
    println!("\npaper's shape: gains positive everywhere, growing with objective count");
}
