//! Regenerates **Table I**: the speed-up of MOELA relative to MOEA/D and
//! MOOS, per application and per objective count.
//!
//! For each baseline we detect its convergence point (PHV improvement
//! below 0.5 % over 5 trace points, the paper's criterion), then measure
//! how many evaluations MOELA needs to reach the same PHV. Speed-up is
//! the ratio of the two evaluation counts. Cells print `<1` when MOELA
//! never reached the baseline's converged quality within the budget.
//!
//! Run with:
//! `cargo run -p moela-bench --release --bin table1_speedup [-- --budget N --seeds a,b]`

use moela_bench::{build_cell, geometric_mean, run_algo, speedup, Algo, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Table I reproduction — speed-up of MOELA (budget {} evals, population {}, seeds {:?})",
        cfg.budget, cfg.population, cfg.seeds
    );
    println!("clock = objective evaluations; see DESIGN.md §3 for the substitution rationale\n");

    let mut header = vec!["App".to_owned()];
    for baseline in [Algo::Moead, Algo::Moos] {
        for set in &cfg.sets {
            header.push(format!("{} {}", baseline.name(), set));
        }
    }
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(10)).collect();
    println!("{}", moela_bench::format_row(&header, &widths));

    let rows = moela_bench::parallel_map(cfg.apps.clone(), |app| {
        let mut values = Vec::new();
        for baseline in [Algo::Moead, Algo::Moos] {
            for &set in &cfg.sets {
                let mut ratios = Vec::new();
                for &seed in &cfg.seeds {
                    let cell = build_cell(app, set, 200, seed);
                    let moela = run_algo(&cell, Algo::Moela, &cfg, seed);
                    let other = run_algo(&cell, baseline, &cfg, seed);
                    match speedup(&moela, &other) {
                        Some((_, _, s)) => ratios.push(s),
                        None => ratios.push(0.5), // never caught up: count as <1×
                    }
                }
                values.push(geometric_mean(&ratios));
            }
        }
        (app, values)
    });
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfg.sets.len() * 2];
    for (app, values) in rows {
        let mut row = vec![app.name().to_owned()];
        for (col, &s) in values.iter().enumerate() {
            columns[col].push(s);
            row.push(if s < 1.0 { "<1".to_owned() } else { format!("{s:.2}") });
        }
        println!("{}", moela_bench::format_row(&row, &widths));
    }

    let mut avg_row = vec!["Average".to_owned()];
    for col in &columns {
        let s = geometric_mean(col);
        avg_row.push(if s < 1.0 { "<1".to_owned() } else { format!("{s:.2}") });
    }
    println!("{}", moela_bench::format_row(&avg_row, &widths));
    println!("\npaper's shape: MOELA ≥ 1× everywhere, averages 8.9–121× (Table I)");
}
