//! The MOELA experiment harness: shared machinery behind the binaries that
//! regenerate every table and figure of the paper.
//!
//! | Paper artifact | Binary |
//! |----------------|--------|
//! | Table I (speed-up of MOELA vs MOEA/D, MOOS) | `table1_speedup` |
//! | Table II (PHV gain at the stop budget)      | `table2_phv`     |
//! | Fig. 3 (EDP overhead of the baselines)      | `fig3_edp`       |
//! | §IV design-choice ablations                 | `ablations`      |
//!
//! ## The clock
//!
//! The paper measures wall-clock hours on a fixed server; this
//! reproduction's primary clock is the **number of objective evaluations**
//! — identical work units regardless of host — with wall-clock seconds
//! reported alongside. Pass `--paper-scale` for the paper's `N = 50`,
//! `gen = 1000` parameterization (hours of compute); the default budget
//! regenerates every table in minutes.
//!
//! ## Comparability
//!
//! All algorithms on one `(app, M)` cell share: the same synthesized
//! workload, the same evaluation budget, the same RNG seed, and one
//! normalizer fitted to a pre-sampled random-design corpus, so PHV values
//! (and therefore speed-ups and gains) are directly comparable.

use std::time::Duration;

use rand::SeedableRng;

use moela_baselines::{Moead, MoeadConfig, Moos, MoosConfig};
use moela_core::{Moela, MoelaConfig};
use moela_manycore::{Design, ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::normalize::Normalizer;
use moela_moo::run::{convergence_point, evaluations_to_reach, RunResult};
use moela_moo::Problem;
use moela_traffic::{Benchmark, Workload};

/// Harness-wide settings, parsed from the command line.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Objective-evaluation budget per run.
    pub budget: u64,
    /// Population size shared by the population-based algorithms.
    pub population: usize,
    /// RNG seeds to average over.
    pub seeds: Vec<u64>,
    /// Applications to run.
    pub apps: Vec<Benchmark>,
    /// Objective stacks to run.
    pub sets: Vec<ObjectiveSet>,
    /// Wall-clock guard per run (prevents a mis-sized budget from hanging
    /// a table regeneration).
    pub time_guard: Duration,
    /// Score Fig.-3 designs with the flit-level simulator instead of the
    /// analytic network statistics.
    pub simulate: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            budget: 4_000,
            population: 24,
            seeds: vec![11],
            apps: Benchmark::TABLED.to_vec(),
            sets: ObjectiveSet::ALL.to_vec(),
            time_guard: Duration::from_secs(120),
            simulate: false,
        }
    }
}

impl HarnessConfig {
    /// Parses harness flags:
    ///
    /// * `--budget N` — evaluations per run (default 4000);
    /// * `--population N` — population size (default 24);
    /// * `--seeds a,b,c` — seeds to average over (default `11`);
    /// * `--apps BFS,BP,…` — subset of applications;
    /// * `--paper-scale` — the paper's `N = 50`, `gen = 1000` scale
    ///   (≈ 150 K evaluations per run; expect hours for a full table);
    /// * `--simulate` — Fig. 3 only: score final designs with the
    ///   flit-level simulator instead of the analytic network model.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or unparsable values.
    pub fn from_args() -> Self {
        let mut cfg = HarnessConfig::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--budget" => {
                    cfg.budget = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--budget needs an integer"));
                }
                "--population" => {
                    cfg.population = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--population needs an integer"));
                }
                "--seeds" => {
                    let list = args.next().unwrap_or_else(|| panic!("--seeds needs a list"));
                    cfg.seeds = list
                        .split(',')
                        .map(|v| v.trim().parse().expect("seed must be an integer"))
                        .collect();
                }
                "--apps" => {
                    let list = args.next().unwrap_or_else(|| panic!("--apps needs a list"));
                    cfg.apps = list
                        .split(',')
                        .map(|name| {
                            Benchmark::ALL
                                .into_iter()
                                .find(|b| b.name().eq_ignore_ascii_case(name.trim()))
                                .unwrap_or_else(|| panic!("unknown app {name}"))
                        })
                        .collect();
                }
                "--simulate" => cfg.simulate = true,
                "--paper-scale" => {
                    cfg.population = 50;
                    // N=50 × gen=1000 EA offspring plus local searches.
                    cfg.budget = 150_000;
                    cfg.time_guard = Duration::from_secs(48 * 3600);
                }
                other => panic!(
                    "unknown flag {other}; known: --budget --population --seeds --apps \
                     --paper-scale --simulate"
                ),
            }
        }
        cfg
    }
}

/// One `(application, objective stack)` experimental cell: the problem,
/// its corpus-fitted normalizer, and bookkeeping.
pub struct Cell {
    /// The application under test.
    pub app: Benchmark,
    /// The objective stack.
    pub set: ObjectiveSet,
    /// The posed design problem.
    pub problem: ManycoreProblem,
    /// Normalizer fitted on a shared random corpus.
    pub normalizer: Normalizer,
}

/// Builds the experimental cell for `(app, set)`: the paper platform, the
/// synthesized workload, and a normalizer fitted to `corpus` random
/// designs.
pub fn build_cell(app: Benchmark, set: ObjectiveSet, corpus: usize, seed: u64) -> Cell {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(app, platform.pe_mix(), seed);
    let problem =
        ManycoreProblem::new(platform, workload, set).expect("paper platform is consistent");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let objs: Vec<Vec<f64>> =
        (0..corpus).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
    let normalizer = Normalizer::fit(&objs);
    Cell { app, set, problem, normalizer }
}

/// The algorithms Table I/II compare.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum Algo {
    /// The paper's contribution.
    Moela,
    /// MOEA/D baseline.
    Moead,
    /// MOOS baseline.
    Moos,
}

impl Algo {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Moela => "MOELA",
            Algo::Moead => "MOEA/D",
            Algo::Moos => "MOOS",
        }
    }
}

/// Runs `algo` on the cell at the given budget and seed.
pub fn run_algo(cell: &Cell, algo: Algo, cfg: &HarnessConfig, seed: u64) -> RunResult<Design> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match algo {
        Algo::Moela => {
            let config = MoelaConfig::builder()
                .population(cfg.population)
                .generations(usize::MAX / 2)
                .trace_normalizer(cell.normalizer.clone())
                .max_evaluations(cfg.budget)
                .time_budget(cfg.time_guard)
                .build()
                .expect("harness MOELA config is valid");
            Moela::new(config, &cell.problem).run(&mut rng)
        }
        Algo::Moead => {
            let config = MoeadConfig {
                population: cfg.population,
                generations: usize::MAX / 2,
                trace_normalizer: Some(cell.normalizer.clone()),
                max_evaluations: Some(cfg.budget),
                time_budget: Some(cfg.time_guard),
                ..Default::default()
            };
            Moead::new(config, &cell.problem).run(&mut rng)
        }
        Algo::Moos => {
            let config = MoosConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(cell.normalizer.clone()),
                max_evaluations: Some(cfg.budget),
                time_budget: Some(cfg.time_guard),
                ..Default::default()
            };
            Moos::new(config, &cell.problem).run(&mut rng)
        }
    }
}

/// Table I's speed-up factor on the evaluation clock.
///
/// Finds the baseline's convergence point (first trace point within 0.5 %
/// of its final PHV — the paper's §V.C criterion), then the evaluation
/// count at which MOELA first reaches the same PHV. Returns
/// `(baseline_evals_at_convergence, moela_evals, speedup)`; `None` when
/// MOELA never reaches the baseline's converged quality within its budget
/// (reported as `<1×` by the table binary).
pub fn speedup(moela: &RunResult<Design>, baseline: &RunResult<Design>) -> Option<(u64, u64, f64)> {
    let conv_idx = convergence_point(&baseline.trace, 0.005)?;
    let conv = baseline.trace[conv_idx];
    let moela_evals = evaluations_to_reach(&moela.trace, conv.phv)?;
    if moela_evals == 0 {
        return Some((conv.evaluations, 1, conv.evaluations as f64));
    }
    Some((conv.evaluations, moela_evals, conv.evaluations as f64 / moela_evals as f64))
}

/// Geometric mean of positive values (speed-ups average multiplicatively).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Maps `worker` over `items` on scoped threads (one per item, which the
/// table binaries use at row granularity — at most seven rows), returning
/// results in input order. Plain `std::thread::scope`; no extra runtime.
pub fn parallel_map<T, R, F>(items: Vec<T>, worker: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for item in items {
            handles.push(scope.spawn(|| worker(item)));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("worker panicked"));
        }
    });
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Formats a markdown-ish table row.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::run::TracePoint;

    fn tp(evaluations: u64, phv: f64) -> TracePoint {
        TracePoint { generation: 0, evaluations, elapsed: Duration::ZERO, phv }
    }

    fn result(trace: Vec<TracePoint>) -> RunResult<Design> {
        RunResult { population: Vec::new(), trace, evaluations: 0, elapsed: Duration::ZERO }
    }

    #[test]
    fn speedup_is_ratio_of_evaluation_counts() {
        // Baseline converges at PHV 0.8 after 1000 evals; MOELA reaches
        // 0.8 at 100 evals → speed-up 10×.
        let mut baseline_trace: Vec<TracePoint> =
            (0..10).map(|i| tp(i * 100 + 100, 0.08 * (i + 1) as f64)).collect();
        baseline_trace.extend((0..6).map(|i| tp(1100 + i * 100, 0.8)));
        let moela_trace = vec![tp(50, 0.5), tp(100, 0.85), tp(150, 0.9)];
        let (b, m, s) =
            speedup(&result(moela_trace), &result(baseline_trace)).expect("both converge");
        assert_eq!(m, 100);
        assert!(s > 1.0);
        assert_eq!(b / m, s as u64);
    }

    #[test]
    fn speedup_is_none_when_moela_never_catches_up() {
        let baseline_trace: Vec<TracePoint> = (0..10).map(|i| tp(i * 10, 0.9)).collect();
        let moela_trace = vec![tp(100, 0.5)];
        assert!(speedup(&result(moela_trace), &result(baseline_trace)).is_none());
    }

    #[test]
    fn geometric_mean_of_reciprocals_cancels() {
        let g = geometric_mean(&[2.0, 0.5]);
        assert!((g - 1.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn default_config_covers_the_tabled_apps_and_sets() {
        let cfg = HarnessConfig::default();
        assert_eq!(cfg.apps.len(), 6);
        assert_eq!(cfg.sets.len(), 3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..7).collect::<Vec<i64>>(), |x| x * x);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn build_cell_produces_a_consistent_problem() {
        let cell = build_cell(Benchmark::Bp, ObjectiveSet::Three, 20, 1);
        assert_eq!(cell.problem.objective_count(), 3);
        // The normalizer actually observed the corpus.
        assert!(cell.normalizer.min().iter().all(|v| v.is_finite()));
        assert!(cell.normalizer.max().iter().all(|v| v.is_finite()));
    }
}
