//! Criterion micro-benchmarks for the computational kernels every
//! experiment leans on: routing, objective evaluation, design operators,
//! hypervolume, and random-forest training/prediction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};

use moela_manycore::routing::RoutingTable;
use moela_manycore::Topology;
use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_ml::{Dataset, ForestConfig, RandomForest};
use moela_moo::hypervolume::hypervolume;
use moela_moo::pareto::non_dominated_sort;
use moela_moo::Problem;
use moela_traffic::{Benchmark, Workload};

fn paper_problem(set: ObjectiveSet) -> ManycoreProblem {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(Benchmark::Hot, platform.pe_mix(), 7);
    ManycoreProblem::new(platform, workload, set).expect("paper platform")
}

fn bench_routing(c: &mut Criterion) {
    let problem = paper_problem(ObjectiveSet::Three);
    let dims = *problem.config().dims();
    let params = *problem.config().noc();
    let mesh = Topology::mesh(&dims);
    c.bench_function("routing/all_pairs_mesh_4x4x4", |b| {
        b.iter(|| RoutingTable::build(&dims, &mesh, &params))
    });
}

fn bench_objectives(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for set in [ObjectiveSet::Three, ObjectiveSet::Five] {
        let problem = paper_problem(set);
        let design = problem.random_solution(&mut rng);
        c.bench_function(&format!("objectives/evaluate_{set}"), |b| {
            b.iter(|| problem.evaluate(&design))
        });
    }
}

fn bench_operators(c: &mut Criterion) {
    let problem = paper_problem(ObjectiveSet::Three);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let a = problem.random_solution(&mut rng);
    let b2 = problem.random_solution(&mut rng);
    c.bench_function("operators/random_design", |b| b.iter(|| problem.random_solution(&mut rng)));
    c.bench_function("operators/neighbor_move", |b| b.iter(|| problem.neighbor(&a, &mut rng)));
    c.bench_function("operators/crossover", |b| b.iter(|| problem.crossover(&a, &b2, &mut rng)));
    c.bench_function("operators/features", |b| b.iter(|| problem.features(&a)));
}

fn bench_hypervolume(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for m in [2usize, 3, 5] {
        let points: Vec<Vec<f64>> =
            (0..50).map(|_| (0..m).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let reference = vec![1.1; m];
        c.bench_function(&format!("hypervolume/50pts_{m}d"), |b| {
            b.iter(|| hypervolume(&points, &reference))
        });
    }
    let points: Vec<Vec<f64>> =
        (0..200).map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
    c.bench_function("pareto/non_dominated_sort_200pts_3d", |b| {
        b.iter(|| non_dominated_sort(&points))
    });
}

fn bench_random_forest(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut data = Dataset::new();
    for _ in 0..2000 {
        let x: Vec<f64> = (0..37).map(|_| rng.gen_range(0.0..1.0)).collect();
        let y = x.iter().sum::<f64>() + rng.gen_range(-0.1..0.1);
        data.push(x, y);
    }
    let cfg = ForestConfig { trees: 25, bootstrap_size: Some(512), ..Default::default() };
    c.bench_function("forest/fit_2000x37", |b| {
        b.iter_batched(
            || rand::rngs::StdRng::seed_from_u64(5),
            |mut r| RandomForest::fit(&data, &cfg, &mut r),
            BatchSize::SmallInput,
        )
    });
    let forest = RandomForest::fit(&data, &cfg, &mut rng);
    let query: Vec<f64> = (0..37).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("forest/predict", |b| b.iter(|| forest.predict(&query)));
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_routing, bench_objectives, bench_operators, bench_hypervolume,
              bench_random_forest
}
criterion_main!(kernels);
