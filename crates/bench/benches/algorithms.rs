//! Criterion benchmarks of whole optimizer iterations on the paper
//! platform: cost per fixed evaluation budget for MOELA and each baseline.
//! These quantify the *framework overhead* on top of objective
//! evaluations — the paper's argument for avoiding per-candidate PHV
//! computation (MOOS/MOO-STAGE) shows up directly here.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use moela_baselines::{Moead, MoeadConfig, MooStage, MooStageConfig, Moos, MoosConfig};
use moela_core::{Moela, MoelaConfig};
use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_traffic::{Benchmark, Workload};

const BUDGET: u64 = 600;

fn problem() -> ManycoreProblem {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(Benchmark::Bp, platform.pe_mix(), 3);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Five).expect("paper platform")
}

fn bench_algorithms(c: &mut Criterion) {
    let problem = problem();
    let mut group = c.benchmark_group("algorithms_600_evals_5obj");
    group.sample_size(10);

    group.bench_function("moela", |b| {
        let config = MoelaConfig::builder()
            .population(16)
            .generations(usize::MAX / 2)
            .max_evaluations(BUDGET)
            .build()
            .expect("valid");
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            Moela::new(config.clone(), &problem).run(&mut rng)
        })
    });

    group.bench_function("moead", |b| {
        let config = MoeadConfig {
            population: 16,
            generations: usize::MAX / 2,
            max_evaluations: Some(BUDGET),
            ..Default::default()
        };
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            Moead::new(config.clone(), &problem).run(&mut rng)
        })
    });

    group.bench_function("moos", |b| {
        let config = MoosConfig {
            episodes: usize::MAX / 2,
            max_evaluations: Some(BUDGET),
            ..Default::default()
        };
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            Moos::new(config.clone(), &problem).run(&mut rng)
        })
    });

    group.bench_function("moo_stage", |b| {
        let config = MooStageConfig {
            episodes: usize::MAX / 2,
            max_evaluations: Some(BUDGET),
            ..Default::default()
        };
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            MooStage::new(config.clone(), &problem).run(&mut rng)
        })
    });

    group.finish();
}

criterion_group!(algorithms, bench_algorithms);
criterion_main!(algorithms);
