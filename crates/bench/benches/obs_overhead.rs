//! Criterion benchmark for observability overhead on the batch-evaluation
//! hot path: the guarded evaluator with no obs handle (the disabled
//! default), with an enabled handle draining into a `NullSink`, and the
//! bare `ParallelEvaluator` as the floor.
//!
//! The acceptance bar is that the disabled handle costs <1% over the
//! guarded baseline — disabled telemetry is a single `Option` check per
//! batch, with no allocation, clock read, or lock on the per-candidate
//! path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::fault::FaultConfig;
use moela_moo::{GuardedEvaluator, ParallelEvaluator, Problem};
use moela_obs::{NullSink, Obs, Sink};
use moela_traffic::{Benchmark, Workload};

fn paper_problem() -> ManycoreProblem {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(Benchmark::Hot, platform.pe_mix(), 7);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Five).expect("paper platform")
}

fn bench_obs_overhead(c: &mut Criterion) {
    let problem = paper_problem();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let batch: Vec<_> = (0..48).map(|_| problem.random_solution(&mut rng)).collect();

    let mut group = c.benchmark_group("obs_overhead/manycore_4x4x4_batch48");
    group.sample_size(20);

    let plain = ParallelEvaluator::new(1);
    group.bench_function("parallel_evaluator", |b| {
        b.iter(|| plain.evaluate(black_box(&problem), black_box(&batch)))
    });

    let mut guarded = GuardedEvaluator::new(1, FaultConfig::default());
    group.bench_function("guarded_obs_disabled", |b| {
        b.iter(|| guarded.evaluate(black_box(&problem), black_box(&batch)))
    });

    let mut traced = GuardedEvaluator::new(1, FaultConfig::default());
    let sinks: Vec<Box<dyn Sink>> = vec![Box::new(NullSink)];
    traced.set_obs(Obs::with_sinks(sinks));
    group.bench_function("guarded_obs_null_sink", |b| {
        b.iter(|| traced.evaluate(black_box(&problem), black_box(&batch)))
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
