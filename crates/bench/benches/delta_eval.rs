//! Criterion benches for the incremental move-evaluation fast path:
//! what one neighbor costs scored from scratch versus patched from the
//! base design's cached [`moela_manycore::EvalState`], per move kind.
//!
//! The full-evaluation side runs with the routing cache disabled so it
//! prices a genuinely fresh topology per move (a rewire chain never
//! revisits a fingerprint); the delta side includes the classification
//! diff ([`MoveDelta::between`]), so both sides measure the whole cost
//! their code path pays inside a hill-climbing loop.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use moela_manycore::moves;
use moela_manycore::objectives::Evaluator;
use moela_manycore::topology::TopologyBuilder;
use moela_manycore::{Design, ManycoreProblem, MoveDelta, ObjectiveSet, PlatformConfig};
use moela_moo::Problem;
use moela_thermal::FastThermalModel;
use moela_traffic::{Benchmark, Workload};

fn bench_delta_eval(c: &mut Criterion) {
    let config = PlatformConfig::paper();
    let workload = Workload::synthesize(Benchmark::Hot, config.pe_mix(), 7);
    let problem = ManycoreProblem::new(config.clone(), workload.clone(), ObjectiveSet::Five)
        .expect("paper platform");
    let thermal = FastThermalModel::new(config.thermal().clone());
    let mut cold = Evaluator::new(*config.dims(), *config.noc(), workload.clone(), thermal.clone());
    cold.set_routing_cache_capacity(0);
    let warm = Evaluator::new(*config.dims(), *config.noc(), workload, thermal);

    let mut rng = StdRng::seed_from_u64(9);
    let base = problem.random_solution(&mut rng);
    let state = warm.build_state(&base);

    let swap = loop {
        let n = moves::swap_tiles(config.dims(), config.pe_mix(), &base, &mut rng);
        if matches!(MoveDelta::between(&base, &n), Some(MoveDelta::Swap { .. })) {
            break n;
        }
    };
    let builder = TopologyBuilder::new(
        *config.dims(),
        config.planar_links(),
        config.tsvs(),
        config.noc().max_planar_length,
        config.noc().max_degree,
    );
    let rewire = loop {
        let n =
            moves::rewire_link(config.dims(), &builder, config.noc().max_degree, &base, &mut rng);
        if matches!(MoveDelta::between(&base, &n), Some(MoveDelta::Rewire { .. })) {
            break n;
        }
    };

    let kinds: [(&str, &Design); 2] = [("swap", &swap), ("rewire", &rewire)];
    for (name, next) in kinds {
        c.bench_function(&format!("delta_eval/full_{name}"), |b| b.iter(|| cold.evaluate(next)));
        c.bench_function(&format!("delta_eval/delta_{name}"), |b| {
            b.iter(|| {
                let delta = MoveDelta::between(&base, next).expect("one recognizable move");
                warm.evaluate_delta(&state, &delta).expect("the delta applies")
            })
        });
    }
}

criterion_group! {
    name = delta_eval;
    config = Criterion::default().sample_size(20);
    targets = bench_delta_eval
}
criterion_main!(delta_eval);
