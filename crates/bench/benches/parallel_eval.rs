//! Criterion benchmark for the batch-evaluation engine: one population's
//! worth of 4×4×4 manycore objective evaluations at 1/2/4/8 workers.
//!
//! Bit-identical results are guaranteed at every worker count (verified by
//! the suite's determinism tests), so this bench isolates pure throughput.
//! Speedup tracks the machine's core count — on a single-CPU container the
//! extra workers only add scheduling overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::{ParallelEvaluator, Problem};
use moela_traffic::{Benchmark, Workload};

fn paper_problem() -> ManycoreProblem {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(Benchmark::Hot, platform.pe_mix(), 7);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Five).expect("paper platform")
}

fn bench_parallel_eval(c: &mut Criterion) {
    let problem = paper_problem();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let batch: Vec<_> = (0..48).map(|_| problem.random_solution(&mut rng)).collect();

    let mut group = c.benchmark_group("parallel_eval/manycore_4x4x4_batch48");
    group.sample_size(20);
    for workers in [1usize, 2, 4, 8] {
        let evaluator = ParallelEvaluator::new(workers);
        group.bench_function(&format!("workers_{workers}"), |b| {
            b.iter(|| evaluator.evaluate(black_box(&problem), black_box(&batch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_eval);
criterion_main!(benches);
