//! Design-keyed memoization of objective evaluations.
//!
//! Optimizers revisit solutions constantly — crossover clones, MOEA/D
//! neighborhood repeats, local searches oscillating between states. A
//! [`CachedProblem`] wraps any [`Problem`] whose
//! [`cache_key`](Problem::cache_key) is `Some`, memoizing whole objective
//! vectors in a bounded, thread-safe [`EvalCache`] shared across batch
//! workers.
//!
//! Determinism contract: keys are *exact canonical bytes* of the
//! solution (never hashes), so a hit returns precisely the vector an
//! uncached evaluation would produce — cached and uncached runs are
//! byte-identical at any thread count. Results are only admitted when
//! they have the declared arity and every component is finite, so
//! faulted or corrupted evaluations are never served from the cache; and
//! [`crate::chaos::ChaosProblem`] refuses a cache key outright, so under
//! chaos injection the cache must sit *below* the injector
//! (`Chaos(Cached(inner))`), where it only ever sees clean results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::RngCore;

use crate::problem::Problem;

/// Default number of memoized objective vectors.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 4096;

/// Hit/miss/eviction counters of an [`EvalCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real evaluation.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Slot {
    objectives: Vec<f64>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct MemoState {
    map: HashMap<Vec<u8>, Slot>,
    tick: u64,
}

/// A bounded, thread-safe LRU map from solution keys to objective
/// vectors. Shared (via `Arc`) between every clone of a
/// [`CachedProblem`] and across evaluation worker threads.
#[derive(Debug)]
pub struct EvalCache {
    capacity: usize,
    state: Mutex<MemoState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EvalCache {
    /// An empty cache bounded to `capacity` entries (0 disables storage:
    /// every lookup misses and nothing is retained).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(MemoState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The memoized objectives for `key`, refreshing its LRU position.
    pub fn get(&self, key: &[u8]) -> Option<Vec<f64>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut state = self.state.lock().expect("eval cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.objectives.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes `objectives` under `key`, evicting the least recently
    /// used entry when full. Callers must only insert clean results (see
    /// [`CachedProblem`]); the cache itself does not re-validate.
    pub fn insert(&self, key: Vec<u8>, objectives: Vec<f64>) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("eval cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        if !state.map.contains_key(&key) && state.map.len() >= self.capacity {
            if let Some(victim) =
                state.map.iter().min_by_key(|(_, slot)| slot.last_used).map(|(k, _)| k.clone())
            {
                state.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        state.map.insert(key, Slot { objectives, last_used: tick });
    }
}

/// Wraps a [`Problem`], memoizing [`evaluate`](Problem::evaluate) results
/// in a shared [`EvalCache`]. Transparent for problems without a
/// [`cache_key`](Problem::cache_key); bit-transparent for those with one.
#[derive(Clone, Debug)]
pub struct CachedProblem<P> {
    inner: P,
    cache: Arc<EvalCache>,
}

impl<P> CachedProblem<P> {
    /// Memoizes `inner` into `cache`.
    pub fn new(inner: P, cache: Arc<EvalCache>) -> Self {
        Self { inner, cache }
    }

    /// The shared cache (for counters).
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Borrows the wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Problem> CachedProblem<P> {
    /// Only arity-correct, all-finite vectors are worth memoizing; anything
    /// else (a contained fault, a penalty) must be recomputed every time.
    fn admit(&self, key: Vec<u8>, objectives: &[f64]) {
        if objectives.len() == self.inner.objective_count()
            && objectives.iter().all(|v| v.is_finite())
        {
            self.cache.insert(key, objectives.to_vec());
        }
    }
}

impl<P: Problem> Problem for CachedProblem<P> {
    type Solution = P::Solution;

    fn objective_count(&self) -> usize {
        self.inner.objective_count()
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Self::Solution {
        self.inner.random_solution(rng)
    }

    fn neighbor(&self, s: &Self::Solution, rng: &mut dyn RngCore) -> Self::Solution {
        self.inner.neighbor(s, rng)
    }

    fn crossover(
        &self,
        a: &Self::Solution,
        b: &Self::Solution,
        rng: &mut dyn RngCore,
    ) -> Self::Solution {
        self.inner.crossover(a, b, rng)
    }

    fn evaluate(&self, s: &Self::Solution) -> Vec<f64> {
        match self.inner.cache_key(s) {
            None => self.inner.evaluate(s),
            Some(key) => {
                if let Some(hit) = self.cache.get(&key) {
                    return hit;
                }
                let objectives = self.inner.evaluate(s);
                self.admit(key, &objectives);
                objectives
            }
        }
    }

    fn evaluate_ordinal(&self, s: &Self::Solution, ordinal: u64) -> Vec<f64> {
        match self.inner.cache_key(s) {
            None => self.inner.evaluate_ordinal(s, ordinal),
            Some(key) => {
                if let Some(hit) = self.cache.get(&key) {
                    return hit;
                }
                let objectives = self.inner.evaluate_ordinal(s, ordinal);
                self.admit(key, &objectives);
                objectives
            }
        }
    }

    fn evaluate_neighbor_ordinal(
        &self,
        base: &Self::Solution,
        s: &Self::Solution,
        ordinal: u64,
    ) -> Vec<f64> {
        match self.inner.cache_key(s) {
            None => self.inner.evaluate_neighbor_ordinal(base, s, ordinal),
            Some(key) => {
                if let Some(hit) = self.cache.get(&key) {
                    return hit;
                }
                let objectives = self.inner.evaluate_neighbor_ordinal(base, s, ordinal);
                self.admit(key, &objectives);
                objectives
            }
        }
    }

    fn reserve_ordinals(&self, n: u64) -> u64 {
        self.inner.reserve_ordinals(n)
    }

    fn cache_key(&self, s: &Self::Solution) -> Option<Vec<u8>> {
        self.inner.cache_key(s)
    }

    fn features(&self, s: &Self::Solution) -> Vec<f64> {
        self.inner.features(s)
    }

    fn feature_len(&self) -> usize {
        self.inner.feature_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{Counted, EvalCounter};
    use crate::problems::Zdt;
    use rand::SeedableRng;

    /// A ZDT wrapper with an exact-bytes cache key, so caching activates.
    #[derive(Clone, Debug)]
    struct Keyed(Zdt);

    impl Problem for Keyed {
        type Solution = Vec<f64>;

        fn objective_count(&self) -> usize {
            self.0.objective_count()
        }
        fn random_solution(&self, rng: &mut dyn RngCore) -> Vec<f64> {
            self.0.random_solution(rng)
        }
        fn neighbor(&self, s: &Vec<f64>, rng: &mut dyn RngCore) -> Vec<f64> {
            self.0.neighbor(s, rng)
        }
        fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut dyn RngCore) -> Vec<f64> {
            self.0.crossover(a, b, rng)
        }
        fn evaluate(&self, s: &Vec<f64>) -> Vec<f64> {
            self.0.evaluate(s)
        }
        fn cache_key(&self, s: &Vec<f64>) -> Option<Vec<u8>> {
            Some(s.iter().flat_map(|v| v.to_le_bytes()).collect())
        }
        fn features(&self, s: &Vec<f64>) -> Vec<f64> {
            self.0.features(s)
        }
        fn feature_len(&self) -> usize {
            self.0.feature_len()
        }
    }

    fn solutions(n: usize) -> Vec<Vec<f64>> {
        let keyed = Keyed(Zdt::zdt1(4));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        (0..n).map(|_| keyed.random_solution(&mut rng)).collect()
    }

    #[test]
    fn hits_skip_the_inner_evaluation_and_return_identical_objectives() {
        let counter = EvalCounter::new();
        let p = CachedProblem::new(
            Counted::new(Keyed(Zdt::zdt1(4)), counter.clone()),
            Arc::new(EvalCache::new(16)),
        );
        let xs = solutions(3);
        let first: Vec<_> = xs.iter().map(|x| p.evaluate(x)).collect();
        assert_eq!(counter.count(), 3);
        let second: Vec<_> = xs.iter().map(|x| p.evaluate(x)).collect();
        assert_eq!(counter.count(), 3, "hits must not re-evaluate");
        assert_eq!(first, second, "cached results are bit-identical");
        assert_eq!(p.cache().stats(), CacheStats { hits: 3, misses: 3, evictions: 0 });
    }

    #[test]
    fn a_design_reevaluated_after_eviction_returns_identical_objectives() {
        let p = CachedProblem::new(Keyed(Zdt::zdt1(4)), Arc::new(EvalCache::new(2)));
        let xs = solutions(3);
        let before = p.evaluate(&xs[0]);
        p.evaluate(&xs[1]);
        p.evaluate(&xs[2]); // capacity 2: evicts xs[0] (LRU)
        let stats = p.cache().stats();
        assert!(stats.evictions > 0, "the third insert must evict");
        let after = p.evaluate(&xs[0]);
        assert_eq!(before, after, "post-eviction re-evaluation is bit-identical");
    }

    #[test]
    fn problems_without_a_key_pass_through_untouched() {
        let counter = EvalCounter::new();
        let p = CachedProblem::new(
            Counted::new(Zdt::zdt1(4), counter.clone()),
            Arc::new(EvalCache::new(16)),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = p.random_solution(&mut rng);
        p.evaluate(&x);
        p.evaluate(&x);
        assert_eq!(counter.count(), 2, "no key, no memoization");
        assert_eq!(p.cache().stats(), CacheStats::default());
    }

    #[test]
    fn non_finite_results_are_never_cached() {
        #[derive(Clone, Debug)]
        struct Poison;
        impl Problem for Poison {
            type Solution = u8;
            fn objective_count(&self) -> usize {
                2
            }
            fn random_solution(&self, _rng: &mut dyn RngCore) -> u8 {
                0
            }
            fn neighbor(&self, s: &u8, _rng: &mut dyn RngCore) -> u8 {
                *s
            }
            fn crossover(&self, a: &u8, _b: &u8, _rng: &mut dyn RngCore) -> u8 {
                *a
            }
            fn evaluate(&self, _s: &u8) -> Vec<f64> {
                vec![f64::NAN, 1.0]
            }
            fn cache_key(&self, s: &u8) -> Option<Vec<u8>> {
                Some(vec![*s])
            }
            fn features(&self, _s: &u8) -> Vec<f64> {
                vec![]
            }
            fn feature_len(&self) -> usize {
                0
            }
        }
        let p = CachedProblem::new(Poison, Arc::new(EvalCache::new(16)));
        p.evaluate(&0);
        p.evaluate(&0);
        let stats = p.cache().stats();
        assert_eq!(stats.hits, 0, "NaN results must not be served from cache");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let p = CachedProblem::new(Keyed(Zdt::zdt1(4)), Arc::new(EvalCache::new(0)));
        let xs = solutions(1);
        assert_eq!(p.evaluate(&xs[0]), p.evaluate(&xs[0]));
        let stats = p.cache().stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn the_cache_is_shared_between_clones() {
        let counter = EvalCounter::new();
        let p = CachedProblem::new(
            Counted::new(Keyed(Zdt::zdt1(4)), counter.clone()),
            Arc::new(EvalCache::new(16)),
        );
        let q = p.clone();
        let xs = solutions(1);
        p.evaluate(&xs[0]);
        q.evaluate(&xs[0]);
        assert_eq!(counter.count(), 1, "the clone hits the shared cache");
    }
}
