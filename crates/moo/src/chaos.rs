//! Deterministic fault injection for exercising the containment layer.
//!
//! [`ChaosProblem`] wraps any [`Problem`] and corrupts a seeded,
//! reproducible subset of evaluations: panics, NaN/±Inf objectives,
//! wrong-arity vectors, and artificial slowness. Which evaluations fault
//! is decided purely by `(seed, ordinal)` — the ordinal being the global
//! evaluation sequence number reserved through
//! [`Problem::reserve_ordinals`] — so the fault stream is bit-identical
//! at any thread count and round-trips through checkpoints by persisting
//! a single counter ([`ChaosProblem::ordinal`] /
//! [`ChaosProblem::set_ordinal`]).
//!
//! Plain [`Problem::evaluate`] *also* injects (it reserves one ordinal
//! for itself), so an optimizer path that bypasses the guarded evaluator
//! fails loudly under chaos instead of silently skipping injection —
//! that is exactly what the chaos test matrix relies on to prove every
//! evaluation path is contained.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::RngCore;

use crate::problem::Problem;

/// Per-evaluation fault probabilities, all in `[0, 1]`.
///
/// The four fault kinds are mutually exclusive per evaluation (their
/// probabilities are stacked, so their sum must stay ≤ 1); slowness is
/// drawn independently and composes with a clean evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosSpec {
    /// Probability of an injected panic.
    pub panic: f64,
    /// Probability of a NaN objective coordinate.
    pub nan: f64,
    /// Probability of a ±Inf objective coordinate.
    pub inf: f64,
    /// Probability of a wrong-arity objective vector.
    pub arity: f64,
    /// Probability of an artificial delay (~200 µs).
    pub slow: f64,
}

impl ChaosSpec {
    /// Parses a comma-separated `key=probability` list, e.g.
    /// `panic=0.05,nan=0.02,slow=0.1`. Keys: `panic`, `nan`, `inf`,
    /// `arity`, `slow`; omitted keys default to 0.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = ChaosSpec::default();
        if spec.trim().is_empty() {
            return Err("empty chaos spec (try e.g. 'panic=0.05,nan=0.02')".to_owned());
        }
        for part in spec.split(',') {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec entry '{part}' is not key=probability"))?;
            let p: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("chaos probability '{value}' is not a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("chaos probability {key}={p} is outside [0, 1]"));
            }
            match key.trim() {
                "panic" => out.panic = p,
                "nan" => out.nan = p,
                "inf" => out.inf = p,
                "arity" => out.arity = p,
                "slow" => out.slow = p,
                other => {
                    return Err(format!(
                        "unknown chaos key '{other}' (try: panic, nan, inf, arity, slow)"
                    ))
                }
            }
        }
        let total = out.panic + out.nan + out.inf + out.arity;
        if total > 1.0 {
            return Err(format!("chaos fault probabilities sum to {total} > 1"));
        }
        Ok(out)
    }

    /// `true` if the spec injects at least one fault kind (slowness alone
    /// does not make evaluations fault).
    pub fn injects_faults(&self) -> bool {
        self.panic + self.nan + self.inf + self.arity > 0.0
    }
}

/// Renders the canonical `key=probability` form accepted by
/// [`ChaosSpec::parse`], so a spec round-trips through run manifests.
impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = [
            ("panic", self.panic),
            ("nan", self.nan),
            ("inf", self.inf),
            ("arity", self.arity),
            ("slow", self.slow),
        ];
        let mut first = true;
        for (key, p) in entries {
            if p == 0.0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{key}={p}")?;
            first = false;
        }
        if first {
            // An all-zero spec still has to parse back; pick one key.
            f.write_str("panic=0")?;
        }
        Ok(())
    }
}

const FAULT_SALT: u64 = 0xC4A05;
const SLOW_SALT: u64 = 0x51_0E;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` determined only by `(seed, ordinal, salt)`.
fn unit(seed: u64, ordinal: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(ordinal ^ salt));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Problem`] decorator that injects seeded, ordinal-addressed faults.
///
/// See the [module docs](self) for the determinism story. The wrapper is
/// transparent for everything except evaluation: solution generation,
/// features and objective count delegate unchanged to the inner problem.
#[derive(Debug)]
pub struct ChaosProblem<P> {
    inner: P,
    spec: ChaosSpec,
    seed: u64,
    ordinal: AtomicU64,
}

impl<P> ChaosProblem<P> {
    /// Wraps `inner`, faulting evaluations according to `spec` with the
    /// fault stream keyed by `seed`.
    pub fn new(inner: P, spec: ChaosSpec, seed: u64) -> Self {
        Self { inner, spec, seed, ordinal: AtomicU64::new(0) }
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The next unreserved evaluation ordinal — persist this at a
    /// checkpoint safe point to resume the fault stream bit-identically.
    pub fn ordinal(&self) -> u64 {
        self.ordinal.load(Ordering::SeqCst)
    }

    /// Restores the ordinal counter captured by [`ordinal`](Self::ordinal).
    pub fn set_ordinal(&self, ordinal: u64) {
        self.ordinal.store(ordinal, Ordering::SeqCst);
    }
}

impl<P: Problem> ChaosProblem<P> {
    fn inject(&self, s: &P::Solution, ordinal: u64) -> Vec<f64> {
        self.inject_with(ordinal, || self.inner.evaluate(s))
    }

    /// The injection core, parameterized over how the clean objectives
    /// are produced: the ordinary path evaluates the solution in full,
    /// the neighbor path may delta-evaluate — the fault stream is keyed
    /// purely by `(seed, ordinal)` either way, and the delta contract
    /// guarantees the clean objectives are bit-identical, so both paths
    /// fault identically.
    fn inject_with(&self, ordinal: u64, eval: impl FnOnce() -> Vec<f64>) -> Vec<f64> {
        let u = unit(self.seed, ordinal, FAULT_SALT);
        let mut threshold = self.spec.panic;
        if u < threshold {
            panic!("chaos: injected panic at evaluation ordinal {ordinal}");
        }
        if self.spec.slow > 0.0 && unit(self.seed, ordinal, SLOW_SALT) < self.spec.slow {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let mut objs = eval();
        let m = objs.len().max(1);
        threshold += self.spec.nan;
        if u < threshold {
            objs[ordinal as usize % m] = f64::NAN;
            return objs;
        }
        threshold += self.spec.inf;
        if u < threshold {
            let inf = if ordinal.is_multiple_of(2) { f64::INFINITY } else { f64::NEG_INFINITY };
            objs[ordinal as usize % m] = inf;
            return objs;
        }
        threshold += self.spec.arity;
        if u < threshold {
            // Alternate between one-too-many and one-too-few entries.
            if ordinal.is_multiple_of(2) {
                objs.push(0.0);
            } else {
                objs.pop();
            }
        }
        objs
    }
}

impl<P: Problem> Problem for ChaosProblem<P> {
    type Solution = P::Solution;

    fn objective_count(&self) -> usize {
        self.inner.objective_count()
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Self::Solution {
        self.inner.random_solution(rng)
    }

    fn neighbor(&self, s: &Self::Solution, rng: &mut dyn RngCore) -> Self::Solution {
        self.inner.neighbor(s, rng)
    }

    fn crossover(
        &self,
        a: &Self::Solution,
        b: &Self::Solution,
        rng: &mut dyn RngCore,
    ) -> Self::Solution {
        self.inner.crossover(a, b, rng)
    }

    /// Reserves one ordinal and injects: unguarded call sites fault
    /// loudly under chaos rather than dodging injection.
    fn evaluate(&self, s: &Self::Solution) -> Vec<f64> {
        let ordinal = self.reserve_ordinals(1);
        self.inject(s, ordinal)
    }

    fn evaluate_ordinal(&self, s: &Self::Solution, ordinal: u64) -> Vec<f64> {
        self.inject(s, ordinal)
    }

    fn evaluate_neighbor_ordinal(
        &self,
        base: &Self::Solution,
        s: &Self::Solution,
        ordinal: u64,
    ) -> Vec<f64> {
        self.inject_with(ordinal, || self.inner.evaluate_neighbor_ordinal(base, s, ordinal))
    }

    fn reserve_ordinals(&self, n: u64) -> u64 {
        self.ordinal.fetch_add(n, Ordering::SeqCst)
    }

    /// Chaotic evaluations depend on the ordinal, not just the solution,
    /// so they must never be memoized: deliberately `None` rather than a
    /// delegation to the inner problem. (Memoize *below* chaos instead —
    /// `ChaosProblem::new(CachedProblem::new(..), ..)` — so faulted
    /// results never enter the cache.)
    fn cache_key(&self, _s: &Self::Solution) -> Option<Vec<u8>> {
        None
    }

    fn features(&self, s: &Self::Solution) -> Vec<f64> {
        self.inner.features(s)
    }

    fn feature_len(&self) -> usize {
        self.inner.feature_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPolicy, GuardedEvaluator};
    use crate::problems::Zdt;
    use rand::SeedableRng;

    fn batch(n: usize, seed: u64) -> (Zdt, Vec<Vec<f64>>) {
        let problem = Zdt::zdt1(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let solutions = (0..n).map(|_| problem.random_solution(&mut rng)).collect();
        (problem, solutions)
    }

    #[test]
    fn spec_parsing_accepts_valid_and_rejects_invalid() {
        let spec = ChaosSpec::parse("panic=0.05, nan=0.02,slow=0.5").unwrap();
        assert_eq!(spec.panic, 0.05);
        assert_eq!(spec.nan, 0.02);
        assert_eq!(spec.slow, 0.5);
        assert_eq!(spec.inf, 0.0);
        assert!(spec.injects_faults());
        assert!(!ChaosSpec::parse("slow=0.9").unwrap().injects_faults());
        assert!(ChaosSpec::parse("").is_err());
        assert!(ChaosSpec::parse("panik=0.1").is_err());
        assert!(ChaosSpec::parse("panic=1.5").is_err());
        assert!(ChaosSpec::parse("panic=x").is_err());
        assert!(ChaosSpec::parse("panic").is_err());
        assert!(ChaosSpec::parse("panic=0.6,nan=0.6").is_err());
    }

    #[test]
    fn fault_stream_is_keyed_by_ordinal_not_thread_schedule() {
        let (problem, solutions) = batch(40, 7);
        let spec = ChaosSpec::parse("panic=0.1,nan=0.1,inf=0.1,arity=0.1").unwrap();
        let config = FaultConfig { policy: FaultPolicy::PenalizeWorst, retries: 1 };
        let mut reference = None;
        for threads in [1, 2, 4] {
            let chaotic = ChaosProblem::new(&problem, spec, 99);
            let mut guard = GuardedEvaluator::new(threads, config);
            let batch = guard.evaluate(&chaotic, &solutions);
            let outcome = (batch, *guard.log());
            match &reference {
                None => reference = Some(outcome),
                Some(first) => assert_eq!(first, &outcome, "threads = {threads}"),
            }
        }
        let (_, log) = reference.unwrap();
        assert!(log.faults() > 0, "p=0.4 over 40 evals should fault");
    }

    #[test]
    fn ordinal_round_trip_resumes_the_same_fault_stream() {
        let (problem, solutions) = batch(30, 3);
        let spec = ChaosSpec::parse("nan=0.3").unwrap();
        let config = FaultConfig { policy: FaultPolicy::Skip, retries: 0 };

        let uninterrupted = ChaosProblem::new(&problem, spec, 5);
        let mut guard = GuardedEvaluator::new(1, config);
        let first = guard.evaluate(&uninterrupted, &solutions[..12]);
        let second = guard.evaluate(&uninterrupted, &solutions[12..]);

        // "Crash" after the first batch: rebuild the wrapper and restore
        // only the ordinal counter.
        let resumed = ChaosProblem::new(&problem, spec, 5);
        let mut guard2 = GuardedEvaluator::new(4, config);
        let first2 = guard2.evaluate(&resumed, &solutions[..12]);
        assert_eq!(first2, first);
        let restored = ChaosProblem::new(&problem, spec, 5);
        restored.set_ordinal(resumed.ordinal());
        assert_eq!(restored.ordinal(), uninterrupted.ordinal() - 18);
        let second2 = guard2.evaluate(&restored, &solutions[12..]);
        assert_eq!(second2, second);
    }

    #[test]
    fn certain_fault_probabilities_always_inject() {
        let (problem, solutions) = batch(8, 1);
        for (spec, check) in [("nan=1", "nan"), ("inf=1", "inf"), ("arity=1", "arity")] {
            let chaotic = ChaosProblem::new(&problem, ChaosSpec::parse(spec).unwrap(), 2);
            for s in &solutions {
                let objs = chaotic.evaluate(s);
                match check {
                    "nan" => assert!(objs.iter().any(|v| v.is_nan())),
                    "inf" => assert!(objs.iter().any(|v| v.is_infinite())),
                    _ => assert_ne!(objs.len(), problem.objective_count()),
                }
            }
        }
        let panicky = ChaosProblem::new(&problem, ChaosSpec::parse("panic=1").unwrap(), 2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            panicky.evaluate(&solutions[0])
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for text in ["panic=0.05,nan=0.02,slow=0.5", "inf=1", "arity=0.125", "panic=0"] {
            let spec = ChaosSpec::parse(text).unwrap();
            let rendered = spec.to_string();
            assert_eq!(ChaosSpec::parse(&rendered).unwrap(), spec, "{text} -> {rendered}");
        }
        assert_eq!(ChaosSpec::default().to_string(), "panic=0");
    }

    #[test]
    fn zero_spec_is_transparent() {
        let (problem, solutions) = batch(6, 4);
        let chaotic = ChaosProblem::new(&problem, ChaosSpec::default(), 9);
        for s in &solutions {
            assert_eq!(chaotic.evaluate(s), problem.evaluate(s));
        }
        assert_eq!(chaotic.ordinal(), 6);
    }
}
