//! A bounded archive of non-dominated solutions.
//!
//! MOOS and MOO-STAGE maintain an external archive of all non-dominated
//! designs seen during search; [`ParetoArchive`] provides that with an
//! optional capacity bound (pruned by crowding distance, so boundary
//! solutions are never evicted before interior ones).

use crate::pareto::{crowding_distance, dominates, weakly_dominates};

/// A set of mutually non-dominated `(solution, objectives)` pairs.
///
/// # Example
///
/// ```
/// use moela_moo::archive::ParetoArchive;
///
/// let mut archive: ParetoArchive<&str> = ParetoArchive::unbounded();
/// archive.insert("a", vec![1.0, 4.0]);
/// archive.insert("b", vec![4.0, 1.0]);
/// archive.insert("c", vec![5.0, 5.0]); // dominated, rejected
/// assert_eq!(archive.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ParetoArchive<S> {
    entries: Vec<(S, Vec<f64>)>,
    capacity: Option<usize>,
}

impl<S: Clone> ParetoArchive<S> {
    /// An archive with no size limit.
    pub fn unbounded() -> Self {
        Self { entries: Vec::new(), capacity: None }
    }

    /// An archive holding at most `capacity` entries; when full, the most
    /// crowded entry is evicted first.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Self { entries: Vec::new(), capacity: Some(capacity) }
    }

    /// Attempts to insert a solution. Returns `true` if it was added (i.e.
    /// it is not weakly dominated by an existing entry). Entries dominated
    /// by the newcomer are removed.
    ///
    /// Vectors containing NaN or ±Inf are rejected outright: non-finite
    /// coordinates make dominance comparisons lie (every comparison with
    /// NaN is `false`), which would let a garbage point silently evict
    /// legitimate entries. Rejection is logged in debug builds.
    pub fn insert(&mut self, solution: S, objectives: Vec<f64>) -> bool {
        if objectives.iter().any(|v| !v.is_finite()) {
            #[cfg(debug_assertions)]
            eprintln!("ParetoArchive: rejected non-finite objective vector {objectives:?}");
            return false;
        }
        if self.entries.iter().any(|(_, o)| weakly_dominates(o, &objectives)) {
            return false;
        }
        self.entries.retain(|(_, o)| !dominates(&objectives, o));
        self.entries.push((solution, objectives));
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                self.evict_most_crowded();
            }
        }
        true
    }

    fn evict_most_crowded(&mut self) {
        let objs: Vec<Vec<f64>> = self.entries.iter().map(|(_, o)| o.clone()).collect();
        let dist = crowding_distance(&objs);
        let victim = dist
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("archive is non-empty when evicting");
        self.entries.swap_remove(victim);
    }

    /// Number of archived solutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(solution, objectives)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(S, Vec<f64>)> {
        self.entries.iter()
    }

    /// The objective vectors of all archived solutions.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|(_, o)| o.clone()).collect()
    }

    /// The archived solutions.
    pub fn solutions(&self) -> Vec<S> {
        self.entries.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Consumes the archive, yielding its entries.
    pub fn into_entries(self) -> Vec<(S, Vec<f64>)> {
        self.entries
    }

    /// Rebuilds an archive from checkpointed entries **without**
    /// re-running dominance filtering or eviction — entry order is part
    /// of the restored state (MOOS indexes into it), so the entries are
    /// adopted exactly as captured.
    pub fn from_parts(entries: Vec<(S, Vec<f64>)>, capacity: Option<usize>) -> Self {
        Self { entries, capacity }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The archived entries in insertion order.
    pub fn entries(&self) -> &[(S, Vec<f64>)] {
        &self.entries
    }
}

impl<S: Clone> Default for ParetoArchive<S> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<S: Clone> Extend<(S, Vec<f64>)> for ParetoArchive<S> {
    fn extend<T: IntoIterator<Item = (S, Vec<f64>)>>(&mut self, iter: T) {
        for (s, o) in iter {
            self.insert(s, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_dominated_and_duplicate_entries() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.insert(1, vec![1.0, 1.0]));
        assert!(!a.insert(2, vec![2.0, 2.0]));
        assert!(!a.insert(3, vec![1.0, 1.0])); // weakly dominated duplicate
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn newcomer_sweeps_out_entries_it_dominates() {
        let mut a = ParetoArchive::unbounded();
        a.insert(1, vec![2.0, 2.0]);
        a.insert(2, vec![3.0, 1.0]);
        assert!(a.insert(3, vec![1.0, 1.0]));
        // (2,2) dominated by (1,1); (3,1) also dominated.
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions(), vec![3]);
    }

    #[test]
    fn archive_entries_stay_mutually_nondominated() {
        let mut a = ParetoArchive::unbounded();
        for i in 0..50 {
            let x = (i as f64 * 0.613).sin().abs() * 10.0;
            let y = (i as f64 * 0.247).cos().abs() * 10.0;
            a.insert(i, vec![x, y]);
        }
        let objs = a.objectives();
        for i in 0..objs.len() {
            for j in 0..objs.len() {
                if i != j {
                    assert!(!dominates(&objs[i], &objs[j]));
                }
            }
        }
    }

    #[test]
    fn bounded_archive_evicts_crowded_interior_points() {
        let mut a = ParetoArchive::bounded(3);
        a.insert("left", vec![0.0, 10.0]);
        a.insert("right", vec![10.0, 0.0]);
        a.insert("mid", vec![5.0, 5.0]);
        // Two nearly identical interior points: one must be evicted, and the
        // boundary points must survive.
        a.insert("mid2", vec![5.1, 4.9]);
        assert_eq!(a.len(), 3);
        let sols = a.solutions();
        assert!(sols.contains(&"left"));
        assert!(sols.contains(&"right"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ParetoArchive::<u32>::bounded(0);
    }

    #[test]
    fn non_finite_vectors_are_rejected_and_cannot_evict() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.insert(1, vec![1.0, 1.0]));
        assert!(!a.insert(2, vec![f64::NAN, 0.0]));
        assert!(!a.insert(3, vec![f64::NEG_INFINITY, 0.0]));
        assert!(!a.insert(4, vec![0.0, f64::INFINITY]));
        assert_eq!(a.len(), 1);
        assert_eq!(a.solutions(), vec![1]);
    }

    #[test]
    fn extend_inserts_in_order() {
        let mut a = ParetoArchive::unbounded();
        a.extend(vec![(1, vec![1.0, 3.0]), (2, vec![3.0, 1.0]), (3, vec![2.0, 2.0])]);
        assert_eq!(a.len(), 3);
    }
}
