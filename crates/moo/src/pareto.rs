//! Pareto dominance, fast non-dominated sorting, and crowding distance.
//!
//! All functions assume **minimization** of every objective, matching the
//! [`crate::Problem`] contract.

/// Returns `true` if `a` Pareto-dominates `b`: `a` is no worse in every
/// objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
///
/// # Example
///
/// ```
/// use moela_moo::pareto::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Returns `true` if `a` weakly dominates `b` (no worse in every objective).
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// Indices of the non-dominated members of `objs` (the first Pareto front),
/// in their original order.
///
/// Duplicated objective vectors are all retained: a point never dominates an
/// exact copy of itself. Vectors containing NaN or ±Inf are never part of
/// the front (NaN makes dominance comparisons vacuously `false`, which
/// would otherwise promote garbage points to the front).
pub fn non_dominated_indices(objs: &[Vec<f64>]) -> Vec<usize> {
    (0..objs.len())
        .filter(|&i| all_finite(&objs[i]))
        .filter(|&i| {
            !objs.iter().enumerate().any(|(j, o)| j != i && all_finite(o) && dominates(o, &objs[i]))
        })
        .collect()
}

/// Fast non-dominated sorting (Deb et al., NSGA-II).
///
/// Partitions `objs` into fronts: `fronts[0]` holds indices of the Pareto
/// front, `fronts[1]` the points dominated only by front 0, and so on. Every
/// index appears in exactly one front.
///
/// Vectors containing NaN or ±Inf are excluded from the dominance
/// book-keeping (NaN comparisons would corrupt the domination counts) and
/// collected into one extra *final* front, preserving the partition
/// property while guaranteeing that selection-by-front-rank always
/// prefers finite points.
///
/// Runs in `O(M·n²)` — the standard NSGA-II book-keeping with per-point
/// domination counts.
pub fn non_dominated_sort(objs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objs.len();
    if n == 0 {
        return Vec::new();
    }
    let finite: Vec<usize> = (0..n).filter(|&i| all_finite(&objs[i])).collect();
    let non_finite: Vec<usize> = (0..n).filter(|&i| !all_finite(&objs[i])).collect();
    // dominated_by[i] = points that i dominates; counts[i] = how many
    // points dominate i (both over positions in `finite`).
    let k = finite.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut counts = vec![0usize; k];
    for a in 0..k {
        for b in (a + 1)..k {
            let (i, j) = (finite[a], finite[b]);
            if dominates(&objs[i], &objs[j]) {
                dominated_by[a].push(b);
                counts[b] += 1;
            } else if dominates(&objs[j], &objs[i]) {
                dominated_by[b].push(a);
                counts[a] += 1;
            }
        }
    }
    let mut fronts = Vec::new();
    let mut current: Vec<usize> = (0..k).filter(|&a| counts[a] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &a in &current {
            for &b in &dominated_by[a] {
                counts[b] -= 1;
                if counts[b] == 0 {
                    next.push(b);
                }
            }
        }
        next.sort_unstable();
        let front = std::mem::replace(&mut current, next);
        fronts.push(front.into_iter().map(|a| finite[a]).collect());
    }
    if !non_finite.is_empty() {
        fronts.push(non_finite);
    }
    fronts
}

/// NSGA-II crowding distance of every member of a single front.
///
/// Boundary points of each objective get `f64::INFINITY`; interior points get
/// the sum of normalized neighbor gaps. Fronts of size ≤ 2 are all-infinite.
///
/// # Panics
///
/// Panics if the vectors in `front` have inconsistent lengths.
pub fn crowding_distance(front: &[Vec<f64>]) -> Vec<f64> {
    let n = front.len();
    if n == 0 {
        return Vec::new();
    }
    let m = front[0].len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    // `k` ranges over objectives, not `front`'s rows; an iterator would
    // obscure the per-dimension re-sorting below.
    #[allow(clippy::needless_range_loop)]
    for k in 0..m {
        // total_cmp keeps the sort deterministic even if a NaN slips in
        // (NaN orders after +Inf); upstream guards keep fronts finite.
        order.sort_by(|&a, &b| front[a][k].total_cmp(&front[b][k]));
        let lo = front[order[0]][k];
        let hi = front[order[n - 1]][k];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= f64::EPSILON {
            continue;
        }
        for w in 1..n - 1 {
            let prev = front[order[w - 1]][k];
            let next = front[order[w + 1]][k];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[0.0, 0.0], &[1.0, 1.0]));
        assert!(dominates(&[0.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[0.0, 2.0], &[1.0, 1.0]));
        assert!(weakly_dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!weakly_dominates(&[1.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dominance_rejects_mismatched_lengths() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn first_front_of_a_staircase_is_everything() {
        let objs = vec![vec![0.0, 3.0], vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 0.0]];
        assert_eq!(non_dominated_indices(&objs), vec![0, 1, 2, 3]);
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 1);
    }

    #[test]
    fn sorting_layers_nested_staircases() {
        // Two shifted staircases: the +2 copies form the second front.
        let mut objs = Vec::new();
        for i in 0..4 {
            objs.push(vec![i as f64, (3 - i) as f64]);
        }
        for i in 0..4 {
            objs.push(vec![i as f64 + 2.0, (3 - i) as f64 + 2.0]);
        }
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 2);
        assert_eq!(fronts[0], vec![0, 1, 2, 3]);
        assert_eq!(fronts[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn every_index_appears_exactly_once() {
        let objs: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x = (i as f64 * 0.37).sin().abs();
                let y = (i as f64 * 0.71).cos().abs();
                vec![x, y, x * y]
            })
            .collect();
        let fronts = non_dominated_sort(&objs);
        let mut seen: Vec<usize> = fronts.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_stay_in_the_same_front() {
        let objs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2]);
    }

    #[test]
    fn non_finite_points_land_in_a_final_quarantine_front() {
        let objs = vec![
            vec![1.0, 1.0],
            vec![f64::NAN, 0.0],
            vec![2.0, 2.0],
            vec![f64::NEG_INFINITY, 0.0],
            vec![0.0, f64::INFINITY],
        ];
        assert_eq!(non_dominated_indices(&objs), vec![0]);
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts, vec![vec![0], vec![2], vec![1, 3, 4]]);
        // Partition property holds even with garbage points present.
        let mut seen: Vec<usize> = fronts.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..objs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn all_non_finite_input_yields_one_quarantine_front() {
        let objs = vec![vec![f64::NAN, 1.0], vec![1.0, f64::INFINITY]];
        assert!(non_dominated_indices(&objs).is_empty());
        assert_eq!(non_dominated_sort(&objs), vec![vec![0, 1]]);
    }

    #[test]
    fn crowding_boundary_points_are_infinite() {
        let front = vec![vec![0.0, 4.0], vec![1.0, 2.0], vec![2.0, 1.0], vec![4.0, 0.0]];
        let d = crowding_distance(&front);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_of_tiny_fronts_is_infinite() {
        assert!(crowding_distance(&[vec![1.0, 2.0]]).iter().all(|d| d.is_infinite()));
        assert!(crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Middle point 1 sits in a sparse region; point 2 is crowded
        // between 1 and 3.
        let front =
            vec![vec![0.0, 10.0], vec![5.0, 5.0], vec![8.8, 1.2], vec![9.0, 1.0], vec![10.0, 0.0]];
        let d = crowding_distance(&front);
        assert!(d[1] > d[2]);
        assert!(d[1] > d[3]);
    }

    #[test]
    fn degenerate_equal_objective_range_does_not_nan() {
        let front = vec![vec![1.0, 0.0], vec![1.0, 0.5], vec![1.0, 1.0]];
        let d = crowding_distance(&front);
        assert!(d.iter().all(|x| !x.is_nan()));
    }
}
