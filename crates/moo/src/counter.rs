//! Evaluation budget accounting.
//!
//! The paper compares algorithms by the wall-clock time needed to reach a
//! given Pareto hypervolume on a 48-hour server budget. In this reproduction
//! the primary clock is the *number of objective evaluations* — identical
//! work units across algorithms and machines — with wall-clock reported as a
//! secondary column. [`EvalCounter`] is that clock and [`Counted`] is a
//! transparent [`Problem`] adapter that ticks it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::RngCore;

use crate::problem::Problem;

/// A cheap, shareable counter of objective evaluations.
///
/// Cloning shares the underlying count (it is an `Arc`), so the same counter
/// can be handed to an optimizer and observed from the experiment harness.
///
/// # Example
///
/// ```
/// use moela_moo::{Counted, EvalCounter, Problem, problems::Zdt};
/// use rand::SeedableRng;
///
/// let counter = EvalCounter::new();
/// let problem = Counted::new(Zdt::zdt1(5), counter.clone());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = problem.random_solution(&mut rng);
/// problem.evaluate(&x);
/// assert_eq!(counter.count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EvalCounter {
    count: Arc<AtomicU64>,
}

impl EvalCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of evaluations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Records `n` additional evaluations.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Wraps a [`Problem`] so every [`evaluate`](Problem::evaluate) call ticks an
/// [`EvalCounter`]. All other methods delegate unchanged.
#[derive(Clone, Debug)]
pub struct Counted<P> {
    inner: P,
    counter: EvalCounter,
}

impl<P> Counted<P> {
    /// Meters `inner` with `counter`.
    pub fn new(inner: P, counter: EvalCounter) -> Self {
        Self { inner, counter }
    }

    /// The shared counter.
    pub fn counter(&self) -> &EvalCounter {
        &self.counter
    }

    /// Returns the wrapped problem, discarding the counter.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Borrows the wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Problem> Problem for Counted<P> {
    type Solution = P::Solution;

    fn objective_count(&self) -> usize {
        self.inner.objective_count()
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Self::Solution {
        self.inner.random_solution(rng)
    }

    fn neighbor(&self, s: &Self::Solution, rng: &mut dyn RngCore) -> Self::Solution {
        self.inner.neighbor(s, rng)
    }

    fn crossover(
        &self,
        a: &Self::Solution,
        b: &Self::Solution,
        rng: &mut dyn RngCore,
    ) -> Self::Solution {
        self.inner.crossover(a, b, rng)
    }

    fn evaluate(&self, s: &Self::Solution) -> Vec<f64> {
        self.counter.add(1);
        self.inner.evaluate(s)
    }

    fn evaluate_batch(&self, solutions: &[Self::Solution]) -> Vec<Vec<f64>> {
        self.counter.add(solutions.len() as u64);
        self.inner.evaluate_batch(solutions)
    }

    fn evaluate_ordinal(&self, s: &Self::Solution, ordinal: u64) -> Vec<f64> {
        // Tick before evaluating so the count survives a contained panic.
        self.counter.add(1);
        self.inner.evaluate_ordinal(s, ordinal)
    }

    fn evaluate_neighbor_ordinal(
        &self,
        base: &Self::Solution,
        s: &Self::Solution,
        ordinal: u64,
    ) -> Vec<f64> {
        // A delta-scored neighbor still spends one budget unit: the budget
        // counts *candidate evaluations*, not the cost of producing them.
        self.counter.add(1);
        self.inner.evaluate_neighbor_ordinal(base, s, ordinal)
    }

    fn reserve_ordinals(&self, n: u64) -> u64 {
        self.inner.reserve_ordinals(n)
    }

    fn cache_key(&self, s: &Self::Solution) -> Option<Vec<u8>> {
        self.inner.cache_key(s)
    }

    fn features(&self, s: &Self::Solution) -> Vec<f64> {
        self.inner.features(s)
    }

    fn feature_len(&self) -> usize {
        self.inner.feature_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Zdt;
    use rand::SeedableRng;

    #[test]
    fn counter_starts_at_zero_and_accumulates() {
        let c = EvalCounter::new();
        assert_eq!(c.count(), 0);
        c.add(3);
        c.add(2);
        assert_eq!(c.count(), 5);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn clones_share_the_count() {
        let a = EvalCounter::new();
        let b = a.clone();
        a.add(7);
        assert_eq!(b.count(), 7);
    }

    #[test]
    fn counted_ticks_only_on_evaluate() {
        let counter = EvalCounter::new();
        let p = Counted::new(Zdt::zdt1(4), counter.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a = p.random_solution(&mut rng);
        let b = p.neighbor(&a, &mut rng);
        let _c = p.crossover(&a, &b, &mut rng);
        let _ = p.features(&a);
        assert_eq!(counter.count(), 0);
        p.evaluate(&a);
        p.evaluate(&b);
        assert_eq!(counter.count(), 2);
    }

    #[test]
    fn counted_is_transparent() {
        let counter = EvalCounter::new();
        let inner = Zdt::zdt1(4);
        let p = Counted::new(inner.clone(), counter);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = p.random_solution(&mut rng);
        assert_eq!(p.evaluate(&x), inner.evaluate(&x));
        assert_eq!(p.objective_count(), inner.objective_count());
        assert_eq!(p.feature_len(), inner.feature_len());
    }
}
