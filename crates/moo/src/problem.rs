//! The [`Problem`] trait: the contract between optimizers and design spaces.

use rand::RngCore;

/// A multi-objective optimization problem over an arbitrary solution space.
///
/// All objectives are **minimized**. Implementors must guarantee that every
/// solution handed to an optimizer — whether produced by
/// [`random_solution`](Problem::random_solution),
/// [`neighbor`](Problem::neighbor), or [`crossover`](Problem::crossover) —
/// is *feasible*: constraint handling is the problem's responsibility (the
/// manycore problem repairs designs; box-constrained continuous problems
/// clamp).
///
/// The trait is object-safe so heterogeneous problem collections can be
/// driven through `&dyn Problem<Solution = S>` if needed; RNG access is via
/// `&mut dyn RngCore` for the same reason.
///
/// # Example
///
/// ```
/// use moela_moo::{problems::Zdt, Problem};
/// use rand::SeedableRng;
///
/// let zdt1 = Zdt::zdt1(10);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = zdt1.random_solution(&mut rng);
/// let f = zdt1.evaluate(&x);
/// assert_eq!(f.len(), 2);
/// ```
pub trait Problem {
    /// The decision-space representation of a candidate design.
    type Solution: Clone;

    /// Number of objectives `M` this problem exposes.
    fn objective_count(&self) -> usize;

    /// Draws a feasible solution uniformly (or as close to uniformly as the
    /// constraint structure allows) at random.
    fn random_solution(&self, rng: &mut dyn RngCore) -> Self::Solution;

    /// Produces a feasible solution one "move" away from `s` — the
    /// neighborhood structure used by all local searches in the workspace.
    fn neighbor(&self, s: &Self::Solution, rng: &mut dyn RngCore) -> Self::Solution;

    /// Recombines two parents into one feasible offspring (the genetic
    /// operator used by the evolutionary algorithms). Implementations
    /// typically follow crossover with a light mutation + repair.
    fn crossover(
        &self,
        a: &Self::Solution,
        b: &Self::Solution,
        rng: &mut dyn RngCore,
    ) -> Self::Solution;

    /// Evaluates all `M` objectives of `s` (minimization).
    ///
    /// This is the *expensive* operation that evaluation budgets count; use
    /// [`crate::Counted`] to meter it.
    fn evaluate(&self, s: &Self::Solution) -> Vec<f64>;

    /// Evaluates a batch of solutions, returning one objective vector per
    /// input, in input order.
    ///
    /// The default simply maps [`evaluate`](Problem::evaluate) over the
    /// slice sequentially. Metering wrappers ([`crate::Counted`]) override
    /// it to tick their counter once per batch, and
    /// [`crate::ParallelEvaluator`] fans a batch out across worker
    /// threads. Implementations must keep batch results identical to
    /// per-solution [`evaluate`](Problem::evaluate) results.
    fn evaluate_batch(&self, solutions: &[Self::Solution]) -> Vec<Vec<f64>> {
        solutions.iter().map(|s| self.evaluate(s)).collect()
    }

    /// Evaluates `s` as global evaluation number `ordinal`.
    ///
    /// Ordinals are the addressing scheme of fault injection
    /// ([`crate::chaos::ChaosProblem`]) and fault-contained evaluation
    /// ([`crate::fault::GuardedEvaluator`]): the guard reserves a
    /// contiguous ordinal range for a whole batch *before* fanning out,
    /// assigns candidate `i` ordinal `base + i`, and thereby keeps the
    /// fault stream bit-identical at any thread count. Most problems
    /// ignore ordinals entirely — the default delegates to
    /// [`evaluate`](Problem::evaluate).
    fn evaluate_ordinal(&self, s: &Self::Solution, _ordinal: u64) -> Vec<f64> {
        self.evaluate(s)
    }

    /// Evaluates `s` as evaluation number `ordinal`, given that `s` was
    /// produced by one [`neighbor`](Problem::neighbor) move from `base`.
    ///
    /// This is the hook for incremental (delta) evaluation: problems that
    /// can score a single move faster than a full evaluation override it,
    /// under the contract that the result is **bit-identical** to
    /// [`evaluate_ordinal`](Problem::evaluate_ordinal) on `s` — callers
    /// may substitute one for the other freely. Implementations must fall
    /// back to full evaluation whenever the move cannot be scored exactly.
    /// The default ignores `base` and delegates.
    fn evaluate_neighbor_ordinal(
        &self,
        _base: &Self::Solution,
        s: &Self::Solution,
        ordinal: u64,
    ) -> Vec<f64> {
        self.evaluate_ordinal(s, ordinal)
    }

    /// Reserves `n` consecutive evaluation ordinals, returning the first.
    ///
    /// Only ordinal-aware wrappers ([`crate::chaos::ChaosProblem`]) track
    /// a counter; the default is a no-op returning 0, so plain problems
    /// pay nothing.
    fn reserve_ordinals(&self, _n: u64) -> u64 {
        0
    }

    /// A stable, collision-free memoization key for `s`, or `None` when
    /// this problem's evaluations must not be memoized.
    ///
    /// The contract: two solutions share a key **iff** they are equal as
    /// far as [`evaluate`](Problem::evaluate) is concerned, so a cached
    /// result can be substituted for re-evaluation without changing a
    /// single bit. Implementations should return exact canonical bytes of
    /// the solution, not a hash — a hash collision would silently return
    /// the wrong objectives.
    ///
    /// The default is `None` (no memoization). Wrappers whose results
    /// depend on more than the solution — e.g.
    /// [`crate::chaos::ChaosProblem`], where the outcome depends on the
    /// evaluation ordinal — must also return `None` so nothing caches
    /// *above* them.
    fn cache_key(&self, _s: &Self::Solution) -> Option<Vec<u8>> {
        None
    }

    /// A fixed-length numeric descriptor of `s` used as the input features
    /// of learned evaluation functions (e.g. MOELA's random-forest `Eval`).
    ///
    /// Features must be cheap to compute (they must *not* require an
    /// objective evaluation) and must have the same length for every
    /// solution of this problem instance.
    fn features(&self, s: &Self::Solution) -> Vec<f64>;

    /// Length of the vectors returned by [`features`](Problem::features).
    fn feature_len(&self) -> usize;
}

impl<P: Problem + ?Sized> Problem for &P {
    type Solution = P::Solution;

    fn objective_count(&self) -> usize {
        (**self).objective_count()
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Self::Solution {
        (**self).random_solution(rng)
    }

    fn neighbor(&self, s: &Self::Solution, rng: &mut dyn RngCore) -> Self::Solution {
        (**self).neighbor(s, rng)
    }

    fn crossover(
        &self,
        a: &Self::Solution,
        b: &Self::Solution,
        rng: &mut dyn RngCore,
    ) -> Self::Solution {
        (**self).crossover(a, b, rng)
    }

    fn evaluate(&self, s: &Self::Solution) -> Vec<f64> {
        (**self).evaluate(s)
    }

    fn evaluate_batch(&self, solutions: &[Self::Solution]) -> Vec<Vec<f64>> {
        (**self).evaluate_batch(solutions)
    }

    fn evaluate_ordinal(&self, s: &Self::Solution, ordinal: u64) -> Vec<f64> {
        (**self).evaluate_ordinal(s, ordinal)
    }

    fn evaluate_neighbor_ordinal(
        &self,
        base: &Self::Solution,
        s: &Self::Solution,
        ordinal: u64,
    ) -> Vec<f64> {
        (**self).evaluate_neighbor_ordinal(base, s, ordinal)
    }

    fn reserve_ordinals(&self, n: u64) -> u64 {
        (**self).reserve_ordinals(n)
    }

    fn cache_key(&self, s: &Self::Solution) -> Option<Vec<u8>> {
        (**self).cache_key(s)
    }

    fn features(&self, s: &Self::Solution) -> Vec<f64> {
        (**self).features(s)
    }

    fn feature_len(&self) -> usize {
        (**self).feature_len()
    }
}
