//! Weight-vector generation and neighborhoods for decomposition-based MOO.
//!
//! MOELA and MOEA/D decompose an `M`-objective problem into `N`
//! single-objective sub-problems, each defined by a weight vector on the unit
//! simplex. Weight vectors should be evenly dispersed (§IV of the paper);
//! the standard construction is the Das–Dennis simplex lattice produced by
//! [`simplex_lattice`]. [`uniform_weights`] wraps it to deliver *exactly* `n`
//! vectors, and [`neighborhoods`] builds each sub-problem's `T` nearest
//! neighbors by Euclidean distance — the mating pool structure of MOEA/D.

/// All weight vectors of the Das–Dennis simplex lattice with `h` divisions
/// in `m` dimensions. Produces `C(h + m − 1, m − 1)` vectors whose
/// components are multiples of `1/h` summing to 1.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Example
///
/// ```
/// use moela_moo::weights::simplex_lattice;
///
/// let w = simplex_lattice(10, 2);
/// assert_eq!(w.len(), 11); // [0,1], [0.1,0.9], …, [1,0]
/// ```
pub fn simplex_lattice(h: u32, m: usize) -> Vec<Vec<f64>> {
    assert!(m > 0, "weight vectors need at least one dimension");
    let mut out = Vec::new();
    let mut current = vec![0u32; m];
    fill(&mut out, &mut current, 0, h, h);
    out
}

fn fill(out: &mut Vec<Vec<f64>>, current: &mut Vec<u32>, dim: usize, remaining: u32, h: u32) {
    if dim == current.len() - 1 {
        current[dim] = remaining;
        out.push(current.iter().map(|&c| f64::from(c) / f64::from(h)).collect());
        return;
    }
    for v in 0..=remaining {
        current[dim] = v;
        fill(out, current, dim + 1, remaining - v, h);
    }
}

/// Exactly `n` well-dispersed weight vectors in `m` dimensions.
///
/// Uses the smallest Das–Dennis lattice with at least `n` members, then
/// keeps an evenly strided subset. For `m = 2` and `n = 11` this reproduces
/// the paper's example set `{[0,1], [0.1,0.9], …, [1,0]}`.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn uniform_weights(n: usize, m: usize) -> Vec<Vec<f64>> {
    assert!(n > 0, "need at least one weight vector");
    assert!(m > 0, "weight vectors need at least one dimension");
    if m == 1 {
        return vec![vec![1.0]; n];
    }
    let mut h = 1u32;
    loop {
        let count = lattice_size(h, m);
        if count >= n as u64 {
            break;
        }
        h += 1;
    }
    let lattice = simplex_lattice(h, m);
    if lattice.len() == n {
        return lattice;
    }
    // Evenly strided subset, always keeping the first and last lattice point
    // so extreme directions survive.
    let mut picked = Vec::with_capacity(n);
    let step = (lattice.len() - 1) as f64 / (n - 1).max(1) as f64;
    for i in 0..n {
        let idx = (i as f64 * step).round() as usize;
        picked.push(lattice[idx.min(lattice.len() - 1)].clone());
    }
    picked
}

fn lattice_size(h: u32, m: usize) -> u64 {
    // C(h + m - 1, m - 1), computed multiplicatively to avoid overflow for
    // the small h/m used here.
    let mut num = 1u64;
    let mut den = 1u64;
    for i in 1..m as u64 {
        num = num.saturating_mul(u64::from(h) + i);
        den *= i;
    }
    num / den
}

/// For every weight vector, the indices of its `t` nearest weight vectors by
/// Euclidean distance (including itself, matching MOEA/D's convention).
///
/// # Panics
///
/// Panics if `t` is zero or greater than `weights.len()`.
pub fn neighborhoods(weights: &[Vec<f64>], t: usize) -> Vec<Vec<usize>> {
    assert!(t >= 1 && t <= weights.len(), "neighborhood size out of range");
    weights
        .iter()
        .map(|w| {
            let mut order: Vec<usize> = (0..weights.len()).collect();
            order.sort_by(|&a, &b| {
                sq_dist(w, &weights[a])
                    .partial_cmp(&sq_dist(w, &weights[b]))
                    .expect("weight distances must not be NaN")
            });
            order.truncate(t);
            order
        })
        .collect()
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_counts_match_binomials() {
        assert_eq!(simplex_lattice(4, 2).len(), 5);
        assert_eq!(simplex_lattice(4, 3).len(), 15); // C(6,2)
        assert_eq!(simplex_lattice(3, 4).len(), 20); // C(6,3)
    }

    #[test]
    fn lattice_vectors_sum_to_one() {
        for w in simplex_lattice(5, 3) {
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "{w:?}");
            assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn paper_example_n11_m2() {
        let w = uniform_weights(11, 2);
        assert_eq!(w.len(), 11);
        assert_eq!(w[0], vec![0.0, 1.0]);
        assert_eq!(w[10], vec![1.0, 0.0]);
        assert!((w[1][0] - 0.1).abs() < 1e-12);
        assert!((w[1][1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights_delivers_exact_count_for_awkward_n() {
        for (n, m) in [(50, 3), (50, 4), (50, 5), (7, 2), (13, 5)] {
            let w = uniform_weights(n, m);
            assert_eq!(w.len(), n, "n={n} m={m}");
            for v in &w {
                assert_eq!(v.len(), m);
                let s: f64 = v.iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uniform_weights_keeps_extreme_directions() {
        let w = uniform_weights(50, 5);
        // First lattice point is (0,…,0,1) and last is (1,0,…,0).
        assert_eq!(*w.first().expect("nonempty"), vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(*w.last().expect("nonempty"), vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn one_dimensional_weights_are_all_ones() {
        assert_eq!(uniform_weights(3, 1), vec![vec![1.0]; 3]);
    }

    #[test]
    fn neighborhood_contains_self_first() {
        let w = uniform_weights(11, 2);
        let nb = neighborhoods(&w, 4);
        for (i, n) in nb.iter().enumerate() {
            assert_eq!(n[0], i, "each vector is its own nearest neighbor");
            assert_eq!(n.len(), 4);
        }
    }

    #[test]
    fn neighbors_are_adjacent_on_a_line() {
        let w = uniform_weights(11, 2);
        let nb = neighborhoods(&w, 3);
        // Interior vector 5's three nearest are 4,5,6 in some order.
        let mut got = nb[5].clone();
        got.sort_unstable();
        assert_eq!(got, vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_neighborhood_panics() {
        let w = uniform_weights(5, 2);
        neighborhoods(&w, 6);
    }
}
