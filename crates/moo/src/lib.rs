//! Multi-objective optimization (MOO) toolkit underpinning the MOELA
//! reproduction.
//!
//! This crate provides the domain-independent machinery that every optimizer
//! in the workspace builds on:
//!
//! * the [`Problem`] trait — the contract between optimizers and design
//!   spaces (all objectives are **minimized**);
//! * Pareto analysis: [`pareto::dominates`], fast non-dominated sorting
//!   ([`pareto::non_dominated_sort`]), crowding distance;
//! * solution-quality metrics: exact [`hypervolume::hypervolume`] (WFG
//!   algorithm), a Monte-Carlo estimator, IGD/IGD+, spread and coverage in
//!   [`metrics`];
//! * decomposition support: Das–Dennis [`weights::uniform_weights`],
//!   [`scalarize::Scalarizer`] (weighted sum and Tchebycheff),
//!   [`scalarize::ReferencePoint`] tracking;
//! * objective normalization ([`normalize::Normalizer`]) and a bounded
//!   [`archive::ParetoArchive`];
//! * deterministic parallel batch evaluation
//!   ([`parallel::ParallelEvaluator`]) — optimizers generate candidates
//!   sequentially, then evaluate whole batches across scoped worker
//!   threads with bit-identical results at any thread count;
//! * evaluation memoization: [`cache::CachedProblem`] memoizes whole
//!   objective vectors in a bounded, thread-safe [`cache::EvalCache`]
//!   keyed by exact solution bytes ([`Problem::cache_key`]), so duplicate
//!   candidates never re-evaluate while staying bit-identical to
//!   uncached runs;
//! * fault containment: [`fault::GuardedEvaluator`] turns panicking,
//!   NaN-producing or malformed evaluations into structured
//!   [`fault::EvalFault`]s handled by a uniform [`fault::FaultPolicy`],
//!   and [`chaos::ChaosProblem`] injects such faults deterministically
//!   for testing;
//! * synthetic benchmark problems with known Pareto fronts in [`problems`]
//!   (ZDT, DTLZ, and a combinatorial multi-objective knapsack), used to
//!   validate every optimizer in the workspace;
//! * checkpoint/resume support: the [`checkpoint::Resumable`]
//!   state-machine contract every optimizer implements, and [`snapshot`]
//!   conversions of toolkit components to `moela-persist` JSON values.
//!
//! # Example
//!
//! ```
//! use moela_moo::{hypervolume::hypervolume, pareto::non_dominated_sort};
//!
//! let objs = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0], vec![3.0, 3.0]];
//! let fronts = non_dominated_sort(&objs);
//! assert_eq!(fronts[0], vec![0, 1, 2]); // the last point is dominated
//!
//! let hv = hypervolume(&objs, &[5.0, 5.0]);
//! assert!(hv > 0.0);
//! ```

pub mod archive;
pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod counter;
pub mod fault;
pub mod hypervolume;
pub mod metrics;
pub mod normalize;
pub mod parallel;
pub mod pareto;
pub mod problem;
pub mod problems;
pub mod run;
pub mod scalarize;
pub mod snapshot;
pub mod weights;

pub use cache::{CacheStats, CachedProblem, EvalCache, DEFAULT_EVAL_CACHE_CAPACITY};
pub use chaos::{ChaosProblem, ChaosSpec};
pub use counter::{Counted, EvalCounter};
pub use fault::{
    is_penalty, is_quarantined, penalty_objectives, EvalFault, FaultConfig, FaultKind, FaultLog,
    FaultPolicy, GuardedBatch, GuardedEvaluator, PENALTY,
};
pub use parallel::ParallelEvaluator;
pub use problem::Problem;
