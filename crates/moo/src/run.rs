//! Common result and tracing types returned by every optimizer in the
//! workspace (MOELA and all baselines), so the experiment harness can
//! compare them uniformly.

use std::time::Duration;

use crate::fault::is_quarantined;
use crate::hypervolume::hypervolume;
use crate::normalize::Normalizer;
use crate::pareto::non_dominated_indices;

/// Padding applied to normalized objectives before hypervolume
/// computation (see [`normalized_phv`]).
const PHV_PAD: f64 = 0.05;

/// Normalized reference point used by every PHV computation in the
/// workspace.
const PHV_REFERENCE: f64 = 1.1;

/// The workspace's canonical PHV: min–max normalize `objectives`, map the
/// unit box into `[PAD, PAD + (1 − PAD)]`, and take the hypervolume
/// against the `1.1^M` reference point.
///
/// Two details matter here:
///
/// * normalization is **unclamped** — designs that improve past the
///   normalizer's observed minimum keep earning hypervolume (a clamped
///   map would make every sufficiently good front identical);
/// * the unit box is padded away from the origin, so a run whose
///   normalizer happens to be defined *by* its own best design (the
///   online-normalizer case) does not saturate the reference box with a
///   single point, which would stall PHV-greedy searches.
///
/// Both maps are affine and dominance-preserving, so HV *ordering* is
/// unaffected.
pub fn normalized_phv(objectives: &[Vec<f64>], normalizer: &Normalizer) -> f64 {
    if objectives.is_empty() {
        return 0.0;
    }
    let m = objectives[0].len();
    let points: Vec<Vec<f64>> = objectives
        .iter()
        .map(|o| {
            normalizer
                .normalize_unclamped(o)
                .into_iter()
                .map(|v| PHV_PAD + (1.0 - PHV_PAD) * v)
                .collect()
        })
        .collect();
    hypervolume(&points, &vec![PHV_REFERENCE; m])
}

/// One point of an anytime-quality trace: the Pareto hypervolume of the
/// population at a given generation / evaluation count / wall time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Generation (algorithm iteration) index.
    pub generation: usize,
    /// Objective evaluations consumed so far.
    pub evaluations: u64,
    /// Wall-clock time elapsed so far.
    pub elapsed: Duration,
    /// Normalized Pareto hypervolume of the population's first front.
    pub phv: f64,
}

/// The outcome of one optimizer run.
#[derive(Clone, Debug)]
pub struct RunResult<S> {
    /// The final population with objective vectors.
    pub population: Vec<(S, Vec<f64>)>,
    /// Anytime PHV trace, one point per generation.
    pub trace: Vec<TracePoint>,
    /// Total objective evaluations consumed.
    pub evaluations: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl<S: Clone> RunResult<S> {
    /// The non-dominated subset of the final population. Quarantined
    /// members (non-finite or penalty objective vectors left behind by
    /// fault containment) are never part of the front.
    pub fn front(&self) -> Vec<(S, Vec<f64>)> {
        let eligible: Vec<usize> = (0..self.population.len())
            .filter(|&i| !is_quarantined(&self.population[i].1))
            .collect();
        let objs: Vec<Vec<f64>> = eligible.iter().map(|&i| self.population[i].1.clone()).collect();
        non_dominated_indices(&objs)
            .into_iter()
            .map(|k| self.population[eligible[k]].clone())
            .collect()
    }

    /// Objective vectors of the final front.
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        self.front().into_iter().map(|(_, o)| o).collect()
    }

    /// PHV of the final front under an externally fixed normalizer (the
    /// harness's cross-algorithm comparison), computed by
    /// [`normalized_phv`].
    pub fn phv(&self, normalizer: &Normalizer) -> f64 {
        normalized_phv(&self.front_objectives(), normalizer)
    }

    /// Renders the anytime trace as CSV
    /// (`generation,evaluations,elapsed_s,phv` header included), ready for
    /// external plotting of the paper's convergence curves.
    pub fn trace_csv(&self) -> String {
        let mut out = String::from("generation,evaluations,elapsed_s,phv\n");
        for p in &self.trace {
            out.push_str(&format!(
                "{},{},{:.6},{:.9}\n",
                p.generation,
                p.evaluations,
                p.elapsed.as_secs_f64(),
                p.phv
            ));
        }
        out
    }

    /// Renders the final front's objective vectors as CSV (one row per
    /// design, `obj0..objM` header).
    pub fn front_csv(&self) -> String {
        let front = self.front_objectives();
        let m = front.first().map_or(0, Vec::len);
        let mut out = (0..m).map(|k| format!("obj{k}")).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in front {
            out.push_str(&row.iter().map(|v| format!("{v:.9}")).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Records an anytime PHV trace while a run progresses, normalizing
/// objectives online (the recorder widens its normalizer as new extremes
/// appear, so early and late PHV values share one scale *within* a run;
/// cross-algorithm comparisons use [`RunResult::phv`] with a fixed
/// normalizer instead).
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    normalizer: Normalizer,
    fixed: bool,
    points: Vec<TracePoint>,
}

impl TraceRecorder {
    /// A recorder for `m` objectives using the conventional `1.1^M`
    /// normalized reference point, widening its normalizer online.
    pub fn new(m: usize) -> Self {
        Self { normalizer: Normalizer::new(m), fixed: false, points: Vec::new() }
    }

    /// A recorder with a pre-fitted, frozen normalizer — the mode the
    /// experiment harness uses so every algorithm's trace shares one
    /// objective scale and PHV values are comparable point-by-point.
    pub fn with_fixed_normalizer(normalizer: Normalizer) -> Self {
        Self { normalizer, fixed: true, points: Vec::new() }
    }

    /// Rebuilds a recorder from checkpointed state (see
    /// [`crate::snapshot`]).
    pub fn from_parts(normalizer: Normalizer, fixed: bool, points: Vec<TracePoint>) -> Self {
        Self { normalizer, fixed, points }
    }

    /// The recorder's current normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Whether the normalizer is frozen (pre-fitted).
    pub fn fixed(&self) -> bool {
        self.fixed
    }

    /// Widens the normalizer with a newly evaluated objective vector
    /// (no-op when the normalizer is frozen). Quarantined vectors —
    /// non-finite or fault-containment penalties — are ignored so they
    /// can never stretch the PHV scale.
    pub fn observe(&mut self, objectives: &[f64]) {
        if !self.fixed && !is_quarantined(objectives) {
            self.normalizer.observe(objectives);
        }
    }

    /// Appends a trace point for the current population front.
    pub fn record(
        &mut self,
        generation: usize,
        evaluations: u64,
        elapsed: Duration,
        population_objectives: &[Vec<f64>],
    ) {
        // Quarantined vectors contribute no PHV: a penalty vector pushed
        // through the unclamped normalizer would dwarf every real design.
        let clean: Vec<Vec<f64>> =
            population_objectives.iter().filter(|o| !is_quarantined(o)).cloned().collect();
        let idx = non_dominated_indices(&clean);
        let front: Vec<Vec<f64>> = idx.into_iter().map(|i| clean[i].clone()).collect();
        let phv = normalized_phv(&front, &self.normalizer);
        self.points.push(TracePoint { generation, evaluations, elapsed, phv });
    }

    /// The recorded trace.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Consumes the recorder, yielding the trace.
    pub fn into_points(self) -> Vec<TracePoint> {
        self.points
    }
}

/// Finds the first trace point at which `trace` reaches `target_phv`,
/// returning its evaluation count — the "time to quality" measure behind
/// the paper's speed-up factor (Table I).
pub fn evaluations_to_reach(trace: &[TracePoint], target_phv: f64) -> Option<u64> {
    trace.iter().find(|p| p.phv >= target_phv).map(|p| p.evaluations)
}

/// Detects the convergence point of a trace per the paper's §V.C
/// criterion ("the time when each algorithm reaches its convergence
/// performance"): the first trace point whose PHV is within a relative
/// `tolerance` (the paper uses 0.5 %) of the trace's final PHV.
///
/// Scanning for the first short-lived plateau instead would mistake early
/// search pauses for convergence; anchoring on the final quality measures
/// what the paper measures — when the run effectively stopped improving.
pub fn convergence_point(trace: &[TracePoint], tolerance: f64) -> Option<usize> {
    let last = trace.last()?.phv;
    if last <= 0.0 {
        return Some(trace.len() - 1);
    }
    let target = last * (1.0 - tolerance);
    trace.iter().position(|p| p.phv >= target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(generation: usize, evaluations: u64, phv: f64) -> TracePoint {
        TracePoint { generation, evaluations, elapsed: Duration::ZERO, phv }
    }

    #[test]
    fn front_filters_dominated_population_members() {
        let r = RunResult {
            population: vec![("a", vec![1.0, 2.0]), ("b", vec![2.0, 1.0]), ("c", vec![3.0, 3.0])],
            trace: Vec::new(),
            evaluations: 0,
            elapsed: Duration::ZERO,
        };
        let front = r.front();
        assert_eq!(front.len(), 2);
        assert!(front.iter().all(|(s, _)| *s != "c"));
    }

    #[test]
    fn phv_uses_the_external_normalizer() {
        let r = RunResult {
            population: vec![((), vec![0.0, 10.0]), ((), vec![10.0, 0.0])],
            trace: Vec::new(),
            evaluations: 0,
            elapsed: Duration::ZERO,
        };
        let n = Normalizer::from_bounds(vec![0.0, 0.0], vec![10.0, 10.0]);
        let phv = r.phv(&n);
        // Two corner points at (0,1) and (1,0): HV = 1.1² − 1 − overlap…
        // computed directly: 0.1·1.1 + 1.0·0.1 + 0.1·1.0 … simplest check:
        assert!(phv > 0.0 && phv < 1.21);
    }

    #[test]
    fn recorder_produces_monotone_phv_for_improving_fronts() {
        let mut rec = TraceRecorder::new(2);
        // Fix the normalizer's range first (as real runs do by observing
        // initial random designs).
        rec.observe(&[0.0, 0.0]);
        rec.observe(&[10.0, 10.0]);
        rec.record(0, 10, Duration::ZERO, &[vec![8.0, 8.0]]);
        rec.record(1, 20, Duration::ZERO, &[vec![4.0, 4.0]]);
        rec.record(2, 30, Duration::ZERO, &[vec![1.0, 1.0]]);
        let p = rec.points();
        assert!(p[0].phv < p[1].phv && p[1].phv < p[2].phv);
    }

    #[test]
    fn quarantined_members_never_reach_the_front_or_the_scale() {
        use crate::fault::PENALTY;
        let r = RunResult {
            population: vec![
                ("a", vec![1.0, 2.0]),
                ("penalized", vec![PENALTY, PENALTY]),
                ("nan", vec![f64::NAN, 0.0]),
            ],
            trace: Vec::new(),
            evaluations: 0,
            elapsed: Duration::ZERO,
        };
        let front = r.front();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].0, "a");
        // Even an all-quarantined population yields an empty front, not
        // a garbage one.
        let all_bad = RunResult {
            population: vec![("p", vec![PENALTY, PENALTY])],
            trace: Vec::new(),
            evaluations: 0,
            elapsed: Duration::ZERO,
        };
        assert!(all_bad.front().is_empty());

        let mut rec = TraceRecorder::new(2);
        rec.observe(&[0.0, 0.0]);
        rec.observe(&[10.0, 10.0]);
        let before = rec.normalizer().clone();
        rec.observe(&[PENALTY, PENALTY]);
        rec.observe(&[f64::NAN, 1.0]);
        assert_eq!(rec.normalizer(), &before);
        rec.record(0, 5, Duration::ZERO, &[vec![5.0, 5.0], vec![PENALTY, PENALTY]]);
        rec.record(1, 6, Duration::ZERO, &[vec![5.0, 5.0]]);
        let pts = rec.points();
        assert!(pts[0].phv.is_finite());
        assert_eq!(pts[0].phv, pts[1].phv);
    }

    #[test]
    fn trace_csv_has_header_and_one_row_per_point() {
        let r = RunResult::<()> {
            population: Vec::new(),
            trace: vec![tp(0, 10, 0.5), tp(1, 20, 0.7)],
            evaluations: 20,
            elapsed: Duration::ZERO,
        };
        let csv = r.trace_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "generation,evaluations,elapsed_s,phv");
        assert!(lines[1].starts_with("0,10,"));
    }

    #[test]
    fn front_csv_round_trips_objective_values() {
        let r = RunResult {
            population: vec![((), vec![1.0, 2.0]), ((), vec![2.0, 1.0])],
            trace: Vec::new(),
            evaluations: 0,
            elapsed: Duration::ZERO,
        };
        let csv = r.front_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "obj0,obj1");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("1.000000000"));
    }

    #[test]
    fn evaluations_to_reach_finds_the_first_crossing() {
        let trace = vec![tp(0, 10, 0.1), tp(1, 20, 0.5), tp(2, 30, 0.9)];
        assert_eq!(evaluations_to_reach(&trace, 0.4), Some(20));
        assert_eq!(evaluations_to_reach(&trace, 0.95), None);
    }

    #[test]
    fn convergence_point_finds_the_terminal_plateau() {
        let mut trace: Vec<TracePoint> = (0..10).map(|i| tp(i, i as u64, i as f64 * 0.1)).collect();
        // Plateau at 1.0 from generation 10 on.
        trace.extend((10..20).map(|i| tp(i, i as u64, 1.0)));
        let idx = convergence_point(&trace, 0.005).expect("has plateau");
        assert_eq!(idx, 10);
    }

    #[test]
    fn convergence_point_ignores_early_pauses() {
        // A pause at 0.5 must not count as convergence when the run later
        // climbs to 1.0.
        let mut trace: Vec<TracePoint> = vec![tp(0, 0, 0.5); 8];
        trace.extend((0..5).map(|i| tp(8 + i, 8 + i as u64, 1.0)));
        let idx = convergence_point(&trace, 0.005).expect("converges");
        assert_eq!(idx, 8);
    }

    #[test]
    fn convergence_point_handles_empty_traces() {
        assert_eq!(convergence_point(&[], 0.005), None);
    }
}
