//! Pareto hypervolume (PHV) computation.
//!
//! The hypervolume of a point set `S` with respect to a reference point `r`
//! is the Lebesgue measure of the region dominated by `S` and bounded by
//! `r`. It is the solution-quality metric used throughout the MOELA paper
//! (Tables I and II both report PHV-derived quantities).
//!
//! Two implementations are provided:
//!
//! * [`hypervolume`] — exact. Dimension-specialized: a sweep for `M = 2`,
//!   and the WFG recursive exclusive-hypervolume algorithm (While et al.,
//!   2012) for `M ≥ 3`. Exact HV is exponential in `M` in the worst case;
//!   for the fronts this workspace produces (`M ≤ 5`, a few hundred points)
//!   it is comfortably fast.
//! * [`monte_carlo_hypervolume`] — an unbiased sampling estimator used by
//!   the test-suite to cross-validate the exact code and usable for large
//!   `M`.
//!
//! Points that do not dominate the reference point contribute only the part
//! of their box that lies inside the reference box; points entirely outside
//! contribute nothing.

use rand::Rng;

use crate::pareto::{dominates, weakly_dominates};

/// Exact hypervolume of `points` with respect to `reference`
/// (minimization: a point contributes iff it is ≤ `reference` in every
/// coordinate after clamping).
///
/// # Panics
///
/// Panics if any point's length differs from `reference.len()`, or if
/// `reference` is empty.
///
/// # Example
///
/// ```
/// use moela_moo::hypervolume::hypervolume;
///
/// // A single point at the origin dominates the whole unit box.
/// assert_eq!(hypervolume(&[vec![0.0, 0.0]], &[1.0, 1.0]), 1.0);
/// // Two staircase points.
/// let hv = hypervolume(&[vec![0.25, 0.75], vec![0.75, 0.25]], &[1.0, 1.0]);
/// assert!((hv - 0.3125).abs() < 1e-12);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    assert!(!reference.is_empty(), "reference point must be non-empty");
    for p in points {
        assert_eq!(p.len(), reference.len(), "point dimensionality must match the reference point");
    }
    // Keep only points strictly inside the reference box in at least every
    // dimension (clamp is not needed for minimization: a coordinate above
    // the reference yields an empty box, so we drop those points).
    let mut inside: Vec<Vec<f64>> =
        points.iter().filter(|p| p.iter().zip(reference).all(|(&x, &r)| x < r)).cloned().collect();
    if inside.is_empty() {
        return 0.0;
    }
    filter_non_dominated(&mut inside);
    match reference.len() {
        1 => {
            let best = inside.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            reference[0] - best
        }
        2 => hv2d(&mut inside, reference),
        _ => wfg(&inside, reference),
    }
}

/// Removes dominated and duplicate points in place.
fn filter_non_dominated(points: &mut Vec<Vec<f64>>) {
    let mut keep: Vec<Vec<f64>> = Vec::with_capacity(points.len());
    'outer: for p in points.drain(..) {
        let mut i = 0;
        while i < keep.len() {
            if weakly_dominates(&keep[i], &p) {
                continue 'outer;
            }
            if dominates(&p, &keep[i]) {
                keep.swap_remove(i);
            } else {
                i += 1;
            }
        }
        keep.push(p);
    }
    *points = keep;
}

/// 2-D hypervolume by sweeping points sorted on the first objective.
fn hv2d(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    points.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("NaN objective"));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in points.iter() {
        // points are mutually non-dominated, so y strictly decreases.
        hv += (reference[0] - p[0]) * (prev_y - p[1]);
        prev_y = p[1];
    }
    hv
}

/// WFG exclusive-hypervolume recursion.
///
/// `hv(S) = Σ_i exclhv(p_i, {p_{i+1}, …})` where
/// `exclhv(p, S) = inclhv(p) − hv(limitset(p, S))`.
fn wfg(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    // Sorting by the last objective descending improves limit-set pruning.
    let mut pts: Vec<Vec<f64>> = points.to_vec();
    let last = reference.len() - 1;
    pts.sort_by(|a, b| b[last].partial_cmp(&a[last]).expect("NaN objective"));
    wfg_rec(&pts, reference)
}

fn wfg_rec(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    match points.len() {
        0 => 0.0,
        1 => inclhv(&points[0], reference),
        _ => {
            let mut total = 0.0;
            for (i, p) in points.iter().enumerate() {
                total += exclhv(p, &points[i + 1..], reference);
            }
            total
        }
    }
}

fn inclhv(p: &[f64], reference: &[f64]) -> f64 {
    p.iter().zip(reference).map(|(&x, &r)| r - x).product()
}

fn exclhv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut limited: Vec<Vec<f64>> =
        rest.iter().map(|q| q.iter().zip(p).map(|(&qi, &pi)| qi.max(pi)).collect()).collect();
    filter_non_dominated(&mut limited);
    inclhv(p, reference) - wfg_rec(&limited, reference)
}

/// Unbiased Monte-Carlo estimate of the hypervolume using `samples` uniform
/// draws inside the box `[ideal, reference]`.
///
/// `ideal` must weakly dominate every point for the estimate to converge to
/// the exact hypervolume; pass the component-wise minimum of the front (or
/// anything below it).
///
/// # Example
///
/// ```
/// use moela_moo::hypervolume::monte_carlo_hypervolume;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let est = monte_carlo_hypervolume(
///     &[vec![0.0, 0.0]],
///     &[1.0, 1.0],
///     &[0.0, 0.0],
///     20_000,
///     &mut rng,
/// );
/// assert!((est - 1.0).abs() < 0.02);
/// ```
pub fn monte_carlo_hypervolume(
    points: &[Vec<f64>],
    reference: &[f64],
    ideal: &[f64],
    samples: u32,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(reference.len(), ideal.len());
    let box_volume: f64 = reference.iter().zip(ideal).map(|(&r, &i)| (r - i).max(0.0)).product();
    if box_volume == 0.0 || points.is_empty() || samples == 0 {
        return 0.0;
    }
    let m = reference.len();
    let mut hits = 0u32;
    let mut sample = vec![0.0f64; m];
    for _ in 0..samples {
        for k in 0..m {
            sample[k] = rng.gen_range(ideal[k]..reference[k]);
        }
        if points.iter().any(|p| p.iter().zip(&sample).all(|(&pi, &si)| pi <= si)) {
            hits += 1;
        }
    }
    box_volume * f64::from(hits) / f64::from(samples)
}

/// Relative hypervolume improvement of `ours` over `theirs`, expressed the
/// way Table II of the paper reports it: `(hv_ours − hv_theirs) / hv_theirs`.
///
/// Returns `f64::INFINITY` when `theirs` is zero but `ours` is positive, and
/// `0.0` when both are zero.
pub fn hv_gain(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        if ours > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (ours - theirs) / theirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn empty_and_outside_points_have_zero_volume() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[vec![2.0, 2.0]], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[vec![0.5, 1.5]], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn one_dimensional_volume_is_a_length() {
        let hv = hypervolume(&[vec![0.25], vec![0.5]], &[1.0]);
        assert!((hv - 0.75).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_staircase_matches_hand_computation() {
        let pts = vec![vec![0.1, 0.9], vec![0.5, 0.5], vec![0.9, 0.1]];
        // Sweep: (1-0.1)(1-0.9) + (1-0.5)(0.9-0.5) + (1-0.9)(0.5-0.1)
        let expected = 0.9 * 0.1 + 0.5 * 0.4 + 0.1 * 0.4;
        assert!((hypervolume(&pts, &[1.0, 1.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_the_volume() {
        let front = vec![vec![0.2, 0.8], vec![0.8, 0.2]];
        let with_dominated = vec![vec![0.2, 0.8], vec![0.8, 0.2], vec![0.9, 0.9]];
        assert_eq!(hypervolume(&front, &[1.0, 1.0]), hypervolume(&with_dominated, &[1.0, 1.0]));
    }

    #[test]
    fn duplicate_points_do_not_double_count() {
        let once = vec![vec![0.3, 0.3]];
        let twice = vec![vec![0.3, 0.3], vec![0.3, 0.3]];
        assert_eq!(hypervolume(&once, &[1.0, 1.0]), hypervolume(&twice, &[1.0, 1.0]));
    }

    #[test]
    fn three_dimensional_boxes_union_exactly() {
        // Two boxes anchored at (0,0,0.5) and (0.5,0.5,0): the union volume
        // is 0.5 + 0.5 - overlap, overlap box = [0.5,1]x[0.5,1]x[0.5,1].
        let pts = vec![vec![0.0, 0.0, 0.5], vec![0.5, 0.5, 0.0]];
        let expected = 0.5 + 0.25 - 0.125;
        assert!((hypervolume(&pts, &[1.0, 1.0, 1.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn five_dimensional_single_point() {
        let p = vec![vec![0.5; 5]];
        let hv = hypervolume(&p, &[1.0; 5]);
        assert!((hv - 0.5f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_monte_carlo_in_4d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pts: Vec<Vec<f64>> =
            (0..12).map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let exact = hypervolume(&pts, &[1.0; 4]);
        let est = monte_carlo_hypervolume(&pts, &[1.0; 4], &[0.0; 4], 200_000, &mut rng);
        assert!((exact - est).abs() < 0.02, "exact {exact} vs monte-carlo {est}");
    }

    #[test]
    fn adding_a_nondominated_point_never_decreases_hv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut pts: Vec<Vec<f64>> =
            (0..8).map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let before = hypervolume(&pts, &[1.0; 3]);
        pts.push(vec![0.01, 0.01, 0.01]);
        let after = hypervolume(&pts, &[1.0; 3]);
        assert!(after >= before);
    }

    #[test]
    fn gain_formula_matches_paper_convention() {
        assert!((hv_gain(1.2, 1.0) - 0.2).abs() < 1e-12);
        assert_eq!(hv_gain(0.0, 0.0), 0.0);
        assert_eq!(hv_gain(1.0, 0.0), f64::INFINITY);
    }
}
