//! Pareto hypervolume (PHV) computation.
//!
//! The hypervolume of a point set `S` with respect to a reference point `r`
//! is the Lebesgue measure of the region dominated by `S` and bounded by
//! `r`. It is the solution-quality metric used throughout the MOELA paper
//! (Tables I and II both report PHV-derived quantities).
//!
//! Two implementations are provided:
//!
//! * [`hypervolume`] — exact. Dimension-specialized: a sweep for `M = 2`,
//!   and the WFG recursive exclusive-hypervolume algorithm (While et al.,
//!   2012) for `M ≥ 3`. Exact HV is exponential in `M` in the worst case;
//!   for the fronts this workspace produces (`M ≤ 5`, a few hundred points)
//!   it is comfortably fast.
//! * [`monte_carlo_hypervolume`] — an unbiased sampling estimator used by
//!   the test-suite to cross-validate the exact code and usable for large
//!   `M`.
//!
//! Points that do not dominate the reference point contribute only the part
//! of their box that lies inside the reference box; points entirely outside
//! contribute nothing.

use rand::Rng;

use crate::pareto::{dominates, weakly_dominates};

/// A structured reason why a hypervolume computation cannot produce a
/// trustworthy value.
///
/// Returned by [`try_hypervolume`] and [`try_monte_carlo_hypervolume`];
/// the infallible variants instead *skip* non-finite points (documented
/// on each function) and panic on malformed reference boxes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HvError {
    /// The reference point has no coordinates.
    EmptyReference,
    /// The reference (or ideal) point contains NaN/±Inf.
    NonFiniteReference,
    /// A point's dimensionality differs from the reference point's.
    DimensionMismatch {
        /// Reference-point dimensionality.
        expected: usize,
        /// Offending point's dimensionality.
        got: usize,
    },
    /// A point contains NaN/±Inf.
    NonFinitePoint {
        /// Index of the offending point in the input slice.
        index: usize,
    },
}

impl std::fmt::Display for HvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HvError::EmptyReference => write!(f, "hypervolume reference point is empty"),
            HvError::NonFiniteReference => {
                write!(f, "hypervolume reference/ideal point contains a non-finite value")
            }
            HvError::DimensionMismatch { expected, got } => {
                write!(f, "hypervolume point has {got} objectives, reference has {expected}")
            }
            HvError::NonFinitePoint { index } => {
                write!(f, "hypervolume input point {index} contains a non-finite value")
            }
        }
    }
}

fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// Exact hypervolume with full input validation: every non-finite or
/// mismatched input becomes a structured [`HvError`] instead of a skip
/// or a panic.
pub fn try_hypervolume(points: &[Vec<f64>], reference: &[f64]) -> Result<f64, HvError> {
    if reference.is_empty() {
        return Err(HvError::EmptyReference);
    }
    if !all_finite(reference) {
        return Err(HvError::NonFiniteReference);
    }
    for (index, p) in points.iter().enumerate() {
        if p.len() != reference.len() {
            return Err(HvError::DimensionMismatch { expected: reference.len(), got: p.len() });
        }
        if !all_finite(p) {
            return Err(HvError::NonFinitePoint { index });
        }
    }
    Ok(hypervolume(points, reference))
}

/// Exact hypervolume of `points` with respect to `reference`
/// (minimization: a point contributes iff it is ≤ `reference` in every
/// coordinate after clamping).
///
/// Points containing NaN or ±Inf are **skipped**: NaN and +Inf
/// coordinates already fail the inside-the-reference-box test, and a
/// −Inf coordinate would otherwise contribute unbounded garbage volume.
/// Use [`try_hypervolume`] to surface such points as errors instead.
///
/// # Panics
///
/// Panics if any point's length differs from `reference.len()`, or if
/// `reference` is empty or non-finite.
///
/// # Example
///
/// ```
/// use moela_moo::hypervolume::hypervolume;
///
/// // A single point at the origin dominates the whole unit box.
/// assert_eq!(hypervolume(&[vec![0.0, 0.0]], &[1.0, 1.0]), 1.0);
/// // Two staircase points.
/// let hv = hypervolume(&[vec![0.25, 0.75], vec![0.75, 0.25]], &[1.0, 1.0]);
/// assert!((hv - 0.3125).abs() < 1e-12);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    assert!(!reference.is_empty(), "reference point must be non-empty");
    assert!(all_finite(reference), "reference point must be finite");
    for p in points {
        assert_eq!(p.len(), reference.len(), "point dimensionality must match the reference point");
    }
    // Keep only finite points strictly inside the reference box (clamp is
    // not needed for minimization: a coordinate above the reference yields
    // an empty box, so we drop those points; non-finite points are the
    // documented skip above).
    let mut inside: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| all_finite(p))
        .filter(|p| p.iter().zip(reference).all(|(&x, &r)| x < r))
        .cloned()
        .collect();
    if inside.is_empty() {
        return 0.0;
    }
    filter_non_dominated(&mut inside);
    match reference.len() {
        1 => {
            let best = inside.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            reference[0] - best
        }
        2 => hv2d(&mut inside, reference),
        _ => wfg(&inside, reference),
    }
}

/// Removes dominated and duplicate points in place.
fn filter_non_dominated(points: &mut Vec<Vec<f64>>) {
    let mut keep: Vec<Vec<f64>> = Vec::with_capacity(points.len());
    'outer: for p in points.drain(..) {
        let mut i = 0;
        while i < keep.len() {
            if weakly_dominates(&keep[i], &p) {
                continue 'outer;
            }
            if dominates(&p, &keep[i]) {
                keep.swap_remove(i);
            } else {
                i += 1;
            }
        }
        keep.push(p);
    }
    *points = keep;
}

/// 2-D hypervolume by sweeping points sorted on the first objective.
fn hv2d(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    points.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in points.iter() {
        // points are mutually non-dominated, so y strictly decreases.
        hv += (reference[0] - p[0]) * (prev_y - p[1]);
        prev_y = p[1];
    }
    hv
}

/// WFG exclusive-hypervolume recursion.
///
/// `hv(S) = Σ_i exclhv(p_i, {p_{i+1}, …})` where
/// `exclhv(p, S) = inclhv(p) − hv(limitset(p, S))`.
fn wfg(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    // Sorting by the last objective descending improves limit-set pruning.
    let mut pts: Vec<Vec<f64>> = points.to_vec();
    let last = reference.len() - 1;
    pts.sort_by(|a, b| b[last].total_cmp(&a[last]));
    wfg_rec(&pts, reference)
}

fn wfg_rec(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    match points.len() {
        0 => 0.0,
        1 => inclhv(&points[0], reference),
        _ => {
            let mut total = 0.0;
            for (i, p) in points.iter().enumerate() {
                total += exclhv(p, &points[i + 1..], reference);
            }
            total
        }
    }
}

fn inclhv(p: &[f64], reference: &[f64]) -> f64 {
    p.iter().zip(reference).map(|(&x, &r)| r - x).product()
}

fn exclhv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut limited: Vec<Vec<f64>> =
        rest.iter().map(|q| q.iter().zip(p).map(|(&qi, &pi)| qi.max(pi)).collect()).collect();
    filter_non_dominated(&mut limited);
    inclhv(p, reference) - wfg_rec(&limited, reference)
}

/// Unbiased Monte-Carlo estimate of the hypervolume using `samples` uniform
/// draws inside the box `[ideal, reference]`.
///
/// `ideal` must weakly dominate every point for the estimate to converge to
/// the exact hypervolume; pass the component-wise minimum of the front (or
/// anything below it).
///
/// Points containing NaN or ±Inf are **skipped** (a −Inf coordinate would
/// otherwise capture samples it has no right to); use
/// [`try_monte_carlo_hypervolume`] to surface them as errors instead.
///
/// # Panics
///
/// Panics if `reference` and `ideal` differ in length or are non-finite.
///
/// # Example
///
/// ```
/// use moela_moo::hypervolume::monte_carlo_hypervolume;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let est = monte_carlo_hypervolume(
///     &[vec![0.0, 0.0]],
///     &[1.0, 1.0],
///     &[0.0, 0.0],
///     20_000,
///     &mut rng,
/// );
/// assert!((est - 1.0).abs() < 0.02);
/// ```
pub fn monte_carlo_hypervolume(
    points: &[Vec<f64>],
    reference: &[f64],
    ideal: &[f64],
    samples: u32,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(reference.len(), ideal.len());
    assert!(
        all_finite(reference) && all_finite(ideal),
        "reference and ideal points must be finite"
    );
    let finite: Vec<&Vec<f64>> = points.iter().filter(|p| all_finite(p)).collect();
    let box_volume: f64 = reference.iter().zip(ideal).map(|(&r, &i)| (r - i).max(0.0)).product();
    if box_volume == 0.0 || finite.is_empty() || samples == 0 {
        return 0.0;
    }
    let m = reference.len();
    let mut hits = 0u32;
    let mut sample = vec![0.0f64; m];
    for _ in 0..samples {
        for k in 0..m {
            sample[k] = rng.gen_range(ideal[k]..reference[k]);
        }
        if finite.iter().any(|p| p.iter().zip(&sample).all(|(&pi, &si)| pi <= si)) {
            hits += 1;
        }
    }
    box_volume * f64::from(hits) / f64::from(samples)
}

/// Monte-Carlo hypervolume with full input validation: every non-finite
/// or mismatched input becomes a structured [`HvError`].
pub fn try_monte_carlo_hypervolume(
    points: &[Vec<f64>],
    reference: &[f64],
    ideal: &[f64],
    samples: u32,
    rng: &mut impl Rng,
) -> Result<f64, HvError> {
    if reference.is_empty() {
        return Err(HvError::EmptyReference);
    }
    if !all_finite(reference) || !all_finite(ideal) {
        return Err(HvError::NonFiniteReference);
    }
    if ideal.len() != reference.len() {
        return Err(HvError::DimensionMismatch { expected: reference.len(), got: ideal.len() });
    }
    for (index, p) in points.iter().enumerate() {
        if p.len() != reference.len() {
            return Err(HvError::DimensionMismatch { expected: reference.len(), got: p.len() });
        }
        if !all_finite(p) {
            return Err(HvError::NonFinitePoint { index });
        }
    }
    Ok(monte_carlo_hypervolume(points, reference, ideal, samples, rng))
}

/// Relative hypervolume improvement of `ours` over `theirs`, expressed the
/// way Table II of the paper reports it: `(hv_ours − hv_theirs) / hv_theirs`.
///
/// Returns `f64::INFINITY` when `theirs` is zero but `ours` is positive, and
/// `0.0` when both are zero.
pub fn hv_gain(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        if ours > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (ours - theirs) / theirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn empty_and_outside_points_have_zero_volume() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[vec![2.0, 2.0]], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[vec![0.5, 1.5]], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn one_dimensional_volume_is_a_length() {
        let hv = hypervolume(&[vec![0.25], vec![0.5]], &[1.0]);
        assert!((hv - 0.75).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_staircase_matches_hand_computation() {
        let pts = vec![vec![0.1, 0.9], vec![0.5, 0.5], vec![0.9, 0.1]];
        // Sweep: (1-0.1)(1-0.9) + (1-0.5)(0.9-0.5) + (1-0.9)(0.5-0.1)
        let expected = 0.9 * 0.1 + 0.5 * 0.4 + 0.1 * 0.4;
        assert!((hypervolume(&pts, &[1.0, 1.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_the_volume() {
        let front = vec![vec![0.2, 0.8], vec![0.8, 0.2]];
        let with_dominated = vec![vec![0.2, 0.8], vec![0.8, 0.2], vec![0.9, 0.9]];
        assert_eq!(hypervolume(&front, &[1.0, 1.0]), hypervolume(&with_dominated, &[1.0, 1.0]));
    }

    #[test]
    fn duplicate_points_do_not_double_count() {
        let once = vec![vec![0.3, 0.3]];
        let twice = vec![vec![0.3, 0.3], vec![0.3, 0.3]];
        assert_eq!(hypervolume(&once, &[1.0, 1.0]), hypervolume(&twice, &[1.0, 1.0]));
    }

    #[test]
    fn three_dimensional_boxes_union_exactly() {
        // Two boxes anchored at (0,0,0.5) and (0.5,0.5,0): the union volume
        // is 0.5 + 0.5 - overlap, overlap box = [0.5,1]x[0.5,1]x[0.5,1].
        let pts = vec![vec![0.0, 0.0, 0.5], vec![0.5, 0.5, 0.0]];
        let expected = 0.5 + 0.25 - 0.125;
        assert!((hypervolume(&pts, &[1.0, 1.0, 1.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn five_dimensional_single_point() {
        let p = vec![vec![0.5; 5]];
        let hv = hypervolume(&p, &[1.0; 5]);
        assert!((hv - 0.5f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_monte_carlo_in_4d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pts: Vec<Vec<f64>> =
            (0..12).map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let exact = hypervolume(&pts, &[1.0; 4]);
        let est = monte_carlo_hypervolume(&pts, &[1.0; 4], &[0.0; 4], 200_000, &mut rng);
        assert!((exact - est).abs() < 0.02, "exact {exact} vs monte-carlo {est}");
    }

    #[test]
    fn adding_a_nondominated_point_never_decreases_hv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut pts: Vec<Vec<f64>> =
            (0..8).map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let before = hypervolume(&pts, &[1.0; 3]);
        pts.push(vec![0.01, 0.01, 0.01]);
        let after = hypervolume(&pts, &[1.0; 3]);
        assert!(after >= before);
    }

    #[test]
    fn non_finite_points_are_skipped_not_counted() {
        let clean = vec![vec![0.25, 0.75], vec![0.75, 0.25]];
        let base = hypervolume(&clean, &[1.0, 1.0]);
        // Regression: a −Inf coordinate passes the `x < r` inside-filter
        // and used to blow the volume up to +Inf.
        let mut dirty = clean.clone();
        dirty.push(vec![f64::NEG_INFINITY, 0.5]);
        dirty.push(vec![f64::NAN, 0.1]);
        dirty.push(vec![0.1, f64::INFINITY]);
        let hv = hypervolume(&dirty, &[1.0, 1.0]);
        assert!(hv.is_finite());
        assert_eq!(hv, base);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let est = monte_carlo_hypervolume(&dirty, &[1.0, 1.0], &[0.0, 0.0], 50_000, &mut rng);
        assert!(est.is_finite());
        assert!((est - base).abs() < 0.02);
    }

    #[test]
    fn try_hypervolume_reports_structured_errors() {
        let clean = vec![vec![0.5, 0.5]];
        assert_eq!(try_hypervolume(&clean, &[1.0, 1.0]), Ok(0.25));
        assert_eq!(try_hypervolume(&clean, &[]), Err(HvError::EmptyReference));
        assert_eq!(try_hypervolume(&clean, &[1.0, f64::NAN]), Err(HvError::NonFiniteReference));
        assert_eq!(
            try_hypervolume(&[vec![0.5]], &[1.0, 1.0]),
            Err(HvError::DimensionMismatch { expected: 2, got: 1 })
        );
        assert_eq!(
            try_hypervolume(&[vec![0.5, 0.5], vec![f64::NAN, 0.5]], &[1.0, 1.0]),
            Err(HvError::NonFinitePoint { index: 1 })
        );
        let shown = format!("{}", HvError::NonFinitePoint { index: 1 });
        assert!(shown.contains("point 1"));
    }

    #[test]
    fn try_monte_carlo_reports_structured_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let clean = vec![vec![0.0, 0.0]];
        let est =
            try_monte_carlo_hypervolume(&clean, &[1.0, 1.0], &[0.0, 0.0], 1_000, &mut rng).unwrap();
        assert!((est - 1.0).abs() < 1e-9);
        assert_eq!(
            try_monte_carlo_hypervolume(&clean, &[1.0, 1.0], &[0.0, f64::NAN], 10, &mut rng),
            Err(HvError::NonFiniteReference)
        );
        assert_eq!(
            try_monte_carlo_hypervolume(&clean, &[1.0, 1.0], &[0.0], 10, &mut rng),
            Err(HvError::DimensionMismatch { expected: 2, got: 1 })
        );
        assert_eq!(
            try_monte_carlo_hypervolume(
                &[vec![f64::INFINITY, 0.0]],
                &[1.0, 1.0],
                &[0.0, 0.0],
                10,
                &mut rng
            ),
            Err(HvError::NonFinitePoint { index: 0 })
        );
    }

    #[test]
    fn gain_formula_matches_paper_convention() {
        assert!((hv_gain(1.2, 1.0) - 0.2).abs() < 1e-12);
        assert_eq!(hv_gain(0.0, 0.0), 0.0);
        assert_eq!(hv_gain(1.0, 0.0), f64::INFINITY);
    }
}
