//! Fault-contained objective evaluation.
//!
//! As the evaluator is swapped for expensive external backends (thermal RC
//! solvers, cycle-accurate NoC simulators), evaluations start to *fail*:
//! they panic, return NaN/Inf, or produce malformed vectors. This module
//! turns those failures into data instead of process aborts:
//!
//! * [`GuardedEvaluator`] wraps the workspace's
//!   [`ParallelEvaluator`](crate::ParallelEvaluator) with per-candidate
//!   panic isolation and result validation, classifying every failure as a
//!   structured [`EvalFault`];
//! * [`FaultPolicy`] decides what happens next — abort the run with a
//!   clean error ([`FaultPolicy::Fail`]), quarantine the candidate behind a
//!   finite worst-case penalty vector ([`FaultPolicy::PenalizeWorst`]), or
//!   drop it ([`FaultPolicy::Skip`]) — optionally after a bounded number
//!   of deterministic retries;
//! * [`FaultLog`] counts every fault, retry and quarantine decision, and
//!   round-trips through checkpoints so a resumed run reports the same
//!   health numbers as an uninterrupted one.
//!
//! The determinism contract of the rest of the workspace is preserved:
//! with the same seed and fault stream, results are bit-identical at any
//! thread count, because fault decisions key off per-candidate evaluation
//! *ordinals* reserved before the batch fans out (see
//! [`Problem::reserve_ordinals`]) and retries run sequentially in batch
//! order.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use moela_obs::Obs;
use moela_persist::{PersistError, Restore, Snapshot, Value};

use crate::parallel::ParallelEvaluator;
use crate::problem::Problem;

/// The finite worst-case objective value used to quarantine faulted
/// candidates under [`FaultPolicy::PenalizeWorst`].
///
/// It is finite (so dominance comparisons stay well-defined and archives,
/// normalizers and forests are never poisoned by NaN/Inf) but so large
/// that a penalty vector is dominated by every real design.
pub const PENALTY: f64 = 1e30;

/// A penalty objective vector for `m` objectives.
pub fn penalty_objectives(m: usize) -> Vec<f64> {
    vec![PENALTY; m]
}

/// `true` if `objectives` is a quarantine penalty vector (any coordinate
/// at or beyond [`PENALTY`]).
pub fn is_penalty(objectives: &[f64]) -> bool {
    objectives.iter().any(|&v| v >= PENALTY)
}

/// `true` if `objectives` must be kept out of archives, normalizers and
/// training sets: non-finite or a quarantine penalty vector.
pub fn is_quarantined(objectives: &[f64]) -> bool {
    objectives.iter().any(|&v| !v.is_finite() || v >= PENALTY)
}

/// What went wrong with one candidate's evaluation.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum FaultKind {
    /// The evaluation panicked.
    Panic,
    /// The objective vector contained NaN or ±Inf.
    NonFinite,
    /// The objective vector had the wrong number of entries.
    WrongArity,
}

impl FaultKind {
    /// A short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::NonFinite => "non-finite",
            FaultKind::WrongArity => "wrong-arity",
        }
    }
}

/// A structured evaluation failure: which candidate of the batch failed,
/// how, and with what diagnostic.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct EvalFault {
    /// The failure class.
    pub kind: FaultKind,
    /// Index of the candidate within its batch.
    pub index: usize,
    /// Human-readable diagnostic (panic message, offending arity, …).
    pub message: String,
}

impl std::fmt::Display for EvalFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "evaluation fault ({}) at batch index {}: {}",
            self.kind.label(),
            self.index,
            self.message
        )
    }
}

/// How an optimizer responds to an evaluation fault that survived all
/// retries.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub enum FaultPolicy {
    /// Stop the run with a structured error (loud by default — matches
    /// the pre-fault-containment behavior, minus the process abort).
    #[default]
    Fail,
    /// Replace the candidate's objectives with the finite worst-case
    /// [`penalty_objectives`] vector so selection pressure retires it.
    PenalizeWorst,
    /// Drop the candidate wherever the algorithm structure allows;
    /// contexts that need one vector per candidate (initial populations)
    /// fall back to the penalty vector.
    Skip,
}

impl FaultPolicy {
    /// Parses a CLI name (`fail` | `penalize-worst` | `skip`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_ascii_lowercase().as_str() {
            "fail" => Ok(FaultPolicy::Fail),
            "penalize-worst" => Ok(FaultPolicy::PenalizeWorst),
            "skip" => Ok(FaultPolicy::Skip),
            other => {
                Err(format!("unknown fault policy '{other}' (try: fail, penalize-worst, skip)"))
            }
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPolicy::Fail => "fail",
            FaultPolicy::PenalizeWorst => "penalize-worst",
            FaultPolicy::Skip => "skip",
        }
    }
}

/// Fault-handling configuration shared by every optimizer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// What to do with a candidate whose evaluation keeps faulting.
    pub policy: FaultPolicy,
    /// How many times to re-evaluate a faulted candidate before applying
    /// the policy. Retries run sequentially in batch order, each drawing a
    /// fresh evaluation ordinal, so they are deterministic at any thread
    /// count — and can genuinely succeed under injected (seeded) chaos.
    pub retries: u32,
}

/// Counters describing every fault seen by one optimizer run.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct FaultLog {
    /// Evaluations that panicked.
    pub panics: u64,
    /// Evaluations returning NaN/±Inf objectives.
    pub non_finite: u64,
    /// Evaluations returning a wrong-arity objective vector.
    pub wrong_arity: u64,
    /// Retry attempts spent.
    pub retries: u64,
    /// Faults cleared by a retry.
    pub recovered: u64,
    /// Candidates quarantined behind the penalty vector.
    pub penalized: u64,
    /// Candidates dropped.
    pub skipped: u64,
}

impl FaultLog {
    /// Total faulted evaluation attempts (every kind, retries included).
    pub fn faults(&self) -> u64 {
        self.panics + self.non_finite + self.wrong_arity
    }

    /// `true` if no fault was ever observed.
    pub fn is_clean(&self) -> bool {
        *self == FaultLog::default()
    }

    fn count(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Panic => self.panics += 1,
            FaultKind::NonFinite => self.non_finite += 1,
            FaultKind::WrongArity => self.wrong_arity += 1,
        }
    }
}

impl Snapshot for FaultLog {
    fn snapshot(&self) -> Value {
        Value::object(vec![
            ("panics", Value::U64(self.panics)),
            ("non_finite", Value::U64(self.non_finite)),
            ("wrong_arity", Value::U64(self.wrong_arity)),
            ("retries", Value::U64(self.retries)),
            ("recovered", Value::U64(self.recovered)),
            ("penalized", Value::U64(self.penalized)),
            ("skipped", Value::U64(self.skipped)),
        ])
    }
}

impl Restore for FaultLog {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        Ok(FaultLog {
            panics: value.field("panics")?.as_u64()?,
            non_finite: value.field("non_finite")?.as_u64()?,
            wrong_arity: value.field("wrong_arity")?.as_u64()?,
            retries: value.field("retries")?.as_u64()?,
            recovered: value.field("recovered")?.as_u64()?,
            penalized: value.field("penalized")?.as_u64()?,
            skipped: value.field("skipped")?.as_u64()?,
        })
    }
}

/// Restores a fault log from an optional checkpoint field: states
/// checkpointed before fault containment existed simply have none.
pub fn fault_log_from(state: &Value, key: &str) -> Result<FaultLog, PersistError> {
    match state.field(key) {
        Ok(v) => FaultLog::restore(v),
        Err(_) => Ok(FaultLog::default()),
    }
}

thread_local! {
    /// Set while a guarded evaluation runs on this thread, so the global
    /// panic hook knows to swallow the (expected, contained) output.
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics contained by a [`GuardedEvaluator`] and delegates every other
/// panic to the previously installed hook — `#[should_panic]` tests and
/// genuine crashes keep printing normally.
pub fn suppress_contained_panic_output() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, catching a panic without letting the panic hook print.
fn catch_quiet<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    suppress_contained_panic_output();
    SUPPRESS.with(|s| s.set(true));
    let out = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS.with(|s| s.set(false));
    out
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Evaluates one candidate under full containment: panics are caught
/// quietly, and the returned vector is validated for arity and
/// finiteness.
fn guarded_eval_one<P: Problem>(
    problem: &P,
    base: Option<&P::Solution>,
    solution: &P::Solution,
    ordinal: u64,
    m: usize,
    index: usize,
) -> Result<Vec<f64>, EvalFault> {
    match catch_quiet(|| match base {
        Some(b) => problem.evaluate_neighbor_ordinal(b, solution, ordinal),
        None => problem.evaluate_ordinal(solution, ordinal),
    }) {
        Err(payload) => Err(EvalFault {
            kind: FaultKind::Panic,
            index,
            message: panic_message(payload.as_ref()),
        }),
        Ok(objs) if objs.len() != m => Err(EvalFault {
            kind: FaultKind::WrongArity,
            index,
            message: format!("expected {m} objectives, got {}", objs.len()),
        }),
        Ok(objs) if objs.iter().any(|v| !v.is_finite()) => Err(EvalFault {
            kind: FaultKind::NonFinite,
            index,
            message: format!("objective vector {objs:?} contains a non-finite value"),
        }),
        Ok(objs) => Ok(objs),
    }
}

/// The outcome of one guarded batch evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardedBatch {
    /// One entry per input candidate, in input order: `Some(objectives)`
    /// for clean (or penalized) evaluations, `None` for candidates the
    /// policy dropped (Skip) or that latched a Fail error.
    pub objectives: Vec<Option<Vec<f64>>>,
    /// Evaluation attempts paid for, retries included — add this to the
    /// run's evaluation budget.
    pub attempts: u64,
}

impl GuardedBatch {
    /// Objectives with dropped slots filled by [`penalty_objectives`],
    /// for contexts that structurally need one vector per candidate
    /// (initial populations).
    pub fn materialized(&self, m: usize) -> Vec<Vec<f64>> {
        self.objectives.iter().map(|o| o.clone().unwrap_or_else(|| penalty_objectives(m))).collect()
    }
}

/// A fault-containing evaluation front-end: the
/// [`ParallelEvaluator`](crate::ParallelEvaluator) plus per-candidate
/// panic isolation, validation, retries, and policy application.
///
/// On the happy path (no faults) it returns exactly what the parallel
/// evaluator would — same values, same order, same cost — so fault
/// containment is zero-cost for byte-identical traces.
#[derive(Clone, Debug)]
pub struct GuardedEvaluator {
    evaluator: ParallelEvaluator,
    config: FaultConfig,
    log: FaultLog,
    error: Option<EvalFault>,
    obs: Obs,
}

impl GuardedEvaluator {
    /// A guard with `threads` evaluation workers (0 = auto) and the given
    /// fault policy.
    pub fn new(threads: usize, config: FaultConfig) -> Self {
        Self {
            evaluator: ParallelEvaluator::new(threads),
            config,
            log: FaultLog::default(),
            error: None,
            obs: Obs::disabled(),
        }
    }

    /// Rebuilds a guard from a checkpointed fault log.
    pub fn from_parts(threads: usize, config: FaultConfig, log: FaultLog) -> Self {
        Self {
            evaluator: ParallelEvaluator::new(threads),
            config,
            log,
            error: None,
            obs: Obs::disabled(),
        }
    }

    /// Installs the observability handle every batch evaluation reports
    /// through (`evaluate` spans plus `evaluations`/`eval_faults`
    /// counters). The default handle is disabled and free.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The fault counters accumulated so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// The configured policy.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// The latched [`FaultPolicy::Fail`] error, if one occurred.
    pub fn error(&self) -> Option<&EvalFault> {
        self.error.as_ref()
    }

    /// `true` once a [`FaultPolicy::Fail`] fault has latched; the owning
    /// optimizer must stop stepping.
    pub fn poisoned(&self) -> bool {
        self.error.is_some()
    }

    /// Evaluates a batch under containment. See [`GuardedBatch`].
    pub fn evaluate<P>(&mut self, problem: &P, solutions: &[P::Solution]) -> GuardedBatch
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        self.evaluate_impl(problem, None, solutions)
    }

    /// Evaluates a batch of *neighbors of one base solution* under
    /// containment, routing through
    /// [`Problem::evaluate_neighbor_ordinal`] so delta-capable problems
    /// can score each move incrementally. The delta contract makes this
    /// bit-identical to [`evaluate`](Self::evaluate) on the same batch —
    /// callers switch freely between the two.
    pub fn evaluate_neighbors<P>(
        &mut self,
        problem: &P,
        base: &P::Solution,
        solutions: &[P::Solution],
    ) -> GuardedBatch
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        self.evaluate_impl(problem, Some(base), solutions)
    }

    fn evaluate_impl<P>(
        &mut self,
        problem: &P,
        neighbor_base: Option<&P::Solution>,
        solutions: &[P::Solution],
    ) -> GuardedBatch
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        if solutions.is_empty() || self.poisoned() {
            return GuardedBatch { objectives: vec![None; solutions.len()], attempts: 0 };
        }
        let _span = self.obs.span("evaluate");
        let faults_before = self.log.faults();
        let m = problem.objective_count();
        let base = problem.reserve_ordinals(solutions.len() as u64);
        let mut results =
            self.evaluator.try_evaluate_with_base(problem, neighbor_base, solutions, base, m);
        let mut attempts = solutions.len() as u64;

        // Retries run sequentially in batch order: deterministic at any
        // thread count, and each attempt draws a fresh ordinal so seeded
        // chaos can clear on retry.
        for i in 0..results.len() {
            let Err(fault) = &results[i] else { continue };
            self.log.count(fault.kind);
            for _ in 0..self.config.retries {
                let ordinal = problem.reserve_ordinals(1);
                attempts += 1;
                self.log.retries += 1;
                match guarded_eval_one(problem, neighbor_base, &solutions[i], ordinal, m, i) {
                    Ok(objs) => {
                        self.log.recovered += 1;
                        results[i] = Ok(objs);
                        break;
                    }
                    Err(fault) => {
                        self.log.count(fault.kind);
                        results[i] = Err(fault);
                    }
                }
            }
        }

        let objectives = results
            .into_iter()
            .map(|r| match r {
                Ok(objs) => Some(objs),
                Err(fault) => match self.config.policy {
                    FaultPolicy::Fail => {
                        if self.error.is_none() {
                            self.error = Some(fault);
                        }
                        None
                    }
                    FaultPolicy::PenalizeWorst => {
                        self.log.penalized += 1;
                        Some(penalty_objectives(m))
                    }
                    FaultPolicy::Skip => {
                        self.log.skipped += 1;
                        None
                    }
                },
            })
            .collect();
        self.obs.counter("evaluations", attempts);
        let faulted = self.log.faults() - faults_before;
        if faulted > 0 {
            self.obs.counter("eval_faults", faulted);
        }
        GuardedBatch { objectives, attempts }
    }

    /// Evaluates a single candidate under containment.
    pub fn evaluate_one<P>(
        &mut self,
        problem: &P,
        solution: &P::Solution,
    ) -> (Option<Vec<f64>>, u64)
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        let batch = self.evaluate(problem, std::slice::from_ref(solution));
        let objectives = batch.objectives.into_iter().next().flatten();
        (objectives, batch.attempts)
    }
}

impl ParallelEvaluator {
    /// Evaluates `solutions` with per-candidate panic isolation and
    /// result validation, returning one `Result` per candidate in input
    /// order. Candidate `i` is evaluated as ordinal `base_ordinal + i`
    /// regardless of how the batch is chunked across workers, so results
    /// are bit-identical at any thread count.
    pub fn try_evaluate<P>(
        &self,
        problem: &P,
        solutions: &[P::Solution],
        base_ordinal: u64,
        m: usize,
    ) -> Vec<Result<Vec<f64>, EvalFault>>
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        self.try_evaluate_with_base(problem, None, solutions, base_ordinal, m)
    }

    /// [`try_evaluate`](Self::try_evaluate), optionally told that every
    /// candidate is one neighbor move away from `neighbor_base` — in
    /// which case evaluation routes through
    /// [`Problem::evaluate_neighbor_ordinal`] (bit-identical by the
    /// delta contract, potentially much cheaper).
    pub fn try_evaluate_with_base<P>(
        &self,
        problem: &P,
        neighbor_base: Option<&P::Solution>,
        solutions: &[P::Solution],
        base_ordinal: u64,
        m: usize,
    ) -> Vec<Result<Vec<f64>, EvalFault>>
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        let workers = self.threads().min(solutions.len());
        let eval_chunk =
            |chunk: &[P::Solution], offset: usize| -> Vec<Result<Vec<f64>, EvalFault>> {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(k, s)| {
                        let index = offset + k;
                        guarded_eval_one(
                            problem,
                            neighbor_base,
                            s,
                            base_ordinal + index as u64,
                            m,
                            index,
                        )
                    })
                    .collect()
            };
        if workers <= 1 {
            return eval_chunk(solutions, 0);
        }
        let chunk_len = solutions.len().div_ceil(workers);
        let mut results: Vec<Vec<Result<Vec<f64>, EvalFault>>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = solutions
                .chunks(chunk_len)
                .enumerate()
                .map(|(c, chunk)| scope.spawn(move || eval_chunk(chunk, c * chunk_len)))
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(chunk) => results.push(chunk),
                    // The chunk closure contains every per-item panic, so a
                    // join error means the *harness* itself failed.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Zdt;
    use rand::SeedableRng;

    /// Panics on negative leads, NaNs on leads in (0, 0.1), wrong arity on
    /// leads in (0.1, 0.2).
    struct Moody;

    impl Problem for Moody {
        type Solution = Vec<f64>;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_solution(&self, _rng: &mut dyn rand::RngCore) -> Vec<f64> {
            vec![1.0]
        }

        fn neighbor(&self, s: &Vec<f64>, _rng: &mut dyn rand::RngCore) -> Vec<f64> {
            s.clone()
        }

        fn crossover(&self, a: &Vec<f64>, _b: &Vec<f64>, _rng: &mut dyn rand::RngCore) -> Vec<f64> {
            a.clone()
        }

        fn evaluate(&self, s: &Vec<f64>) -> Vec<f64> {
            let x = s[0];
            assert!(x >= 0.0, "moody evaluation refused a negative lead");
            if x < 0.1 {
                vec![f64::NAN, 1.0]
            } else if x < 0.2 {
                vec![x]
            } else {
                vec![x, 1.0 - x]
            }
        }

        fn features(&self, s: &Vec<f64>) -> Vec<f64> {
            s.clone()
        }

        fn feature_len(&self) -> usize {
            1
        }
    }

    fn moody_batch() -> Vec<Vec<f64>> {
        vec![vec![0.5], vec![-1.0], vec![0.05], vec![0.15], vec![0.9]]
    }

    #[test]
    fn faults_are_classified_per_candidate_at_any_thread_count() {
        for threads in [1, 4] {
            let evaluator = ParallelEvaluator::new(threads);
            let out = evaluator.try_evaluate(&Moody, &moody_batch(), 0, 2);
            assert!(out[0].is_ok() && out[4].is_ok(), "threads {threads}");
            assert_eq!(out[1].as_ref().unwrap_err().kind, FaultKind::Panic);
            assert_eq!(out[2].as_ref().unwrap_err().kind, FaultKind::NonFinite);
            assert_eq!(out[3].as_ref().unwrap_err().kind, FaultKind::WrongArity);
            assert_eq!(out[1].as_ref().unwrap_err().index, 1);
        }
    }

    #[test]
    fn penalize_worst_quarantines_behind_finite_penalties() {
        let mut guard = GuardedEvaluator::new(
            2,
            FaultConfig { policy: FaultPolicy::PenalizeWorst, retries: 0 },
        );
        let batch = guard.evaluate(&Moody, &moody_batch());
        assert_eq!(batch.attempts, 5);
        assert_eq!(batch.objectives[0], Some(vec![0.5, 0.5]));
        for i in [1, 2, 3] {
            let objs = batch.objectives[i].as_ref().expect("penalized, not dropped");
            assert!(is_penalty(objs) && objs.iter().all(|v| v.is_finite()));
        }
        assert_eq!(guard.log().penalized, 3);
        assert_eq!(guard.log().faults(), 3);
        assert!(!guard.poisoned());
    }

    #[test]
    fn skip_drops_faulted_candidates() {
        let mut guard =
            GuardedEvaluator::new(1, FaultConfig { policy: FaultPolicy::Skip, retries: 0 });
        let batch = guard.evaluate(&Moody, &moody_batch());
        assert_eq!(batch.objectives.iter().filter(|o| o.is_none()).count(), 3);
        assert_eq!(guard.log().skipped, 3);
        let filled = batch.materialized(2);
        assert_eq!(filled.len(), 5);
        assert!(is_penalty(&filled[1]));
    }

    #[test]
    fn fail_latches_the_first_fault_and_poisons_the_guard() {
        let mut guard =
            GuardedEvaluator::new(4, FaultConfig { policy: FaultPolicy::Fail, retries: 0 });
        let batch = guard.evaluate(&Moody, &moody_batch());
        assert!(guard.poisoned());
        let err = guard.error().expect("latched");
        assert_eq!(err.kind, FaultKind::Panic);
        assert_eq!(err.index, 1);
        assert!(err.message.contains("negative lead"));
        assert!(batch.objectives[0].is_some());
        // A poisoned guard refuses further work without spending budget.
        let after = guard.evaluate(&Moody, &moody_batch());
        assert_eq!(after.attempts, 0);
        assert!(after.objectives.iter().all(Option::is_none));
    }

    #[test]
    fn retries_spend_budget_and_are_logged() {
        // Moody faults deterministically, so retries never recover — they
        // must still be counted and charged.
        let mut guard = GuardedEvaluator::new(
            1,
            FaultConfig { policy: FaultPolicy::PenalizeWorst, retries: 2 },
        );
        let batch = guard.evaluate(&Moody, &moody_batch());
        assert_eq!(batch.attempts, 5 + 3 * 2);
        assert_eq!(guard.log().retries, 6);
        assert_eq!(guard.log().recovered, 0);
        assert_eq!(guard.log().panics, 3); // initial + 2 retries
    }

    #[test]
    fn happy_path_matches_the_plain_evaluator_exactly() {
        let problem = Zdt::zdt1(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let batch: Vec<_> = (0..17).map(|_| problem.random_solution(&mut rng)).collect();
        let plain = ParallelEvaluator::new(4).evaluate(&problem, &batch);
        let mut guard = GuardedEvaluator::new(4, FaultConfig::default());
        let guarded = guard.evaluate(&problem, &batch);
        assert_eq!(guarded.attempts, batch.len() as u64);
        let values: Vec<Vec<f64>> =
            guarded.objectives.into_iter().map(|o| o.expect("clean")).collect();
        assert_eq!(values, plain);
        assert!(guard.log().is_clean());
    }

    #[test]
    fn fault_log_round_trips_and_tolerates_missing_fields() {
        let log = FaultLog {
            panics: 1,
            non_finite: 2,
            wrong_arity: 3,
            retries: 4,
            recovered: 5,
            penalized: 6,
            skipped: 7,
        };
        assert_eq!(FaultLog::restore(&log.snapshot()).unwrap(), log);
        let state = Value::object(vec![("other", Value::U64(1))]);
        assert_eq!(fault_log_from(&state, "faults").unwrap(), FaultLog::default());
        let with = Value::object(vec![("faults", log.snapshot())]);
        assert_eq!(fault_log_from(&with, "faults").unwrap(), log);
    }

    #[test]
    fn quarantine_predicates_classify_vectors() {
        assert!(is_penalty(&penalty_objectives(3)));
        assert!(is_quarantined(&[1.0, f64::NAN]));
        assert!(is_quarantined(&[f64::INFINITY, 0.0]));
        assert!(is_quarantined(&[PENALTY, 0.0]));
        assert!(!is_quarantined(&[1.0, 2.0]));
        assert!(!is_penalty(&[1.0, 2.0]));
    }

    #[test]
    fn evaluate_one_contains_single_candidates() {
        let mut guard =
            GuardedEvaluator::new(1, FaultConfig { policy: FaultPolicy::Skip, retries: 0 });
        let (ok, cost) = guard.evaluate_one(&Moody, &vec![0.5]);
        assert_eq!(ok, Some(vec![0.5, 0.5]));
        assert_eq!(cost, 1);
        let (bad, cost) = guard.evaluate_one(&Moody, &vec![-2.0]);
        assert_eq!(bad, None);
        assert_eq!(cost, 1);
    }
}
