//! Secondary solution-set quality metrics: IGD, IGD+, spread, coverage.
//!
//! The paper reports PHV (see [`crate::hypervolume`]); these metrics are
//! provided for the validation suite (convergence to known ZDT/DTLZ fronts)
//! and for the ablation benches.

/// Inverted generational distance: mean Euclidean distance from each point
/// of the `reference_front` to its nearest member of `front`. Lower is
/// better; `0` means the reference front is fully covered.
///
/// Returns `f64::INFINITY` if `front` is empty and `0.0` if the reference
/// front is empty.
pub fn igd(front: &[Vec<f64>], reference_front: &[Vec<f64>]) -> f64 {
    if reference_front.is_empty() {
        return 0.0;
    }
    if front.is_empty() {
        return f64::INFINITY;
    }
    let total: f64 = reference_front
        .iter()
        .map(|r| front.iter().map(|p| euclidean(p, r)).fold(f64::INFINITY, f64::min))
        .sum();
    total / reference_front.len() as f64
}

/// IGD+ (Ishibuchi et al.): like [`igd`] but distances only count the
/// components where the candidate is *worse* than the reference point,
/// making the metric weakly Pareto-compliant for minimization.
pub fn igd_plus(front: &[Vec<f64>], reference_front: &[Vec<f64>]) -> f64 {
    if reference_front.is_empty() {
        return 0.0;
    }
    if front.is_empty() {
        return f64::INFINITY;
    }
    let total: f64 = reference_front
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|p| {
                    p.iter().zip(r).map(|(&pi, &ri)| (pi - ri).max(0.0).powi(2)).sum::<f64>().sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / reference_front.len() as f64
}

/// Two-objective spread (Δ, Deb): measures how evenly a front's points are
/// distributed. `0` is perfectly even; larger values mean clustering.
///
/// Only defined for bi-objective fronts with at least two points; returns
/// `f64::NAN` otherwise so misuse is visible.
pub fn spread_2d(front: &[Vec<f64>]) -> f64 {
    if front.len() < 2 || front[0].len() != 2 {
        return f64::NAN;
    }
    let mut pts = front.to_vec();
    // total_cmp, not partial_cmp: a NaN objective (e.g. a quarantined
    // penalty leaking into a diagnostic front) must not abort the process
    // — NaN sorts after every finite value and flows into the result.
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let gaps: Vec<f64> = pts.windows(2).map(|w| euclidean(&w[0], &w[1])).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean <= f64::EPSILON {
        return 0.0;
    }
    gaps.iter().map(|g| (g - mean).abs()).sum::<f64>() / (gaps.len() as f64 * mean)
}

/// Coverage (Zitzler's C-metric): the fraction of `b` that is weakly
/// dominated by at least one member of `a`. `C(a, b) = 1` means `a`
/// completely covers `b`; the metric is not symmetric.
pub fn coverage(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    let covered =
        b.iter().filter(|q| a.iter().any(|p| crate::pareto::weakly_dominates(p, q))).count();
    covered as f64 / b.len() as f64
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_front(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                vec![t, 1.0 - t]
            })
            .collect()
    }

    #[test]
    fn igd_is_zero_when_front_covers_reference() {
        let f = line_front(11);
        assert_eq!(igd(&f, &f), 0.0);
    }

    #[test]
    fn igd_grows_with_distance() {
        let reference = line_front(11);
        let near: Vec<Vec<f64>> =
            reference.iter().map(|p| vec![p[0] + 0.01, p[1] + 0.01]).collect();
        let far: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0] + 0.5, p[1] + 0.5]).collect();
        assert!(igd(&near, &reference) < igd(&far, &reference));
    }

    #[test]
    fn igd_of_empty_front_is_infinite() {
        assert_eq!(igd(&[], &line_front(3)), f64::INFINITY);
        assert_eq!(igd(&line_front(3), &[]), 0.0);
    }

    #[test]
    fn igd_plus_ignores_improvements_beyond_the_reference() {
        let reference = line_front(5);
        // Strictly better than the reference front: IGD+ sees zero distance,
        // plain IGD does not.
        let better: Vec<Vec<f64>> =
            reference.iter().map(|p| vec![p[0] - 0.1, p[1] - 0.1]).collect();
        assert_eq!(igd_plus(&better, &reference), 0.0);
        assert!(igd(&better, &reference) > 0.0);
    }

    #[test]
    fn spread_of_even_front_is_small() {
        let even = line_front(20);
        let mut clustered = line_front(10);
        clustered.extend((0..10).map(|i| vec![0.01 + i as f64 * 1e-4, 0.99]));
        assert!(spread_2d(&even) < spread_2d(&clustered));
    }

    #[test]
    fn spread_is_nan_when_undefined() {
        assert!(spread_2d(&[vec![1.0, 2.0]]).is_nan());
        assert!(spread_2d(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]).is_nan());
    }

    #[test]
    fn spread_survives_nan_objectives_without_panicking() {
        // A quarantined-penalty or user-supplied front may carry NaN; the
        // metric must degrade (NaN result) instead of aborting the process.
        let mut front = line_front(5);
        front.push(vec![f64::NAN, 0.5]);
        let spread = spread_2d(&front);
        assert!(spread.is_nan(), "NaN input flows to a NaN result, got {spread}");
        // An all-NaN front is equally survivable.
        let all_nan = vec![vec![f64::NAN, f64::NAN], vec![f64::NAN, f64::NAN]];
        let _ = spread_2d(&all_nan);
    }

    #[test]
    fn coverage_is_directional() {
        let strong = vec![vec![0.0, 0.0]];
        let weak = vec![vec![1.0, 1.0], vec![2.0, 0.5]];
        assert_eq!(coverage(&strong, &weak), 1.0);
        assert_eq!(coverage(&weak, &strong), 0.0);
        assert_eq!(coverage(&strong, &[]), 0.0);
    }
}
