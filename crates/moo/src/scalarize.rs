//! Scalarization of objective vectors for decomposition-based search.
//!
//! Two scalarizers appear in the paper:
//!
//! * the **weighted sum** of absolute distances to the reference point,
//!   eq. (8), used as the minimization target of MOELA's ML-guided local
//!   search;
//! * the **Tchebycheff** function, eq. (9), used by the decomposition EA to
//!   decide population updates.
//!
//! Both are provided behind the [`Scalarizer`] enum so engines can be
//! configured with either. [`ReferencePoint`] maintains the component-wise
//! best (minimum) objective values seen so far — the `z` of both equations.

/// The reference point `z`: the best (minimum) value observed per objective.
///
/// # Example
///
/// ```
/// use moela_moo::scalarize::ReferencePoint;
///
/// let mut z = ReferencePoint::new(2);
/// z.update(&[3.0, 1.0]);
/// z.update(&[2.0, 5.0]);
/// assert_eq!(z.values(), &[2.0, 1.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ReferencePoint {
    z: Vec<f64>,
}

impl ReferencePoint {
    /// A reference point of dimension `m`, initialized to `+∞` so the first
    /// update defines it.
    pub fn new(m: usize) -> Self {
        Self { z: vec![f64::INFINITY; m] }
    }

    /// Builds a reference point directly from known per-objective minima.
    pub fn from_values(z: Vec<f64>) -> Self {
        Self { z }
    }

    /// Lowers components of `z` wherever `objectives` improves on them.
    /// Returns `true` if any component changed.
    pub fn update(&mut self, objectives: &[f64]) -> bool {
        assert_eq!(objectives.len(), self.z.len(), "dimension mismatch");
        let mut changed = false;
        for (zi, &oi) in self.z.iter_mut().zip(objectives) {
            if oi < *zi {
                *zi = oi;
                changed = true;
            }
        }
        changed
    }

    /// The current component-wise minima.
    pub fn values(&self) -> &[f64] {
        &self.z
    }

    /// Dimensionality of the point.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// `true` if the dimensionality is zero.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// A scalarizing function `g(obj | w, z)` mapping an objective vector to a
/// single minimization target for the sub-problem with weight `w`.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq, Hash)]
pub enum Scalarizer {
    /// Eq. (8): `Σ_i w_i · |obj_i − z_i|` — MOELA's local-search target.
    WeightedSum,
    /// Eq. (9): `max_i w_i · |obj_i − z_i|` — the Tchebycheff approach used
    /// by the decomposition EA.
    #[default]
    Tchebycheff,
}

impl Scalarizer {
    /// Evaluates the scalarization of `objectives` under weight `w` and
    /// reference point `z`.
    ///
    /// Zero weights are lifted to a small epsilon in the Tchebycheff case,
    /// the standard guard that keeps extreme sub-problems sensitive to all
    /// objectives.
    ///
    /// # Panics
    ///
    /// Panics if the three slices disagree in length.
    pub fn value(self, objectives: &[f64], w: &[f64], z: &[f64]) -> f64 {
        assert_eq!(objectives.len(), w.len(), "weight dimension mismatch");
        assert_eq!(objectives.len(), z.len(), "reference dimension mismatch");
        const EPS_WEIGHT: f64 = 1e-4;
        match self {
            Scalarizer::WeightedSum => {
                objectives.iter().zip(w).zip(z).map(|((&o, &wi), &zi)| wi * (o - zi).abs()).sum()
            }
            Scalarizer::Tchebycheff => objectives
                .iter()
                .zip(w)
                .zip(z)
                .map(|((&o, &wi), &zi)| wi.max(EPS_WEIGHT) * (o - zi).abs())
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_tracks_componentwise_minimum() {
        let mut z = ReferencePoint::new(3);
        assert!(z.update(&[1.0, 2.0, 3.0]));
        assert!(z.update(&[2.0, 1.0, 4.0]));
        assert_eq!(z.values(), &[1.0, 1.0, 3.0]);
        assert!(!z.update(&[5.0, 5.0, 5.0]));
    }

    #[test]
    fn weighted_sum_matches_equation_8() {
        let g = Scalarizer::WeightedSum.value(&[3.0, 4.0], &[0.25, 0.75], &[1.0, 1.0]);
        assert!((g - (0.25 * 2.0 + 0.75 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn tchebycheff_matches_equation_9() {
        let g = Scalarizer::Tchebycheff.value(&[3.0, 4.0], &[0.25, 0.75], &[1.0, 1.0]);
        assert!((g - (0.75 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn tchebycheff_guards_zero_weights() {
        // With a literally-zero weight the second objective would be
        // invisible; the epsilon keeps it (slightly) visible.
        let better = Scalarizer::Tchebycheff.value(&[1.0, 1.0], &[1.0, 0.0], &[0.0, 0.0]);
        let worse = Scalarizer::Tchebycheff.value(&[1.0, 1e9], &[1.0, 0.0], &[0.0, 0.0]);
        assert!(worse > better);
    }

    #[test]
    fn scalarizers_agree_at_the_reference_point() {
        for s in [Scalarizer::WeightedSum, Scalarizer::Tchebycheff] {
            let v = s.value(&[1.0, 2.0], &[0.5, 0.5], &[1.0, 2.0]);
            assert_eq!(v, 0.0, "{s:?}");
        }
    }

    #[test]
    fn dominated_points_never_scalarize_better() {
        // If a weakly dominates b, g(a) <= g(b) for any non-negative weight.
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 3.5];
        let z = [0.5, 1.0, 2.0];
        for s in [Scalarizer::WeightedSum, Scalarizer::Tchebycheff] {
            for w in [[1.0, 0.0, 0.0], [0.2, 0.3, 0.5], [0.0, 0.0, 1.0]] {
                assert!(s.value(&a, &w, &z) <= s.value(&b, &w, &z));
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        Scalarizer::WeightedSum.value(&[1.0, 2.0], &[1.0], &[0.0, 0.0]);
    }
}
