//! [`Snapshot`]/[`Restore`] implementations for the toolkit's stateful
//! components, plus codec-threaded helpers for containers that hold
//! problem solutions.

use std::time::Duration;

use moela_persist::{PersistError, Restore, Snapshot, SolutionCodec, Value};

use crate::archive::ParetoArchive;
use crate::normalize::Normalizer;
use crate::run::{TracePoint, TraceRecorder};
use crate::scalarize::ReferencePoint;

impl Snapshot for Normalizer {
    fn snapshot(&self) -> Value {
        Value::object(vec![
            ("min", Value::f64_array(self.min())),
            ("max", Value::f64_array(self.max())),
        ])
    }
}

impl Restore for Normalizer {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        let min = value.field("min")?.to_f64_vec()?;
        let max = value.field("max")?.to_f64_vec()?;
        if min.len() != max.len() {
            return Err(PersistError::schema("normalizer min/max dimension mismatch"));
        }
        Ok(Normalizer::from_parts(min, max))
    }
}

impl Snapshot for ReferencePoint {
    fn snapshot(&self) -> Value {
        Value::object(vec![("z", Value::f64_array(self.values()))])
    }
}

impl Restore for ReferencePoint {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        Ok(ReferencePoint::from_values(value.field("z")?.to_f64_vec()?))
    }
}

impl Snapshot for TracePoint {
    fn snapshot(&self) -> Value {
        Value::object(vec![
            ("generation", Value::U64(self.generation as u64)),
            ("evaluations", Value::U64(self.evaluations)),
            // u64 nanoseconds cover ~584 years of wall clock.
            ("elapsed_nanos", Value::U64(self.elapsed.as_nanos() as u64)),
            ("phv", Value::F64(self.phv)),
        ])
    }
}

impl Restore for TracePoint {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        Ok(TracePoint {
            generation: value.field("generation")?.as_usize()?,
            evaluations: value.field("evaluations")?.as_u64()?,
            elapsed: Duration::from_nanos(value.field("elapsed_nanos")?.as_u64()?),
            phv: value.field("phv")?.as_f64()?,
        })
    }
}

impl Snapshot for TraceRecorder {
    fn snapshot(&self) -> Value {
        Value::object(vec![
            ("normalizer", self.normalizer().snapshot()),
            ("fixed", Value::Bool(self.fixed())),
            ("points", Value::Array(self.points().iter().map(Snapshot::snapshot).collect())),
        ])
    }
}

impl Restore for TraceRecorder {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        let normalizer = Normalizer::restore(value.field("normalizer")?)?;
        let fixed = value.field("fixed")?.as_bool()?;
        let points = value
            .field("points")?
            .as_array()?
            .iter()
            .map(TracePoint::restore)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TraceRecorder::from_parts(normalizer, fixed, points))
    }
}

/// Encodes `(solution, objectives)` entries through a solution codec.
pub fn entries_to_value<S, C: SolutionCodec<S>>(entries: &[(S, Vec<f64>)], codec: &C) -> Value {
    Value::Array(
        entries
            .iter()
            .map(|(s, o)| {
                Value::object(vec![
                    ("solution", codec.encode_solution(s)),
                    ("objectives", Value::f64_array(o)),
                ])
            })
            .collect(),
    )
}

/// Decodes entries written by [`entries_to_value`].
#[allow(clippy::type_complexity)]
pub fn entries_from_value<S, C: SolutionCodec<S>>(
    value: &Value,
    codec: &C,
) -> Result<Vec<(S, Vec<f64>)>, PersistError> {
    value
        .as_array()?
        .iter()
        .map(|entry| {
            let solution = codec.decode_solution(entry.field("solution")?)?;
            let objectives = entry.field("objectives")?.to_f64_vec()?;
            Ok((solution, objectives))
        })
        .collect()
}

/// Encodes a Pareto archive (entries in order plus the capacity bound).
pub fn archive_to_value<S: Clone, C: SolutionCodec<S>>(
    archive: &ParetoArchive<S>,
    codec: &C,
) -> Value {
    Value::object(vec![
        ("entries", entries_to_value(archive.entries(), codec)),
        (
            "capacity",
            match archive.capacity() {
                Some(cap) => Value::U64(cap as u64),
                None => Value::Null,
            },
        ),
    ])
}

/// Decodes an archive written by [`archive_to_value`]. Entries are adopted
/// verbatim (order matters to MOOS's index-based selection).
pub fn archive_from_value<S: Clone, C: SolutionCodec<S>>(
    value: &Value,
    codec: &C,
) -> Result<ParetoArchive<S>, PersistError> {
    let entries = entries_from_value(value.field("entries")?, codec)?;
    let capacity = match value.field("capacity")? {
        Value::Null => None,
        v => Some(v.as_usize()?),
    };
    Ok(ParetoArchive::from_parts(entries, capacity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_persist::VecF64Codec;

    #[test]
    fn normalizer_round_trips_including_unobserved_dimensions() {
        let mut n = Normalizer::new(3);
        n.observe(&[1.0, f64::INFINITY, 2.0]); // dim 1 stays unobserved-ish
        let back = Normalizer::restore(&n.snapshot()).unwrap();
        assert_eq!(back, n);
        // A brand-new normalizer has ±∞ bounds and must still round-trip.
        let fresh = Normalizer::new(2);
        assert_eq!(Normalizer::restore(&fresh.snapshot()).unwrap(), fresh);
    }

    #[test]
    fn reference_point_round_trips() {
        let mut z = ReferencePoint::new(2);
        z.update(&[3.0, -1.5]);
        assert_eq!(ReferencePoint::restore(&z.snapshot()).unwrap(), z);
    }

    #[test]
    fn trace_recorder_round_trips_points_and_mode() {
        let mut rec = TraceRecorder::new(2);
        rec.observe(&[0.0, 0.0]);
        rec.observe(&[4.0, 4.0]);
        rec.record(0, 10, Duration::from_millis(5), &[vec![1.0, 2.0]]);
        rec.record(1, 20, Duration::from_millis(9), &[vec![0.5, 1.0]]);
        let back = TraceRecorder::restore(&rec.snapshot()).unwrap();
        assert_eq!(back.points(), rec.points());
        assert_eq!(back.normalizer(), rec.normalizer());
        assert!(!back.fixed());
    }

    #[test]
    fn archive_round_trip_preserves_order_and_capacity() {
        let mut a = ParetoArchive::bounded(4);
        a.insert(vec![0.5], vec![1.0, 4.0]);
        a.insert(vec![0.25], vec![4.0, 1.0]);
        let v = archive_to_value(&a, &VecF64Codec);
        let back: ParetoArchive<Vec<f64>> = archive_from_value(&v, &VecF64Codec).unwrap();
        assert_eq!(back.entries(), a.entries());
        assert_eq!(back.capacity(), Some(4));
        let unbounded: ParetoArchive<Vec<f64>> = archive_from_value(
            &archive_to_value(&ParetoArchive::unbounded(), &VecF64Codec),
            &VecF64Codec,
        )
        .unwrap();
        assert_eq!(unbounded.capacity(), None);
    }
}
