//! Synthetic multi-objective benchmark problems with known Pareto fronts.
//!
//! These validate every optimizer in the workspace against ground truth:
//!
//! * [`Zdt`] — the ZDT bi-objective family (continuous);
//! * [`Dtlz`] — the DTLZ scalable-objective family (continuous, used for
//!   the 3/4/5-objective regimes the paper evaluates);
//! * [`Knapsack`] — a combinatorial multi-objective 0/1 knapsack, the
//!   closest synthetic analogue of the discrete manycore design space and
//!   the problem family used by the Tchebycheff-decomposition reference
//!   \[18\] of the paper.

mod dtlz;
mod knapsack;
mod zdt;

pub use dtlz::Dtlz;
pub use knapsack::Knapsack;
pub use zdt::Zdt;
