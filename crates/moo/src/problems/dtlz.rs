//! The DTLZ scalable-objective test family (Deb, Thiele, Laumanns, Zitzler).
//!
//! DTLZ problems scale to any number of objectives `M`, which makes them the
//! synthetic stand-in for the paper's 3-, 4-, and 5-objective regimes.

use rand::{Rng, RngCore};

use crate::problem::Problem;

/// Which DTLZ function a [`Dtlz`] instance computes.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum DtlzVariant {
    /// Linear Pareto front `Σ f_i = 0.5`, highly multi-modal `g`.
    Dtlz1,
    /// Spherical front `Σ f_i² = 1`, unimodal.
    Dtlz2,
    /// Spherical front with DTLZ1's multi-modal distance function.
    Dtlz3,
    /// Spherical front with a biased (`x^100`) position mapping that
    /// crowds solutions near the axes.
    Dtlz4,
    /// Mixed: a disconnected set of 2^{M−1} regions.
    Dtlz7,
}

/// A DTLZ instance with `m` objectives and `k` distance variables
/// (total decision variables `n = m − 1 + k`). Solutions live in `[0,1]ⁿ`.
///
/// # Example
///
/// ```
/// use moela_moo::{problems::Dtlz, Problem};
///
/// let p = Dtlz::dtlz2(3, 10);
/// assert_eq!(p.objective_count(), 3);
/// // An optimal point: position variables free, distance variables at 0.5.
/// let mut x = vec![0.5; p.dimensions()];
/// let f = p.evaluate(&x);
/// let norm: f64 = f.iter().map(|v| v * v).sum();
/// assert!((norm - 1.0).abs() < 1e-9);
/// # let _ = x.pop();
/// ```
#[derive(Clone, Debug)]
pub struct Dtlz {
    variant: DtlzVariant,
    m: usize,
    k: usize,
}

impl Dtlz {
    /// Creates a DTLZ instance.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `k == 0`.
    pub fn new(variant: DtlzVariant, m: usize, k: usize) -> Self {
        assert!(m >= 2, "DTLZ needs at least two objectives");
        assert!(k >= 1, "DTLZ needs at least one distance variable");
        Self { variant, m, k }
    }

    /// DTLZ1 with `m` objectives and `k` distance variables.
    pub fn dtlz1(m: usize, k: usize) -> Self {
        Self::new(DtlzVariant::Dtlz1, m, k)
    }

    /// DTLZ2 with `m` objectives and `k` distance variables.
    pub fn dtlz2(m: usize, k: usize) -> Self {
        Self::new(DtlzVariant::Dtlz2, m, k)
    }

    /// DTLZ3 with `m` objectives and `k` distance variables.
    pub fn dtlz3(m: usize, k: usize) -> Self {
        Self::new(DtlzVariant::Dtlz3, m, k)
    }

    /// DTLZ4 with `m` objectives and `k` distance variables.
    pub fn dtlz4(m: usize, k: usize) -> Self {
        Self::new(DtlzVariant::Dtlz4, m, k)
    }

    /// DTLZ7 with `m` objectives and `k` distance variables.
    pub fn dtlz7(m: usize, k: usize) -> Self {
        Self::new(DtlzVariant::Dtlz7, m, k)
    }

    /// Total number of decision variables.
    pub fn dimensions(&self) -> usize {
        self.m - 1 + self.k
    }

    /// The variant this instance computes.
    pub fn variant(&self) -> DtlzVariant {
        self.variant
    }

    fn g(&self, tail: &[f64]) -> f64 {
        match self.variant {
            DtlzVariant::Dtlz1 | DtlzVariant::Dtlz3 => {
                100.0
                    * (self.k as f64
                        + tail
                            .iter()
                            .map(|&xi| {
                                (xi - 0.5).powi(2)
                                    - (20.0 * std::f64::consts::PI * (xi - 0.5)).cos()
                            })
                            .sum::<f64>())
            }
            DtlzVariant::Dtlz2 | DtlzVariant::Dtlz4 => {
                tail.iter().map(|&xi| (xi - 0.5).powi(2)).sum()
            }
            DtlzVariant::Dtlz7 => 1.0 + 9.0 * tail.iter().sum::<f64>() / self.k as f64,
        }
    }
}

impl Problem for Dtlz {
    type Solution = Vec<f64>;

    fn objective_count(&self) -> usize {
        self.m
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        (0..self.dimensions()).map(|_| rng.gen_range(0.0..=1.0)).collect()
    }

    fn neighbor(&self, s: &Vec<f64>, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut out = s.clone();
        let i = rng.gen_range(0..out.len());
        if rng.gen_bool(0.2) {
            // Occasional macro-move (see the ZDT neighbor): lets local
            // searches cross DTLZ1's valley structure.
            out[i] = rng.gen_range(0.0..=1.0);
        } else {
            let step: f64 = (0..6).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * 0.1;
            out[i] = (out[i] + step).clamp(0.0, 1.0);
        }
        out
    }

    fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child: Vec<f64> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let t: f64 = rng.gen_range(-0.25..1.25);
                (x + t * (y - x)).clamp(0.0, 1.0)
            })
            .collect();
        if rng.gen_bool(0.3) {
            let i = rng.gen_range(0..child.len());
            child[i] = rng.gen_range(0.0..=1.0);
        }
        child
    }

    fn evaluate(&self, x: &Vec<f64>) -> Vec<f64> {
        assert_eq!(x.len(), self.dimensions(), "solution has wrong dimensionality");
        let (pos, tail) = x.split_at(self.m - 1);
        let g = self.g(tail);
        match self.variant {
            DtlzVariant::Dtlz1 => {
                let mut f = Vec::with_capacity(self.m);
                for i in 0..self.m {
                    let mut v = 0.5 * (1.0 + g);
                    for &p in pos.iter().take(self.m - 1 - i) {
                        v *= p;
                    }
                    if i > 0 {
                        v *= 1.0 - pos[self.m - 1 - i];
                    }
                    f.push(v);
                }
                f
            }
            DtlzVariant::Dtlz2 | DtlzVariant::Dtlz3 | DtlzVariant::Dtlz4 => {
                let half_pi = std::f64::consts::FRAC_PI_2;
                // DTLZ4 biases the position variables toward the axes.
                let alpha = if self.variant == DtlzVariant::Dtlz4 { 100.0 } else { 1.0 };
                let mut f = Vec::with_capacity(self.m);
                for i in 0..self.m {
                    let mut v = 1.0 + g;
                    for &p in pos.iter().take(self.m - 1 - i) {
                        v *= (p.powf(alpha) * half_pi).cos();
                    }
                    if i > 0 {
                        v *= (pos[self.m - 1 - i].powf(alpha) * half_pi).sin();
                    }
                    f.push(v);
                }
                f
            }
            DtlzVariant::Dtlz7 => {
                let mut f: Vec<f64> = pos.to_vec();
                let h = self.m as f64
                    - f.iter()
                        .map(|&fi| fi / (1.0 + g) * (1.0 + (3.0 * std::f64::consts::PI * fi).sin()))
                        .sum::<f64>();
                f.push((1.0 + g) * h);
                f
            }
        }
    }

    fn features(&self, s: &Vec<f64>) -> Vec<f64> {
        s.clone()
    }

    fn feature_len(&self) -> usize {
        self.dimensions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dtlz1_optimal_points_sum_to_half() {
        let p = Dtlz::dtlz1(3, 5);
        // distance variables at 0.5 make g = 0.
        let mut x = vec![0.3, 0.7];
        x.extend(vec![0.5; 5]);
        let f = p.evaluate(&x);
        let s: f64 = f.iter().sum();
        assert!((s - 0.5).abs() < 1e-9, "sum {s}");
    }

    #[test]
    fn dtlz2_optimal_points_lie_on_the_unit_sphere() {
        for m in [3, 4, 5] {
            let p = Dtlz::dtlz2(m, 8);
            let mut x = vec![0.2; m - 1];
            x.extend(vec![0.5; 8]);
            let f = p.evaluate(&x);
            assert_eq!(f.len(), m);
            let norm: f64 = f.iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-9, "m={m} norm={norm}");
        }
    }

    #[test]
    fn dtlz2_objectives_are_nonnegative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let p = Dtlz::dtlz2(5, 10);
        for _ in 0..200 {
            let x = p.random_solution(&mut rng);
            assert!(p.evaluate(&x).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn dtlz3_optimal_points_lie_on_the_unit_sphere() {
        let p = Dtlz::dtlz3(3, 4);
        // g vanishes with all distance variables at 0.5.
        let mut x = vec![0.3, 0.6];
        x.extend(vec![0.5; 4]);
        let f = p.evaluate(&x);
        let norm: f64 = f.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        // Away from the optimum, DTLZ3's g explodes like DTLZ1's.
        let mut far = vec![0.3, 0.6];
        far.extend(vec![0.0; 4]);
        let g_far: f64 = p.evaluate(&far).iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(g_far > 10.0, "multi-modal g must be large away from 0.5");
    }

    #[test]
    fn dtlz4_bias_crowds_the_axes() {
        let p = Dtlz::dtlz4(3, 4);
        let mut x = vec![0.5, 0.5]; // 0.5^100 ≈ 0 ⇒ cos(0)=1 everywhere
        x.extend(vec![0.5; 4]);
        let f = p.evaluate(&x);
        // The biased mapping (0.5^100 ≈ 0) collapses interior positions
        // onto the f1 axis: cos(0) = 1 for every factor, sin(0) = 0.
        assert!(f[0] > 0.99, "f = {f:?}");
        assert!(f[1] < 1e-9 && f[2] < 1e-9, "f = {f:?}");
    }

    #[test]
    fn dtlz7_last_objective_reflects_distance_function() {
        let p = Dtlz::dtlz7(3, 4);
        let optimal = {
            let mut x = vec![0.2, 0.4];
            x.extend(vec![0.0; 4]); // g minimal at tail = 0
            p.evaluate(&x)
        };
        let worse = {
            let mut x = vec![0.2, 0.4];
            x.extend(vec![1.0; 4]);
            p.evaluate(&x)
        };
        assert!(worse[2] > optimal[2]);
        assert_eq!(worse[0], optimal[0]);
    }

    #[test]
    fn operators_respect_unit_box() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let p = Dtlz::dtlz2(4, 6);
        let a = p.random_solution(&mut rng);
        let b = p.random_solution(&mut rng);
        for _ in 0..50 {
            for v in [p.neighbor(&a, &mut rng), p.crossover(&a, &b, &mut rng)] {
                assert_eq!(v.len(), p.dimensions());
                assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }
}
