//! The ZDT bi-objective test family (Zitzler, Deb, Thiele 2000).

use rand::{Rng, RngCore};

use crate::problem::Problem;

/// Which ZDT function a [`Zdt`] instance computes.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum ZdtVariant {
    /// Convex front `f2 = 1 − √f1`.
    Zdt1,
    /// Concave front `f2 = 1 − f1²`.
    Zdt2,
    /// Disconnected front.
    Zdt3,
    /// Multi-modal (21⁹ local fronts).
    Zdt4,
    /// Non-uniformly spaced convex front.
    Zdt6,
}

/// A ZDT problem instance over `n` decision variables.
///
/// Solutions are vectors in `[0,1]ⁿ` (ZDT4's tail variables live in
/// `[−5, 5]`). Both objectives are minimized; the true Pareto front is
/// attained at `g(x) = 1` (tail variables at their optimum).
///
/// # Example
///
/// ```
/// use moela_moo::{problems::Zdt, Problem};
///
/// let p = Zdt::zdt1(30);
/// // A Pareto-optimal point: x1 free, all other variables 0.
/// let mut x = vec![0.0; 30];
/// x[0] = 0.25;
/// let f = p.evaluate(&x);
/// assert!((f[1] - (1.0 - 0.25f64.sqrt())).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Zdt {
    variant: ZdtVariant,
    n: usize,
}

impl Zdt {
    /// Creates an instance of `variant` with `n ≥ 2` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(variant: ZdtVariant, n: usize) -> Self {
        assert!(n >= 2, "ZDT needs at least two decision variables");
        Self { variant, n }
    }

    /// ZDT1 with `n` variables.
    pub fn zdt1(n: usize) -> Self {
        Self::new(ZdtVariant::Zdt1, n)
    }

    /// ZDT2 with `n` variables.
    pub fn zdt2(n: usize) -> Self {
        Self::new(ZdtVariant::Zdt2, n)
    }

    /// ZDT3 with `n` variables.
    pub fn zdt3(n: usize) -> Self {
        Self::new(ZdtVariant::Zdt3, n)
    }

    /// ZDT4 with `n` variables.
    pub fn zdt4(n: usize) -> Self {
        Self::new(ZdtVariant::Zdt4, n)
    }

    /// ZDT6 with `n` variables.
    pub fn zdt6(n: usize) -> Self {
        Self::new(ZdtVariant::Zdt6, n)
    }

    /// The variant this instance computes.
    pub fn variant(&self) -> ZdtVariant {
        self.variant
    }

    /// Number of decision variables.
    pub fn dimensions(&self) -> usize {
        self.n
    }

    fn bounds(&self, i: usize) -> (f64, f64) {
        match self.variant {
            ZdtVariant::Zdt4 if i > 0 => (-5.0, 5.0),
            _ => (0.0, 1.0),
        }
    }

    /// Samples `count` points of the true Pareto front (uniform in `f1`),
    /// for IGD computations.
    pub fn true_front(&self, count: usize) -> Vec<Vec<f64>> {
        assert!(count >= 2);
        let mut pts = Vec::with_capacity(count);
        for i in 0..count {
            let f1 = match self.variant {
                // ZDT6's f1 only reaches down to ~0.2807 (at x1 = 1).
                ZdtVariant::Zdt6 => {
                    let x1 = i as f64 / (count - 1) as f64;
                    zdt6_f1(x1)
                }
                _ => i as f64 / (count - 1) as f64,
            };
            let f2 = match self.variant {
                ZdtVariant::Zdt1 | ZdtVariant::Zdt4 => 1.0 - f1.sqrt(),
                ZdtVariant::Zdt2 | ZdtVariant::Zdt6 => 1.0 - f1 * f1,
                ZdtVariant::Zdt3 => 1.0 - f1.sqrt() - f1 * (10.0 * std::f64::consts::PI * f1).sin(),
            };
            pts.push(vec![f1, f2]);
        }
        if self.variant == ZdtVariant::Zdt3 {
            // ZDT3's analytic curve is only partially Pareto-optimal; keep
            // the non-dominated subset.
            let keep = crate::pareto::non_dominated_indices(&pts);
            pts = keep.into_iter().map(|i| pts[i].clone()).collect();
        }
        pts
    }
}

fn zdt6_f1(x1: f64) -> f64 {
    1.0 - (-4.0 * x1).exp() * (6.0 * std::f64::consts::PI * x1).sin().powi(6)
}

impl Problem for Zdt {
    type Solution = Vec<f64>;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                let (lo, hi) = self.bounds(i);
                rng.gen_range(lo..=hi)
            })
            .collect()
    }

    fn neighbor(&self, s: &Vec<f64>, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut out = s.clone();
        let i = rng.gen_range(0..self.n);
        let (lo, hi) = self.bounds(i);
        if rng.gen_bool(0.2) {
            // Occasional macro-move: resample the coordinate so local
            // searches can cross valleys (essential on ZDT4).
            out[i] = rng.gen_range(lo..=hi);
        } else {
            let sigma = (hi - lo) * 0.1;
            // Box–Muller-free gaussian-ish step: sum of uniforms.
            let step: f64 = (0..6).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * sigma;
            out[i] = (out[i] + step).clamp(lo, hi);
        }
        out
    }

    fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut child: Vec<f64> = a
            .iter()
            .zip(b)
            .enumerate()
            .map(|(i, (&x, &y))| {
                let (lo, hi) = self.bounds(i);
                let t: f64 = rng.gen_range(-0.25..1.25); // BLX-style blend
                (x + t * (y - x)).clamp(lo, hi)
            })
            .collect();
        // Light mutation keeps diversity.
        if rng.gen_bool(0.3) {
            let i = rng.gen_range(0..self.n);
            let (lo, hi) = self.bounds(i);
            child[i] = rng.gen_range(lo..=hi);
        }
        child
    }

    fn evaluate(&self, x: &Vec<f64>) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "solution has wrong dimensionality");
        let tail = &x[1..];
        match self.variant {
            ZdtVariant::Zdt1 | ZdtVariant::Zdt2 | ZdtVariant::Zdt3 => {
                let g = 1.0 + 9.0 * tail.iter().sum::<f64>() / (self.n - 1) as f64;
                let f1 = x[0];
                let h = match self.variant {
                    ZdtVariant::Zdt1 => 1.0 - (f1 / g).sqrt(),
                    ZdtVariant::Zdt2 => 1.0 - (f1 / g).powi(2),
                    _ => {
                        1.0 - (f1 / g).sqrt() - (f1 / g) * (10.0 * std::f64::consts::PI * f1).sin()
                    }
                };
                vec![f1, g * h]
            }
            ZdtVariant::Zdt4 => {
                let g = 1.0
                    + 10.0 * (self.n - 1) as f64
                    + tail
                        .iter()
                        .map(|&xi| xi * xi - 10.0 * (4.0 * std::f64::consts::PI * xi).cos())
                        .sum::<f64>();
                let f1 = x[0];
                vec![f1, g * (1.0 - (f1 / g).sqrt())]
            }
            ZdtVariant::Zdt6 => {
                let f1 = zdt6_f1(x[0]);
                let g = 1.0 + 9.0 * (tail.iter().sum::<f64>() / (self.n - 1) as f64).powf(0.25);
                vec![f1, g * (1.0 - (f1 / g).powi(2))]
            }
        }
    }

    fn features(&self, s: &Vec<f64>) -> Vec<f64> {
        s.clone()
    }

    fn feature_len(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zdt1_optimum_lies_on_the_analytic_front() {
        let p = Zdt::zdt1(10);
        for f1 in [0.0, 0.3, 1.0] {
            let mut x = vec![0.0; 10];
            x[0] = f1;
            let f = p.evaluate(&x);
            assert!((f[0] - f1).abs() < 1e-12);
            assert!((f[1] - (1.0 - f1.sqrt())).abs() < 1e-12);
        }
    }

    #[test]
    fn zdt2_front_is_concave() {
        let p = Zdt::zdt2(10);
        let mut x = vec![0.0; 10];
        x[0] = 0.5;
        let f = p.evaluate(&x);
        assert!((f[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tail_variables_only_hurt() {
        let p = Zdt::zdt1(5);
        let optimal = p.evaluate(&vec![0.5, 0.0, 0.0, 0.0, 0.0]);
        let worse = p.evaluate(&vec![0.5, 0.5, 0.5, 0.5, 0.5]);
        assert!(worse[1] > optimal[1]);
        assert_eq!(worse[0], optimal[0]);
    }

    #[test]
    fn random_solutions_respect_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = Zdt::zdt4(8);
        for _ in 0..100 {
            let x = p.random_solution(&mut rng);
            assert!((0.0..=1.0).contains(&x[0]));
            assert!(x[1..].iter().all(|&v| (-5.0..=5.0).contains(&v)));
        }
    }

    #[test]
    fn neighbor_changes_one_coordinate_within_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let p = Zdt::zdt1(6);
        let x = p.random_solution(&mut rng);
        for _ in 0..50 {
            let y = p.neighbor(&x, &mut rng);
            let diffs = x.iter().zip(&y).filter(|(a, b)| a != b).count();
            assert!(diffs <= 1);
            assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn crossover_stays_feasible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let p = Zdt::zdt1(6);
        let a = p.random_solution(&mut rng);
        let b = p.random_solution(&mut rng);
        for _ in 0..50 {
            let c = p.crossover(&a, &b, &mut rng);
            assert_eq!(c.len(), 6);
            assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn true_front_points_are_mutually_nondominated() {
        for p in [Zdt::zdt1(5), Zdt::zdt2(5), Zdt::zdt3(5), Zdt::zdt6(5)] {
            let front = p.true_front(60);
            let idx = crate::pareto::non_dominated_indices(&front);
            assert_eq!(idx.len(), front.len(), "{:?}", p.variant());
        }
    }

    #[test]
    fn evaluated_points_never_dominate_the_true_front() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let p = Zdt::zdt1(8);
        let front = p.true_front(200);
        for _ in 0..200 {
            let x = p.random_solution(&mut rng);
            let f = p.evaluate(&x);
            assert!(
                !front.iter().any(|tf| crate::pareto::dominates(&f, tf)),
                "random point {f:?} dominates the analytic front"
            );
        }
    }
}
