//! A combinatorial multi-objective 0/1 knapsack problem.
//!
//! This is the discrete analogue the decomposition literature (the paper's
//! reference [18]) uses, and the closest synthetic stand-in for the manycore
//! design space: binary decisions, a feasibility constraint handled by
//! repair, and conflicting objectives.
//!
//! `m` knapsacks share the same item set; item `i` has weight `w_i` and a
//! per-knapsack profit `p_{k,i}`. We minimize the per-knapsack *profit gap*
//! `(max_profit_k − profit_k)` subject to a single capacity constraint, so
//! all objectives are minimization as the [`Problem`] contract requires.

use rand::{Rng, RngCore};

use crate::problem::Problem;

/// A randomly generated multi-objective knapsack instance.
///
/// # Example
///
/// ```
/// use moela_moo::{problems::Knapsack, Problem};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = Knapsack::random(30, 3, &mut rng);
/// let x = p.random_solution(&mut rng);
/// assert!(p.weight(&x) <= p.capacity());
/// assert_eq!(p.evaluate(&x).len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Knapsack {
    weights: Vec<f64>,
    /// `profits[k][i]` = profit of item `i` in objective `k`.
    profits: Vec<Vec<f64>>,
    capacity: f64,
    max_profit: Vec<f64>,
}

impl Knapsack {
    /// Generates an instance with `items` items and `m` objectives; weights
    /// and profits are uniform in `[1, 10]`, capacity is half the total
    /// weight (the standard Zitzler–Thiele setup).
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `m == 0`.
    pub fn random(items: usize, m: usize, rng: &mut impl Rng) -> Self {
        assert!(items > 0, "need at least one item");
        assert!(m > 0, "need at least one objective");
        let weights: Vec<f64> = (0..items).map(|_| rng.gen_range(1.0..=10.0)).collect();
        let profits: Vec<Vec<f64>> =
            (0..m).map(|_| (0..items).map(|_| rng.gen_range(1.0..=10.0)).collect()).collect();
        let capacity = weights.iter().sum::<f64>() / 2.0;
        let max_profit = profits.iter().map(|p| p.iter().sum()).collect();
        Self { weights, profits, capacity, max_profit }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.weights.len()
    }

    /// The shared capacity constraint.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Total selected weight of `x`.
    pub fn weight(&self, x: &[bool]) -> f64 {
        x.iter().zip(&self.weights).filter(|(&sel, _)| sel).map(|(_, &w)| w).sum()
    }

    /// Greedy repair: while over capacity, drop the selected item with the
    /// worst profit-per-weight ratio (summed over objectives).
    fn repair(&self, x: &mut [bool]) {
        while self.weight(x) > self.capacity {
            let victim = x
                .iter()
                .enumerate()
                .filter(|(_, &sel)| sel)
                .min_by(|(i, _), (j, _)| {
                    let ri = self.ratio(*i);
                    let rj = self.ratio(*j);
                    ri.partial_cmp(&rj).expect("ratios are finite")
                })
                .map(|(i, _)| i)
                .expect("over capacity implies something is selected");
            x[victim] = false;
        }
    }

    fn ratio(&self, i: usize) -> f64 {
        let total: f64 = self.profits.iter().map(|p| p[i]).sum();
        total / self.weights[i]
    }
}

impl Problem for Knapsack {
    type Solution = Vec<bool>;

    fn objective_count(&self) -> usize {
        self.profits.len()
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Vec<bool> {
        let mut x: Vec<bool> = (0..self.items()).map(|_| rng.gen_bool(0.5)).collect();
        self.repair(&mut x);
        x
    }

    fn neighbor(&self, s: &Vec<bool>, rng: &mut dyn RngCore) -> Vec<bool> {
        let mut out = s.clone();
        let i = rng.gen_range(0..out.len());
        out[i] = !out[i];
        self.repair(&mut out);
        out
    }

    fn crossover(&self, a: &Vec<bool>, b: &Vec<bool>, rng: &mut dyn RngCore) -> Vec<bool> {
        let mut child: Vec<bool> =
            a.iter().zip(b).map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y }).collect();
        // Bit-flip mutation at rate 1/n.
        for bit in child.iter_mut() {
            if rng.gen_bool(1.0 / self.items() as f64) {
                *bit = !*bit;
            }
        }
        self.repair(&mut child);
        child
    }

    fn evaluate(&self, x: &Vec<bool>) -> Vec<f64> {
        assert_eq!(x.len(), self.items(), "solution has wrong length");
        self.profits
            .iter()
            .zip(&self.max_profit)
            .map(|(p, &maxp)| {
                let profit: f64 = x.iter().zip(p).filter(|(&sel, _)| sel).map(|(_, &v)| v).sum();
                maxp - profit
            })
            .collect()
    }

    fn features(&self, s: &Vec<bool>) -> Vec<f64> {
        s.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
    }

    fn feature_len(&self) -> usize {
        self.items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn instance(seed: u64) -> (Knapsack, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Knapsack::random(40, 3, &mut rng);
        (p, rng)
    }

    #[test]
    fn all_generated_solutions_are_feasible() {
        let (p, mut rng) = instance(2);
        let a = p.random_solution(&mut rng);
        let b = p.random_solution(&mut rng);
        assert!(p.weight(&a) <= p.capacity());
        for _ in 0..100 {
            let n = p.neighbor(&a, &mut rng);
            let c = p.crossover(&a, &b, &mut rng);
            assert!(p.weight(&n) <= p.capacity());
            assert!(p.weight(&c) <= p.capacity());
        }
    }

    #[test]
    fn objectives_are_nonnegative_gaps() {
        let (p, mut rng) = instance(3);
        for _ in 0..50 {
            let x = p.random_solution(&mut rng);
            assert!(p.evaluate(&x).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn empty_selection_has_maximal_gap() {
        let (p, _) = instance(4);
        let empty = vec![false; p.items()];
        let gaps = p.evaluate(&empty);
        for (k, &g) in gaps.iter().enumerate() {
            let maxp: f64 = p.profits[k].iter().sum();
            assert!((g - maxp).abs() < 1e-9);
        }
    }

    #[test]
    fn selecting_more_items_never_increases_any_gap() {
        let (p, _) = instance(5);
        let mut a = vec![false; p.items()];
        a[0] = true;
        let mut b = a.clone();
        b[1] = true;
        // b ⊇ a and both feasible (tiny selections): gap can only shrink.
        let ga = p.evaluate(&a);
        let gb = p.evaluate(&b);
        assert!(gb.iter().zip(&ga).all(|(&x, &y)| x <= y));
    }

    #[test]
    fn repair_reaches_feasibility_from_full_selection() {
        let (p, _) = instance(6);
        let mut x = vec![true; p.items()];
        p.repair(&mut x);
        assert!(p.weight(&x) <= p.capacity());
        assert!(x.iter().any(|&b| b), "repair should not empty the bag");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let p1 = Knapsack::random(20, 2, &mut r1);
        let p2 = Knapsack::random(20, 2, &mut r2);
        assert_eq!(p1.weights, p2.weights);
        assert_eq!(p1.profits, p2.profits);
    }
}
