//! Parallel batch evaluation of candidate solutions.
//!
//! Objective evaluation dominates the cost of every optimizer in this
//! workspace (NoC routing + thermal analysis per candidate on the manycore
//! problem), and it is *pure*: no RNG, no shared mutable state. That makes
//! it the one place where threads buy wall-clock speedup without touching
//! determinism. Optimizers generate a batch of candidates sequentially
//! (consuming the RNG stream exactly as before), then hand the batch to a
//! [`ParallelEvaluator`], which splits it into contiguous chunks across
//! scoped worker threads and reassembles results in input order. The
//! returned objective vectors are therefore **bit-identical regardless of
//! the worker count** — `threads = 8` and `threads = 1` produce the same
//! populations, traces, and evaluation counts.

use crate::problem::Problem;

/// Fans [`Problem::evaluate_batch`] out across scoped worker threads.
///
/// With one worker (or a batch of one) it simply delegates to the
/// problem's own `evaluate_batch`, so the sequential path stays free of
/// thread overhead.
///
/// # Example
///
/// ```
/// use moela_moo::{ParallelEvaluator, Problem, problems::Zdt};
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(6);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let batch: Vec<_> = (0..32).map(|_| problem.random_solution(&mut rng)).collect();
/// let parallel = ParallelEvaluator::new(4).evaluate(&problem, &batch);
/// let sequential = problem.evaluate_batch(&batch);
/// assert_eq!(parallel, sequential);
/// ```
#[derive(Clone, Debug)]
pub struct ParallelEvaluator {
    threads: usize,
}

impl ParallelEvaluator {
    /// Creates an evaluator with a fixed worker count.
    ///
    /// `threads = 0` means "auto": use the host's available parallelism
    /// (falling back to 1 when it cannot be determined).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        Self { threads }
    }

    /// The resolved worker count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `solutions` and returns objective vectors in input order.
    ///
    /// Results are identical to `problem.evaluate_batch(solutions)` for
    /// every worker count: the batch is split into contiguous chunks, each
    /// worker evaluates its chunk via the problem's own
    /// [`Problem::evaluate_batch`] (so metering wrappers still tick), and
    /// chunk results are concatenated in order.
    ///
    /// # Panics
    ///
    /// A panic inside an evaluation is re-raised on the *caller's* thread
    /// with its original payload, so callers can contain it with
    /// `std::panic::catch_unwind` — a poisoned worker never takes down
    /// the process on its own.
    pub fn evaluate<P>(&self, problem: &P, solutions: &[P::Solution]) -> Vec<Vec<f64>>
    where
        P: Problem + Sync,
        P::Solution: Sync,
    {
        let workers = self.threads.min(solutions.len());
        if workers <= 1 {
            return problem.evaluate_batch(solutions);
        }
        let chunk_len = solutions.len().div_ceil(workers);
        let mut results: Vec<Vec<Vec<f64>>> = Vec::with_capacity(workers);
        let mut poisoned = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = solutions
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || problem.evaluate_batch(chunk)))
                .collect();
            for handle in handles {
                // Join every worker before re-raising so the scope exits
                // cleanly even when one chunk panicked.
                match handle.join() {
                    Ok(chunk) => results.push(chunk),
                    Err(payload) => poisoned = Some(payload),
                }
            }
        });
        if let Some(payload) = poisoned {
            std::panic::resume_unwind(payload);
        }
        results.into_iter().flatten().collect()
    }
}

impl Default for ParallelEvaluator {
    /// A single-worker (sequential) evaluator.
    fn default() -> Self {
        Self { threads: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{Counted, EvalCounter};
    use crate::problems::{Dtlz, Zdt};
    use rand::SeedableRng;

    fn batch<P: Problem>(problem: &P, n: usize, seed: u64) -> Vec<P::Solution> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| problem.random_solution(&mut rng)).collect()
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(ParallelEvaluator::new(0).threads() >= 1);
        assert_eq!(ParallelEvaluator::new(3).threads(), 3);
        assert_eq!(ParallelEvaluator::default().threads(), 1);
    }

    #[test]
    fn matches_sequential_results_for_every_worker_count() {
        let problem = Zdt::zdt3(7);
        let solutions = batch(&problem, 23, 11);
        let sequential = problem.evaluate_batch(&solutions);
        for threads in [1, 2, 3, 4, 8, 64] {
            let parallel = ParallelEvaluator::new(threads).evaluate(&problem, &solutions);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_batches() {
        let problem = Dtlz::dtlz2(3, 7);
        let evaluator = ParallelEvaluator::new(4);
        assert!(evaluator.evaluate(&problem, &[]).is_empty());
        let one = batch(&problem, 1, 5);
        assert_eq!(evaluator.evaluate(&problem, &one), problem.evaluate_batch(&one));
    }

    #[test]
    fn counted_problems_tick_once_per_solution() {
        let counter = EvalCounter::new();
        let problem = Counted::new(Zdt::zdt1(5), counter.clone());
        let solutions = batch(&problem, 17, 3);
        ParallelEvaluator::new(4).evaluate(&problem, &solutions);
        assert_eq!(counter.count(), 17);
    }

    /// A problem whose evaluation panics for solutions starting below zero.
    struct Fragile;

    impl Problem for Fragile {
        type Solution = Vec<f64>;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_solution(&self, _rng: &mut dyn rand::RngCore) -> Vec<f64> {
            vec![1.0]
        }

        fn neighbor(&self, s: &Vec<f64>, _rng: &mut dyn rand::RngCore) -> Vec<f64> {
            s.clone()
        }

        fn crossover(&self, a: &Vec<f64>, _b: &Vec<f64>, _rng: &mut dyn rand::RngCore) -> Vec<f64> {
            a.clone()
        }

        fn evaluate(&self, s: &Vec<f64>) -> Vec<f64> {
            assert!(s[0] >= 0.0, "fragile evaluation rejected the candidate");
            vec![s[0], 1.0 - s[0]]
        }

        fn features(&self, s: &Vec<f64>) -> Vec<f64> {
            s.clone()
        }

        fn feature_len(&self) -> usize {
            1
        }
    }

    #[test]
    fn worker_panics_propagate_with_their_original_payload() {
        let solutions: Vec<Vec<f64>> =
            (0..12).map(|i| vec![if i == 7 { -1.0 } else { 1.0 }]).collect();
        for threads in [1, 4] {
            let evaluator = ParallelEvaluator::new(threads);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                evaluator.evaluate(&Fragile, &solutions)
            }));
            let payload = caught.expect_err("the poisoned chunk must panic");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .expect("panic carries a message");
            assert!(
                message.contains("fragile evaluation rejected"),
                "threads {threads}: {message}"
            );
        }
    }
}
