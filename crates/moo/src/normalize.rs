//! Min–max objective normalization.
//!
//! The five manycore objectives live on wildly different scales (link
//! utilizations vs. femtojoule energies vs. kelvin-squared thermal products),
//! so hypervolume and scalarization are computed on objectives normalized to
//! `[0, 1]` by a [`Normalizer`] fitted either to a fixed corpus (for
//! cross-algorithm comparability) or updated online.

/// Per-objective min–max normalizer.
///
/// # Example
///
/// ```
/// use moela_moo::normalize::Normalizer;
///
/// let mut n = Normalizer::new(2);
/// n.observe(&[0.0, 10.0]);
/// n.observe(&[4.0, 30.0]);
/// assert_eq!(n.normalize(&[2.0, 20.0]), vec![0.5, 0.5]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Normalizer {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Normalizer {
    /// A normalizer over `m` objectives with an empty observation range.
    pub fn new(m: usize) -> Self {
        Self { min: vec![f64::INFINITY; m], max: vec![f64::NEG_INFINITY; m] }
    }

    /// Builds a normalizer from explicit per-objective bounds.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any `min > max`.
    pub fn from_bounds(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "bound dimension mismatch");
        assert!(min.iter().zip(&max).all(|(&lo, &hi)| lo <= hi), "lower bound exceeds upper bound");
        Self { min, max }
    }

    /// Rebuilds a normalizer from previously captured bounds without the
    /// validity checks of [`Normalizer::from_bounds`] — a checkpointed
    /// normalizer may legitimately hold `±∞` bounds (dimensions never
    /// observed), which `from_bounds` rejects.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_parts(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "bound dimension mismatch");
        Self { min, max }
    }

    /// Fits a normalizer to a corpus of objective vectors.
    pub fn fit(objs: &[Vec<f64>]) -> Self {
        let m = objs.first().map_or(0, Vec::len);
        let mut n = Self::new(m);
        for o in objs {
            n.observe(o);
        }
        n
    }

    /// Widens the range to include `objectives`.
    ///
    /// Vectors containing NaN or ±Inf are ignored wholesale: a single
    /// non-finite coordinate would permanently blow out the observed
    /// range and corrupt every later normalization.
    pub fn observe(&mut self, objectives: &[f64]) {
        assert_eq!(objectives.len(), self.min.len(), "dimension mismatch");
        if objectives.iter().any(|o| !o.is_finite()) {
            return;
        }
        for ((lo, hi), &o) in self.min.iter_mut().zip(self.max.iter_mut()).zip(objectives) {
            if o < *lo {
                *lo = o;
            }
            if o > *hi {
                *hi = o;
            }
        }
    }

    /// Maps `objectives` into `[0, 1]` per dimension and clamps values that
    /// fall outside the observed range. A degenerate dimension (zero range)
    /// maps to `0.0`.
    pub fn normalize(&self, objectives: &[f64]) -> Vec<f64> {
        assert_eq!(objectives.len(), self.min.len(), "dimension mismatch");
        objectives
            .iter()
            .zip(&self.min)
            .zip(&self.max)
            .map(|((&o, &lo), &hi)| {
                let range = hi - lo;
                if !range.is_finite() || range <= f64::EPSILON {
                    0.0
                } else {
                    ((o - lo) / range).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Like [`normalize`](Self::normalize) but without clamping: values
    /// better than the observed minimum map below 0, worse than the
    /// maximum above 1. Hypervolume computations use this form so designs
    /// that push past the reference corpus keep earning credit.
    pub fn normalize_unclamped(&self, objectives: &[f64]) -> Vec<f64> {
        assert_eq!(objectives.len(), self.min.len(), "dimension mismatch");
        objectives
            .iter()
            .zip(&self.min)
            .zip(&self.max)
            .map(|((&o, &lo), &hi)| {
                let range = hi - lo;
                if !range.is_finite() || range <= f64::EPSILON {
                    0.0
                } else {
                    (o - lo) / range
                }
            })
            .collect()
    }

    /// Observed minima.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Observed maxima.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Number of objectives this normalizer covers.
    pub fn len(&self) -> usize {
        self.min.len()
    }

    /// `true` if it covers zero objectives.
    pub fn is_empty(&self) -> bool {
        self.min.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_unit_interval() {
        let n = Normalizer::fit(&[vec![0.0, 100.0], vec![10.0, 200.0]]);
        assert_eq!(n.normalize(&[0.0, 100.0]), vec![0.0, 0.0]);
        assert_eq!(n.normalize(&[10.0, 200.0]), vec![1.0, 1.0]);
        assert_eq!(n.normalize(&[5.0, 150.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn clamps_out_of_range_values() {
        let n = Normalizer::from_bounds(vec![0.0], vec![1.0]);
        assert_eq!(n.normalize(&[-5.0]), vec![0.0]);
        assert_eq!(n.normalize(&[7.0]), vec![1.0]);
    }

    #[test]
    fn degenerate_dimension_maps_to_zero() {
        let n = Normalizer::fit(&[vec![3.0, 1.0], vec![3.0, 2.0]]);
        let v = n.normalize(&[3.0, 1.5]);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unobserved_normalizer_is_all_zero() {
        let n = Normalizer::new(2);
        assert_eq!(n.normalize(&[42.0, -42.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn preserves_ordering_within_a_dimension() {
        let mut n = Normalizer::new(1);
        n.observe(&[-2.0]);
        n.observe(&[8.0]);
        let a = n.normalize(&[1.0])[0];
        let b = n.normalize(&[2.0])[0];
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn invalid_bounds_panic() {
        Normalizer::from_bounds(vec![1.0], vec![0.0]);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut n = Normalizer::new(2);
        n.observe(&[0.0, 0.0]);
        n.observe(&[10.0, 10.0]);
        let before = n.clone();
        n.observe(&[f64::NAN, 5.0]);
        n.observe(&[5.0, f64::INFINITY]);
        n.observe(&[f64::NEG_INFINITY, 5.0]);
        assert_eq!(n, before);
        assert_eq!(n.normalize(&[5.0, 5.0]), vec![0.5, 0.5]);
    }
}
