//! The optimizer-side checkpointing contract.
//!
//! Every optimizer in the workspace exposes a *state-machine* form of its
//! run loop — `init` / [`Resumable::step`] / [`Resumable::finish`] — whose
//! step granularity is one generation (or episode, or sampling chunk).
//! The driver owns the loop:
//!
//! ```text
//! let mut state = Algo::init(config, &problem, &mut rng);
//! while state.step(&mut rng) {
//!     // safe point: state.snapshot_state(&codec) + rng state → disk
//! }
//! let result = state.finish();
//! ```
//!
//! The determinism contract: a state restored from
//! [`Resumable::snapshot_state`] (together with the RNG state captured at
//! the same safe point) continues with *bit-identical* RNG draws,
//! evaluations and trace points as the uninterrupted run, at any thread
//! count. The RNG state itself is **not** part of the snapshot value — the
//! driver stores it alongside, in the checkpoint envelope, because one
//! RNG spans the whole run while snapshots are per-algorithm.
//!
//! Restoration is an inherent per-algorithm constructor (configs and
//! context differ), so this trait covers only the uniform part: stepping,
//! snapshotting and finishing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::RngCore;

use moela_obs::Obs;
use moela_persist::{SolutionCodec, Value};

use crate::fault::{EvalFault, FaultLog};
use crate::run::RunResult;

/// A shared cooperative-cancellation flag checked at step boundaries.
///
/// Clones share one flag. The driver (or a job server) keeps one clone
/// and installs another via [`Resumable::set_cancel`]; once
/// [`CancelToken::cancel`] is called, the optimizer's next
/// [`Resumable::step`] returns `false` *without drawing a single RNG
/// value or mutating state*, leaving the run at a valid checkpoint
/// boundary. The token is never part of a snapshot: a restored run
/// starts with a fresh, un-cancelled token.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A checkpointable optimizer run in progress.
///
/// `C` is the solution codec (usually the problem type itself) used to
/// encode solutions embedded in the state.
pub trait Resumable<C: SolutionCodec<Self::Solution>> {
    /// The problem's solution type.
    type Solution;

    /// Completed step count (generations / episodes / chunks). Starts at
    /// 0 after `init` and increases by one per successful [`step`].
    ///
    /// [`step`]: Resumable::step
    fn completed(&self) -> u64;

    /// Executes exactly one step. Returns `false` when the run has
    /// finished (budget exhausted, generations done, or time up) — after
    /// which further calls must be no-ops that draw no RNG values.
    fn step(&mut self, rng: &mut dyn RngCore) -> bool;

    /// Captures the complete optimizer state (excluding the RNG, which
    /// the driver checkpoints alongside).
    fn snapshot_state(&self, codec: &C) -> Value;

    /// Consumes the state, producing the final [`RunResult`].
    fn finish(self) -> RunResult<Self::Solution>;

    /// The fault counters accumulated by this run's guarded evaluator,
    /// if the optimizer evaluates under containment (all workspace
    /// optimizers do; the default covers external implementors).
    fn fault_log(&self) -> Option<&FaultLog> {
        None
    }

    /// The latched [`crate::fault::FaultPolicy::Fail`] error, if an
    /// evaluation fault stopped this run. When set, [`step`] has
    /// returned `false` early and the driver should surface the error
    /// instead of reporting a completed run.
    ///
    /// [`step`]: Resumable::step
    fn fault_error(&self) -> Option<&EvalFault> {
        None
    }

    /// Installs a cooperative-cancellation token. After the token is
    /// cancelled, [`step`] must return `false` immediately — drawing no
    /// RNG values and mutating nothing — so the state can still be
    /// snapshotted at the boundary and resumed later. The default
    /// ignores the token (external implementors are then only
    /// cancellable between steps, by the driver's own check).
    ///
    /// [`step`]: Resumable::step
    fn set_cancel(&mut self, _token: CancelToken) {}

    /// Installs an observability handle the optimizer reports phase
    /// spans and counters through. Called by the driver after `init` or
    /// restore; never checkpointed. Observability is strictly
    /// write-only telemetry — installing a handle must not change a
    /// single RNG draw, evaluation, or trace byte. The default ignores
    /// the handle (external implementors emit nothing).
    fn set_obs(&mut self, _obs: Obs) {}

    /// Objective evaluations paid for so far, for progress reporting.
    fn evaluations(&self) -> u64 {
        0
    }

    /// The most recent normalized hypervolume recorded on the anytime
    /// trace, if any — the "best scalarized" figure progress lines show.
    fn latest_phv(&self) -> Option<f64> {
        None
    }
}
