//! Property-based tests of the MOO toolkit's core invariants.

use moela_moo::hypervolume::{hypervolume, monte_carlo_hypervolume};
use moela_moo::normalize::Normalizer;
use moela_moo::pareto::{crowding_distance, dominates, non_dominated_indices};
use moela_moo::problems::{Dtlz, Zdt};
use moela_moo::scalarize::{ReferencePoint, Scalarizer};
use moela_moo::weights::{neighborhoods, uniform_weights};
use moela_moo::{ParallelEvaluator, Problem};
use proptest::prelude::*;
use rand::SeedableRng;

/// `evaluate_batch` (at any worker count) must agree bit-for-bit with
/// per-solution `evaluate` — the contract every optimizer's determinism
/// rests on.
fn assert_batch_parity<P>(problem: &P, count: usize, threads: usize, seed: u64)
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let solutions: Vec<P::Solution> =
        (0..count).map(|_| problem.random_solution(&mut rng)).collect();
    let sequential: Vec<Vec<f64>> = solutions.iter().map(|s| problem.evaluate(s)).collect();
    assert_eq!(problem.evaluate_batch(&solutions), sequential);
    let evaluator = ParallelEvaluator::new(threads);
    assert_eq!(evaluator.evaluate(problem, &solutions), sequential);
}

fn objective_vectors(m: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, m), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact WFG hypervolume agrees with the Monte-Carlo estimator.
    #[test]
    fn exact_hv_matches_monte_carlo(points in objective_vectors(3, 10), seed in 0u64..100) {
        let reference = vec![1.0; 3];
        let exact = hypervolume(&points, &reference);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let est = monte_carlo_hypervolume(&points, &reference, &[0.0; 3], 60_000, &mut rng);
        prop_assert!((exact - est).abs() < 0.03, "exact {exact} vs mc {est}");
    }

    /// Hypervolume never exceeds the reference box volume.
    #[test]
    fn hv_is_bounded_by_the_reference_box(points in objective_vectors(4, 12)) {
        let reference = vec![1.1; 4];
        let hv = hypervolume(&points, &reference);
        prop_assert!(hv >= 0.0);
        prop_assert!(hv <= 1.1f64.powi(4) + 1e-9);
    }

    /// The HV of a set equals the HV of its non-dominated subset.
    #[test]
    fn hv_depends_only_on_the_front(points in objective_vectors(3, 12)) {
        let reference = vec![1.0; 3];
        let front: Vec<Vec<f64>> = non_dominated_indices(&points)
            .into_iter()
            .map(|i| points[i].clone())
            .collect();
        let a = hypervolume(&points, &reference);
        let b = hypervolume(&front, &reference);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Dominance is a strict partial order: irreflexive, asymmetric,
    /// transitive.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in proptest::collection::vec(0.0f64..1.0, 3),
        b in proptest::collection::vec(0.0f64..1.0, 3),
        c in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// Crowding distances are non-negative and never NaN.
    #[test]
    fn crowding_distances_are_well_formed(points in objective_vectors(3, 15)) {
        let d = crowding_distance(&points);
        prop_assert_eq!(d.len(), points.len());
        prop_assert!(d.iter().all(|x| !x.is_nan() && *x >= 0.0));
    }

    /// Weight vectors lie on the simplex and neighborhoods start with self.
    #[test]
    fn weights_are_simplex_points(n in 2usize..40, m in 2usize..6) {
        let w = uniform_weights(n, m);
        prop_assert_eq!(w.len(), n);
        for v in &w {
            let s: f64 = v.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(v.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        }
        let t = (n / 2).max(1);
        let nb = neighborhoods(&w, t);
        for (i, neighbors) in nb.iter().enumerate() {
            prop_assert_eq!(neighbors[0], i);
            prop_assert_eq!(neighbors.len(), t);
        }
    }

    /// The reference point is the component-wise minimum of everything it
    /// observed.
    #[test]
    fn reference_point_tracks_minima(objs in objective_vectors(4, 20)) {
        let mut z = ReferencePoint::new(4);
        for o in &objs {
            z.update(o);
        }
        for k in 0..4 {
            let min = objs.iter().map(|o| o[k]).fold(f64::INFINITY, f64::min);
            prop_assert!((z.values()[k] - min).abs() < 1e-12);
        }
    }

    /// Normalization round-trips ordering: if `a[k] < b[k]` then
    /// `norm(a)[k] <= norm(b)[k]`.
    #[test]
    fn normalization_preserves_per_dimension_order(
        corpus in objective_vectors(3, 20),
        a in proptest::collection::vec(0.0f64..1.0, 3),
        b in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let n = Normalizer::fit(&corpus);
        let na = n.normalize_unclamped(&a);
        let nb = n.normalize_unclamped(&b);
        for k in 0..3 {
            if a[k] < b[k] {
                prop_assert!(na[k] <= nb[k] + 1e-12);
            }
        }
    }

    /// Batch evaluation equals per-solution evaluation on the ZDT family,
    /// for any batch size and worker count.
    #[test]
    fn zdt_batch_evaluation_matches_sequential(
        variant in 0usize..5,
        n in 2usize..12,
        count in 0usize..17,
        threads in 0usize..9,
        seed in 0u64..1000,
    ) {
        let problem = match variant {
            0 => Zdt::zdt1(n),
            1 => Zdt::zdt2(n),
            2 => Zdt::zdt3(n),
            3 => Zdt::zdt4(n),
            _ => Zdt::zdt6(n),
        };
        assert_batch_parity(&problem, count, threads, seed);
    }

    /// Batch evaluation equals per-solution evaluation on the DTLZ family,
    /// for any batch size and worker count.
    #[test]
    fn dtlz_batch_evaluation_matches_sequential(
        variant in 0usize..5,
        m in 2usize..5,
        k in 2usize..8,
        count in 0usize..17,
        threads in 0usize..9,
        seed in 0u64..1000,
    ) {
        let problem = match variant {
            0 => Dtlz::dtlz1(m, k),
            1 => Dtlz::dtlz2(m, k),
            2 => Dtlz::dtlz3(m, k),
            3 => Dtlz::dtlz4(m, k),
            _ => Dtlz::dtlz7(m, k),
        };
        assert_batch_parity(&problem, count, threads, seed);
    }

    /// Scalarized values are zero exactly at the reference point and
    /// non-negative everywhere.
    #[test]
    fn scalarizers_are_nonnegative(
        obj in proptest::collection::vec(0.0f64..5.0, 3),
        z in proptest::collection::vec(0.0f64..5.0, 3),
        raw_w in proptest::collection::vec(0.01f64..1.0, 3),
    ) {
        let total: f64 = raw_w.iter().sum();
        let w: Vec<f64> = raw_w.iter().map(|v| v / total).collect();
        for s in [Scalarizer::WeightedSum, Scalarizer::Tchebycheff] {
            prop_assert!(s.value(&obj, &w, &z) >= 0.0);
            prop_assert!(s.value(&z, &w, &z).abs() < 1e-12);
        }
    }
}
