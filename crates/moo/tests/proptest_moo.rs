//! Property-based tests of the MOO toolkit's core invariants.

use moela_moo::archive::ParetoArchive;
use moela_moo::hypervolume::{hypervolume, monte_carlo_hypervolume, try_hypervolume, HvError};
use moela_moo::normalize::Normalizer;
use moela_moo::pareto::{crowding_distance, dominates, non_dominated_indices, non_dominated_sort};
use moela_moo::problems::{Dtlz, Zdt};
use moela_moo::scalarize::{ReferencePoint, Scalarizer};
use moela_moo::weights::{neighborhoods, uniform_weights};
use moela_moo::{
    is_quarantined, ChaosProblem, ChaosSpec, FaultConfig, FaultPolicy, GuardedEvaluator,
    ParallelEvaluator, Problem,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Replaces a random subset of coordinates with NaN/±Inf; returns the
/// indices of the corrupted vectors.
fn corrupt(points: &mut [Vec<f64>], seed: u64) -> Vec<usize> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut dirty = Vec::new();
    for (i, p) in points.iter_mut().enumerate() {
        if p.is_empty() || rng.gen_range(0.0..1.0) >= 0.4 {
            continue;
        }
        let k = rng.gen_range(0..p.len());
        p[k] = match rng.gen_range(0u32..3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        dirty.push(i);
    }
    dirty
}

/// `evaluate_batch` (at any worker count) must agree bit-for-bit with
/// per-solution `evaluate` — the contract every optimizer's determinism
/// rests on.
fn assert_batch_parity<P>(problem: &P, count: usize, threads: usize, seed: u64)
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let solutions: Vec<P::Solution> =
        (0..count).map(|_| problem.random_solution(&mut rng)).collect();
    let sequential: Vec<Vec<f64>> = solutions.iter().map(|s| problem.evaluate(s)).collect();
    assert_eq!(problem.evaluate_batch(&solutions), sequential);
    let evaluator = ParallelEvaluator::new(threads);
    assert_eq!(evaluator.evaluate(problem, &solutions), sequential);
}

fn objective_vectors(m: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, m), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact WFG hypervolume agrees with the Monte-Carlo estimator.
    #[test]
    fn exact_hv_matches_monte_carlo(points in objective_vectors(3, 10), seed in 0u64..100) {
        let reference = vec![1.0; 3];
        let exact = hypervolume(&points, &reference);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let est = monte_carlo_hypervolume(&points, &reference, &[0.0; 3], 60_000, &mut rng);
        prop_assert!((exact - est).abs() < 0.03, "exact {exact} vs mc {est}");
    }

    /// Hypervolume never exceeds the reference box volume.
    #[test]
    fn hv_is_bounded_by_the_reference_box(points in objective_vectors(4, 12)) {
        let reference = vec![1.1; 4];
        let hv = hypervolume(&points, &reference);
        prop_assert!(hv >= 0.0);
        prop_assert!(hv <= 1.1f64.powi(4) + 1e-9);
    }

    /// The HV of a set equals the HV of its non-dominated subset.
    #[test]
    fn hv_depends_only_on_the_front(points in objective_vectors(3, 12)) {
        let reference = vec![1.0; 3];
        let front: Vec<Vec<f64>> = non_dominated_indices(&points)
            .into_iter()
            .map(|i| points[i].clone())
            .collect();
        let a = hypervolume(&points, &reference);
        let b = hypervolume(&front, &reference);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Dominance is a strict partial order: irreflexive, asymmetric,
    /// transitive.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in proptest::collection::vec(0.0f64..1.0, 3),
        b in proptest::collection::vec(0.0f64..1.0, 3),
        c in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// Crowding distances are non-negative and never NaN.
    #[test]
    fn crowding_distances_are_well_formed(points in objective_vectors(3, 15)) {
        let d = crowding_distance(&points);
        prop_assert_eq!(d.len(), points.len());
        prop_assert!(d.iter().all(|x| !x.is_nan() && *x >= 0.0));
    }

    /// Weight vectors lie on the simplex and neighborhoods start with self.
    #[test]
    fn weights_are_simplex_points(n in 2usize..40, m in 2usize..6) {
        let w = uniform_weights(n, m);
        prop_assert_eq!(w.len(), n);
        for v in &w {
            let s: f64 = v.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(v.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        }
        let t = (n / 2).max(1);
        let nb = neighborhoods(&w, t);
        for (i, neighbors) in nb.iter().enumerate() {
            prop_assert_eq!(neighbors[0], i);
            prop_assert_eq!(neighbors.len(), t);
        }
    }

    /// The reference point is the component-wise minimum of everything it
    /// observed.
    #[test]
    fn reference_point_tracks_minima(objs in objective_vectors(4, 20)) {
        let mut z = ReferencePoint::new(4);
        for o in &objs {
            z.update(o);
        }
        for k in 0..4 {
            let min = objs.iter().map(|o| o[k]).fold(f64::INFINITY, f64::min);
            prop_assert!((z.values()[k] - min).abs() < 1e-12);
        }
    }

    /// Normalization round-trips ordering: if `a[k] < b[k]` then
    /// `norm(a)[k] <= norm(b)[k]`.
    #[test]
    fn normalization_preserves_per_dimension_order(
        corpus in objective_vectors(3, 20),
        a in proptest::collection::vec(0.0f64..1.0, 3),
        b in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let n = Normalizer::fit(&corpus);
        let na = n.normalize_unclamped(&a);
        let nb = n.normalize_unclamped(&b);
        for k in 0..3 {
            if a[k] < b[k] {
                prop_assert!(na[k] <= nb[k] + 1e-12);
            }
        }
    }

    /// Batch evaluation equals per-solution evaluation on the ZDT family,
    /// for any batch size and worker count.
    #[test]
    fn zdt_batch_evaluation_matches_sequential(
        variant in 0usize..5,
        n in 2usize..12,
        count in 0usize..17,
        threads in 0usize..9,
        seed in 0u64..1000,
    ) {
        let problem = match variant {
            0 => Zdt::zdt1(n),
            1 => Zdt::zdt2(n),
            2 => Zdt::zdt3(n),
            3 => Zdt::zdt4(n),
            _ => Zdt::zdt6(n),
        };
        assert_batch_parity(&problem, count, threads, seed);
    }

    /// Batch evaluation equals per-solution evaluation on the DTLZ family,
    /// for any batch size and worker count.
    #[test]
    fn dtlz_batch_evaluation_matches_sequential(
        variant in 0usize..5,
        m in 2usize..5,
        k in 2usize..8,
        count in 0usize..17,
        threads in 0usize..9,
        seed in 0u64..1000,
    ) {
        let problem = match variant {
            0 => Dtlz::dtlz1(m, k),
            1 => Dtlz::dtlz2(m, k),
            2 => Dtlz::dtlz3(m, k),
            3 => Dtlz::dtlz4(m, k),
            _ => Dtlz::dtlz7(m, k),
        };
        assert_batch_parity(&problem, count, threads, seed);
    }

    /// The archive never admits a non-finite objective vector, no matter
    /// what mix of clean and corrupted points is thrown at it.
    #[test]
    fn archive_never_admits_non_finite(
        points in objective_vectors(3, 20),
        seed in 0u64..1000,
        bounded in 0u32..2,
    ) {
        let mut points = points;
        corrupt(&mut points, seed);
        let mut archive =
            if bounded == 1 { ParetoArchive::bounded(5) } else { ParetoArchive::unbounded() };
        for (i, p) in points.iter().enumerate() {
            archive.insert(i, p.clone());
        }
        for (_, o) in archive.iter() {
            prop_assert!(o.iter().all(|v| v.is_finite()), "archive holds {o:?}");
        }
    }

    /// Non-dominated sorting stays a partition under corruption, with
    /// every non-finite point ranked strictly behind every finite one.
    #[test]
    fn sort_quarantines_non_finite_points(
        points in objective_vectors(3, 20),
        seed in 0u64..1000,
    ) {
        let mut points = points;
        let dirty = corrupt(&mut points, seed);
        let fronts = non_dominated_sort(&points);
        let mut seen: Vec<usize> = fronts.concat();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..points.len()).collect::<Vec<_>>());
        if !dirty.is_empty() {
            let last = fronts.last().unwrap().clone();
            prop_assert_eq!(last, dirty.clone());
        }
        for i in non_dominated_indices(&points) {
            prop_assert!(!dirty.contains(&i));
        }
    }

    /// Hypervolume of a corrupted set skips the garbage (stays finite and
    /// equal to the clean subset), while `try_hypervolume` reports it.
    #[test]
    fn hv_skips_garbage_and_try_reports_it(
        points in objective_vectors(3, 14),
        seed in 0u64..1000,
    ) {
        let reference = vec![1.0; 3];
        let mut points = points;
        let dirty = corrupt(&mut points, seed);
        let clean: Vec<Vec<f64>> = points
            .iter()
            .filter(|p| p.iter().all(|v| v.is_finite()))
            .cloned()
            .collect();
        let hv = hypervolume(&points, &reference);
        prop_assert!(hv.is_finite());
        prop_assert_eq!(hv, hypervolume(&clean, &reference));
        match try_hypervolume(&points, &reference) {
            Ok(v) => {
                prop_assert!(dirty.is_empty());
                prop_assert_eq!(v, hv);
            }
            Err(HvError::NonFinitePoint { index }) => {
                prop_assert_eq!(Some(&index), dirty.first());
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// A normalizer fed corrupted vectors keeps finite (or untouched
    /// initial) bounds and keeps normalizing cleanly.
    #[test]
    fn normalizer_bounds_survive_corruption(
        points in objective_vectors(3, 20),
        seed in 0u64..1000,
    ) {
        let mut points = points;
        corrupt(&mut points, seed);
        let mut n = Normalizer::new(3);
        for p in &points {
            n.observe(p);
        }
        for k in 0..3 {
            let (lo, hi) = (n.min()[k], n.max()[k]);
            prop_assert!(lo.is_finite() || lo == f64::INFINITY, "min {lo}");
            prop_assert!(hi.is_finite() || hi == f64::NEG_INFINITY, "max {hi}");
        }
        prop_assert!(n.normalize(&[0.5, 0.5, 0.5]).iter().all(|v| v.is_finite()));
    }

    /// Under every fault policy and thread count, a guarded chaotic
    /// evaluation never emits a non-finite objective vector — so nothing
    /// non-finite can reach archives, normalizers, datasets or
    /// checkpoints downstream.
    #[test]
    fn guarded_chaos_output_is_always_finite(
        count in 1usize..24,
        threads in 1usize..5,
        policy in 0u32..3,
        retries in 0u32..3,
        seed in 0u64..1000,
    ) {
        let policy = match policy {
            0 => FaultPolicy::Fail,
            1 => FaultPolicy::PenalizeWorst,
            _ => FaultPolicy::Skip,
        };
        let problem = Zdt::zdt1(4);
        let spec = ChaosSpec::parse("panic=0.15,nan=0.15,inf=0.15,arity=0.15").unwrap();
        let chaotic = ChaosProblem::new(&problem, spec, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let solutions: Vec<Vec<f64>> =
            (0..count).map(|_| problem.random_solution(&mut rng)).collect();
        let mut guard = GuardedEvaluator::new(threads, FaultConfig { policy, retries });
        let batch = guard.evaluate(&chaotic, &solutions);
        prop_assert!(batch.attempts >= solutions.len() as u64);
        for objs in batch.objectives.iter().flatten() {
            prop_assert_eq!(objs.len(), problem.objective_count());
            prop_assert!(objs.iter().all(|v| v.is_finite()), "leaked {objs:?}");
        }
        // Materialized batches (initial-population path) are finite too.
        for objs in batch.materialized(problem.objective_count()) {
            prop_assert!(objs.iter().all(|v| v.is_finite()));
        }
        // Quarantine bookkeeping is self-consistent.
        let log = guard.log();
        prop_assert_eq!(log.faults() >= log.penalized + log.skipped + log.recovered, true);
        if policy == FaultPolicy::PenalizeWorst {
            let penalized = batch
                .objectives
                .iter()
                .flatten()
                .filter(|o| is_quarantined(o))
                .count() as u64;
            prop_assert_eq!(penalized, log.penalized);
        }
    }

    /// Scalarized values are zero exactly at the reference point and
    /// non-negative everywhere.
    #[test]
    fn scalarizers_are_nonnegative(
        obj in proptest::collection::vec(0.0f64..5.0, 3),
        z in proptest::collection::vec(0.0f64..5.0, 3),
        raw_w in proptest::collection::vec(0.01f64..1.0, 3),
    ) {
        let total: f64 = raw_w.iter().sum();
        let w: Vec<f64> = raw_w.iter().map(|v| v / total).collect();
        for s in [Scalarizer::WeightedSum, Scalarizer::Tchebycheff] {
            prop_assert!(s.value(&obj, &w, &z) >= 0.0);
            prop_assert!(s.value(&z, &w, &z).abs() < 1e-12);
        }
    }
}
