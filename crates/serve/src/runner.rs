//! The seam between the server and the optimizer driver.
//!
//! `moela-serve` owns queueing, lifecycle, and HTTP; it knows nothing
//! about algorithms, problems, or checkpoint envelopes. The binary that
//! embeds the server supplies a [`JobRunner`] — in `moela-dse` that is
//! the same engine the `run`/`resume` subcommands use, which is what
//! makes served artifacts byte-identical to CLI runs.
//!
//! Failures cross the seam with a [`FailureKind`] so the supervision
//! layer can tell a spec that will never work (fail it) from an I/O
//! hiccup or an exhausted fault budget (retry it with backoff).

use std::path::Path;
use std::sync::{Arc, Mutex};

use moela_moo::checkpoint::CancelToken;
use moela_obs::MetricsAggregator;
use moela_persist::Value;

use crate::supervise::Heartbeat;

/// Everything a runner gets for one job execution.
pub struct JobContext<'a> {
    /// Stable job id (`job-000001`).
    pub id: &'a str,
    /// The job's run directory; the runner creates or reopens the
    /// `RunStore` here, including checkpoints from a previous life.
    pub dir: &'a Path,
    /// The validated submission spec.
    pub spec: &'a Value,
    /// Cancellation flag: the runner must thread it into the optimizer
    /// so a cancel, drain, deadline, or stall interrupt parks the run
    /// at the next step boundary.
    pub cancel: CancelToken,
    /// Which attempt this is, 1-based. Retries resume from the last
    /// checkpoint, so a runner rarely needs this beyond reporting.
    pub attempt: u64,
    /// Step-boundary heartbeat: the runner must beat it from the
    /// optimizer loop or the watchdog will mark the job stalled.
    pub heartbeat: &'a Heartbeat,
    /// Slot the runner fills with its live metrics aggregator so
    /// `GET /jobs/{id}` can report in-flight progress.
    pub live: &'a Mutex<Option<Arc<Mutex<MetricsAggregator>>>>,
}

/// How one job execution ended (errors are the `Err` channel).
#[derive(Debug)]
pub enum RunOutcome {
    /// Ran to completion; `summary` becomes the job's final report.
    Completed {
        /// Small JSON summary (evaluations, PHV, artifact names).
        summary: Value,
    },
    /// Parked at a checkpoint because the cancel token fired; the
    /// `RunStore` is resumable.
    Interrupted,
}

/// How a failed execution should be treated by the supervision layer.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum FailureKind {
    /// Retrying cannot help (bad spec, logic error): fail the job.
    Permanent,
    /// Likely to succeed on a retry (fault budget, races): back off and
    /// retry from the last checkpoint.
    Transient,
    /// A checkpoint/trace/artifact write failed: retry like a transient
    /// failure, and additionally flip the server's readiness to
    /// degraded until a write succeeds again.
    Disk,
}

/// A classified execution failure.
#[derive(Debug)]
pub struct RunError {
    /// Human-readable cause, recorded on the job.
    pub message: String,
    /// Retry disposition.
    pub kind: FailureKind,
}

impl RunError {
    /// A failure retries cannot fix.
    pub fn permanent(message: impl Into<String>) -> Self {
        RunError { message: message.into(), kind: FailureKind::Permanent }
    }

    /// A failure worth retrying with backoff.
    pub fn transient(message: impl Into<String>) -> Self {
        RunError { message: message.into(), kind: FailureKind::Transient }
    }

    /// A disk-write failure: retried, and degrades `/readyz`.
    pub fn disk(message: impl Into<String>) -> Self {
        RunError { message: message.into(), kind: FailureKind::Disk }
    }

    /// Whether the supervision layer should schedule a retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self.kind, FailureKind::Transient | FailureKind::Disk)
    }
}

impl From<String> for RunError {
    fn from(message: String) -> Self {
        RunError::permanent(message)
    }
}

/// Validates and executes jobs. Implementations must be `Send + Sync`;
/// one instance is shared by every run worker.
pub trait JobRunner: Send + Sync {
    /// Checks a submission spec before it is accepted into the queue,
    /// returning the normalized spec to persist. Errors become 400s.
    fn validate(&self, spec: &Value) -> Result<Value, String>;

    /// Drives one job to an outcome. Called from a run worker thread; a
    /// fresh directory means a new run, an existing checkpoint means
    /// resume. Panics are contained by the worker and treated as
    /// transient failures, but classified errors in `Err` are always
    /// preferred.
    fn run(&self, ctx: JobContext<'_>) -> Result<RunOutcome, RunError>;
}
