//! The seam between the server and the optimizer driver.
//!
//! `moela-serve` owns queueing, lifecycle, and HTTP; it knows nothing
//! about algorithms, problems, or checkpoint envelopes. The binary that
//! embeds the server supplies a [`JobRunner`] — in `moela-dse` that is
//! the same engine the `run`/`resume` subcommands use, which is what
//! makes served artifacts byte-identical to CLI runs.

use std::path::Path;
use std::sync::{Arc, Mutex};

use moela_moo::checkpoint::CancelToken;
use moela_obs::MetricsAggregator;
use moela_persist::Value;

/// Everything a runner gets for one job execution.
pub struct JobContext<'a> {
    /// Stable job id (`job-000001`).
    pub id: &'a str,
    /// The job's run directory; the runner creates or reopens the
    /// `RunStore` here, including checkpoints from a previous life.
    pub dir: &'a Path,
    /// The validated submission spec.
    pub spec: &'a Value,
    /// Cancellation flag: the runner must thread it into the optimizer
    /// so a cancel or drain parks the run at the next step boundary.
    pub cancel: CancelToken,
    /// Slot the runner fills with its live metrics aggregator so
    /// `GET /jobs/{id}` can report in-flight progress.
    pub live: &'a Mutex<Option<Arc<Mutex<MetricsAggregator>>>>,
}

/// How one job execution ended (errors are the `Err` channel).
#[derive(Debug)]
pub enum RunOutcome {
    /// Ran to completion; `summary` becomes the job's final report.
    Completed {
        /// Small JSON summary (evaluations, PHV, artifact names).
        summary: Value,
    },
    /// Parked at a checkpoint because the cancel token fired; the
    /// `RunStore` is resumable.
    Interrupted,
}

/// Validates and executes jobs. Implementations must be `Send + Sync`;
/// one instance is shared by every run worker.
pub trait JobRunner: Send + Sync {
    /// Checks a submission spec before it is accepted into the queue,
    /// returning the normalized spec to persist. Errors become 400s.
    fn validate(&self, spec: &Value) -> Result<Value, String>;

    /// Drives one job to an outcome. Called from a run worker thread; a
    /// fresh directory means a new run, an existing checkpoint means
    /// resume. Must never panic — the optimizer layer already contains
    /// evaluation panics, and infrastructure errors belong in `Err`.
    fn run(&self, ctx: JobContext<'_>) -> Result<RunOutcome, String>;
}
