//! The job manager: a bounded submission queue, a fixed pool of run
//! workers, lifecycle bookkeeping, and crash recovery.
//!
//! All shared state lives in one `Mutex<Inner>` plus a `Condvar`; no
//! lock is ever held across a runner call or a disk write. Backpressure
//! is strict: when the queue holds `queue_depth` jobs, submissions are
//! refused with 429 rather than buffered — memory use is bounded by
//! configuration, not by client enthusiasm.
//!
//! A graceful drain stops workers from picking up new work, fires every
//! running job's cancel token so it parks at the next step boundary,
//! and waits for the pool to exit. Queued jobs stay `queued` in their
//! `job.json`; a restarted server rediscovers them (and any `running`
//! jobs a crash left behind) and re-queues them in submission order.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use moela_persist::{decode, Value};

use crate::error::ApiError;
use crate::job::{JobRecord, JobState};
use crate::metrics::ServerMetrics;
use crate::runner::{JobContext, JobRunner, RunOutcome};

/// Mutable manager state, guarded by [`JobManager::inner`].
#[derive(Debug, Default)]
struct Inner {
    /// Every known job, keyed by submission sequence.
    jobs: BTreeMap<u64, Arc<JobRecord>>,
    /// Sequences waiting for a worker, oldest first.
    queue: VecDeque<u64>,
    /// Jobs currently inside a runner call.
    running: usize,
    /// Next submission sequence to hand out.
    next_seq: u64,
    /// Set once by [`JobManager::drain`]; never cleared.
    draining: bool,
    /// Worker threads that have not exited yet.
    workers_alive: usize,
}

/// Owns the queue and the run-worker pool. Construct with
/// [`JobManager::start`]; shut down with [`JobManager::drain`].
pub struct JobManager {
    inner: Mutex<Inner>,
    cond: Condvar,
    runner: Arc<dyn JobRunner>,
    metrics: Arc<ServerMetrics>,
    run_root: PathBuf,
    queue_depth: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("run_root", &self.run_root)
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl JobManager {
    /// Creates the manager: recovers jobs left behind in `run_root` by a
    /// previous process, then starts `workers` run threads.
    pub fn start(
        run_root: PathBuf,
        queue_depth: usize,
        workers: usize,
        runner: Arc<dyn JobRunner>,
        metrics: Arc<ServerMetrics>,
    ) -> std::io::Result<Arc<Self>> {
        std::fs::create_dir_all(&run_root)?;
        let manager = Arc::new(JobManager {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            runner,
            metrics,
            run_root,
            queue_depth: queue_depth.max(1),
            workers: Mutex::new(Vec::new()),
        });
        manager.recover()?;
        {
            let mut handles = manager.workers.lock().expect("workers");
            manager.inner.lock().expect("inner").workers_alive = workers.max(1);
            for n in 0..workers.max(1) {
                let m = Arc::clone(&manager);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("moela-run-{n}"))
                        .spawn(move || m.worker_loop())
                        .expect("spawn run worker"),
                );
            }
        }
        Ok(manager)
    }

    /// Scans `run_root` for `job.json` manifests from a previous life.
    /// Unfinished jobs (`queued`, `running`, `interrupted`) are
    /// re-queued in submission order; finished ones are kept as records
    /// so the API can still report them.
    fn recover(&self) -> std::io::Result<()> {
        let mut found: Vec<(u64, Arc<JobRecord>, bool)> = Vec::new();
        for entry in std::fs::read_dir(&self.run_root)? {
            let dir = entry?.path();
            let manifest_path = dir.join("job.json");
            if !manifest_path.is_file() {
                continue;
            }
            let text = std::fs::read_to_string(&manifest_path)?;
            let Ok(manifest) = decode::from_str(&text) else {
                eprintln!("serve: skipping unreadable manifest {}", manifest_path.display());
                continue;
            };
            let Some(record) = record_from_manifest(&manifest, dir) else {
                eprintln!("serve: skipping malformed manifest {}", manifest_path.display());
                continue;
            };
            let unfinished = !record.state().is_terminal();
            found.push((record.seq, Arc::new(record), unfinished));
        }
        found.sort_by_key(|(seq, _, _)| *seq);

        let mut requeue = Vec::new();
        {
            let mut inner = self.inner.lock().expect("inner");
            for (seq, record, unfinished) in found {
                inner.next_seq = inner.next_seq.max(seq + 1);
                if unfinished {
                    record.set_state(JobState::Queued, None, None);
                    inner.queue.push_back(seq);
                    requeue.push(Arc::clone(&record));
                    ServerMetrics::bump(&self.metrics.recovered);
                }
                inner.jobs.insert(seq, record);
            }
        }
        // Persist the queued state outside the lock; a failure here only
        // means the next crash re-runs the same recovery.
        for record in requeue {
            if let Err(e) = record.persist() {
                eprintln!("serve: {e}");
            }
        }
        self.cond.notify_all();
        Ok(())
    }

    /// Validates and enqueues a job. Refuses with 503 while draining and
    /// 429 (plus `Retry-After`) when the queue is at capacity.
    pub fn submit(&self, spec: &Value) -> Result<Arc<JobRecord>, ApiError> {
        let spec =
            self.runner.validate(spec).map_err(|msg| ApiError::new(400, "invalid_spec", msg))?;
        let record = {
            let mut inner = self.inner.lock().expect("inner");
            if inner.draining {
                return Err(ApiError::new(503, "draining", "server is draining"));
            }
            if inner.queue.len() >= self.queue_depth {
                ServerMetrics::bump(&self.metrics.rejected_full);
                return Err(ApiError::new(
                    429,
                    "queue_full",
                    format!("submission queue is full ({} jobs)", self.queue_depth),
                ));
            }
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let id = format!("job-{seq:06}");
            let dir = self.run_root.join(&id);
            let record = Arc::new(JobRecord::new(id, seq, dir, spec, JobState::Queued));
            inner.jobs.insert(seq, Arc::clone(&record));
            inner.queue.push_back(seq);
            record
        };
        ServerMetrics::bump(&self.metrics.submitted);
        if let Err(e) = record.persist() {
            eprintln!("serve: {e}");
        }
        self.cond.notify_one();
        Ok(record)
    }

    /// All jobs in submission order.
    pub fn list(&self) -> Vec<Arc<JobRecord>> {
        self.inner.lock().expect("inner").jobs.values().cloned().collect()
    }

    /// Looks up a job by id.
    pub fn get(&self, id: &str) -> Option<Arc<JobRecord>> {
        self.inner.lock().expect("inner").jobs.values().find(|r| r.id == id).cloned()
    }

    /// Cancels a job: a queued job is removed from the queue outright; a
    /// running job has its token fired and parks at the next step
    /// boundary. Terminal jobs refuse with 409.
    pub fn cancel(&self, id: &str) -> Result<Arc<JobRecord>, ApiError> {
        let record = self.get(id).ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
        let was_queued = {
            let mut inner = self.inner.lock().expect("inner");
            match record.state() {
                JobState::Queued => {
                    inner.queue.retain(|&seq| seq != record.seq);
                    record.request_cancel();
                    record.set_state(JobState::Cancelled, None, None);
                    true
                }
                JobState::Running => {
                    record.request_cancel();
                    false
                }
                state => {
                    return Err(ApiError::new(
                        409,
                        "not_cancellable",
                        format!("job {id} is already {}", state.name()),
                    ));
                }
            }
        };
        if was_queued {
            ServerMetrics::bump(&self.metrics.cancelled);
            if let Err(e) = record.persist() {
                eprintln!("serve: {e}");
            }
        }
        Ok(record)
    }

    /// Graceful drain: stop handing out work, park every running job at
    /// its next step boundary, and wait for the worker pool to exit.
    /// Queued jobs are left `queued` on disk for the next process.
    pub fn drain(&self) {
        let running: Vec<Arc<JobRecord>> = {
            let mut inner = self.inner.lock().expect("inner");
            inner.draining = true;
            inner.jobs.values().filter(|r| r.state() == JobState::Running).cloned().collect()
        };
        for record in running {
            // Fire the token without marking a client cancel: the worker
            // records the parked job as `interrupted`, not `cancelled`.
            record.cancel.cancel();
        }
        self.cond.notify_all();
        let mut inner = self.inner.lock().expect("inner");
        while inner.running > 0 || inner.workers_alive > 0 {
            inner = self.cond.wait(inner).expect("inner");
        }
        drop(inner);
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// One run worker: pop, run, record the outcome, repeat. Exits when
    /// a drain begins.
    fn worker_loop(&self) {
        loop {
            let record = {
                let mut inner = self.inner.lock().expect("inner");
                loop {
                    if inner.draining {
                        inner.workers_alive -= 1;
                        self.cond.notify_all();
                        return;
                    }
                    if let Some(seq) = inner.queue.pop_front() {
                        let record = inner.jobs.get(&seq).expect("queued job exists").clone();
                        inner.running += 1;
                        break record;
                    }
                    inner = self.cond.wait(inner).expect("inner");
                }
            };

            record.set_state(JobState::Running, None, None);
            if let Err(e) = record.persist() {
                eprintln!("serve: {e}");
            }
            let outcome = self.runner.run(JobContext {
                id: &record.id,
                dir: &record.dir,
                spec: &record.spec,
                cancel: record.cancel.clone(),
                live: &record.live,
            });
            *record.live.lock().expect("live slot") = None;
            let (state, error, summary) = match outcome {
                Ok(RunOutcome::Completed { summary }) => {
                    ServerMetrics::bump(&self.metrics.completed);
                    (JobState::Done, None, Some(summary))
                }
                Ok(RunOutcome::Interrupted) if record.cancel_requested() => {
                    ServerMetrics::bump(&self.metrics.cancelled);
                    (JobState::Cancelled, None, None)
                }
                Ok(RunOutcome::Interrupted) => {
                    ServerMetrics::bump(&self.metrics.interrupted);
                    (JobState::Interrupted, None, None)
                }
                Err(message) => {
                    ServerMetrics::bump(&self.metrics.failed);
                    (JobState::Failed, Some(message), None)
                }
            };
            record.set_state(state, error, summary);
            if let Err(e) = record.persist() {
                eprintln!("serve: {e}");
            }
            let mut inner = self.inner.lock().expect("inner");
            inner.running -= 1;
            self.cond.notify_all();
        }
    }
}

/// Rebuilds a [`JobRecord`] from a persisted `job.json`.
fn record_from_manifest(manifest: &Value, dir: PathBuf) -> Option<JobRecord> {
    let id = manifest.field_opt("id")?.as_str().ok()?.to_owned();
    let seq = manifest.field_opt("seq")?.as_u64().ok()?;
    let state = JobState::parse(manifest.field_opt("state")?.as_str().ok()?)?;
    let spec = manifest.field_opt("spec")?.clone();
    let record = JobRecord::new(id, seq, dir, spec, state);
    let error = manifest.field_opt("error").and_then(|v| v.as_str().ok()).map(str::to_owned);
    let summary = manifest.field_opt("summary").cloned();
    if error.is_some() || summary.is_some() {
        record.set_state(state, error, summary);
    }
    Some(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// A runner that "runs" by polling its cancel token: completes after
    /// `steps` polls, or parks if cancelled first.
    struct StubRunner {
        steps: u64,
        step_ms: u64,
        started: AtomicU64,
    }

    impl StubRunner {
        fn new(steps: u64, step_ms: u64) -> Self {
            StubRunner { steps, step_ms, started: AtomicU64::new(0) }
        }
    }

    impl JobRunner for StubRunner {
        fn validate(&self, spec: &Value) -> Result<Value, String> {
            if spec.field_opt("bad").is_some() {
                return Err("bad spec".into());
            }
            Ok(spec.clone())
        }

        fn run(&self, ctx: JobContext<'_>) -> Result<RunOutcome, String> {
            self.started.fetch_add(1, Ordering::SeqCst);
            if ctx.spec.field_opt("fail").is_some() {
                return Err("boom".into());
            }
            for _ in 0..self.steps {
                if ctx.cancel.is_cancelled() {
                    return Ok(RunOutcome::Interrupted);
                }
                std::thread::sleep(Duration::from_millis(self.step_ms));
            }
            Ok(RunOutcome::Completed { summary: Value::object(vec![("ok", Value::Bool(true))]) })
        }
    }

    fn spec() -> Value {
        Value::object(vec![("algorithm", Value::Str("stub".into()))])
    }

    fn wait_for(record: &JobRecord, state: JobState) {
        // Generous deadline: the full workspace suite runs real optimizer
        // e2e tests concurrently, and a starved worker thread can take
        // seconds to pick a stub job up.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while record.state() != state {
            if std::time::Instant::now() >= deadline {
                panic!("job {} never reached {state:?} (at {:?})", record.id, record.state());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn jobs_run_to_completion_and_persist() {
        let root = tempdir("complete");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = JobManager::start(
            root.clone(),
            4,
            2,
            Arc::new(StubRunner::new(1, 1)),
            Arc::clone(&metrics),
        )
        .expect("start");
        let record = manager.submit(&spec()).expect("submit");
        wait_for(&record, JobState::Done);
        assert!(record.summary().is_some());
        let on_disk = std::fs::read_to_string(record.dir.join("job.json")).expect("job.json");
        assert!(on_disk.contains("\"state\":\"done\""), "{on_disk}");
        manager.drain();
        assert_eq!(metrics.completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_refuses_submissions() {
        let root = tempdir("full");
        let manager = JobManager::start(
            root,
            1,
            1,
            Arc::new(StubRunner::new(10_000, 5)),
            Arc::new(ServerMetrics::new()),
        )
        .expect("start");
        // First job occupies the single worker; second fills the queue.
        let running = manager.submit(&spec()).expect("submit 1");
        wait_for(&running, JobState::Running);
        manager.submit(&spec()).expect("submit 2");
        let err = manager.submit(&spec()).expect_err("queue full");
        assert_eq!(err.status, 429);
        assert_eq!(err.code, "queue_full");
        manager.drain();
    }

    #[test]
    fn invalid_specs_are_rejected_before_queueing() {
        let root = tempdir("invalid");
        let manager = JobManager::start(
            root,
            4,
            1,
            Arc::new(StubRunner::new(1, 1)),
            Arc::new(ServerMetrics::new()),
        )
        .expect("start");
        let err =
            manager.submit(&Value::object(vec![("bad", Value::Bool(true))])).expect_err("invalid");
        assert_eq!(err.status, 400);
        assert!(manager.list().is_empty());
        manager.drain();
    }

    #[test]
    fn cancel_handles_every_lifecycle_stage() {
        let root = tempdir("cancel");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = JobManager::start(
            root,
            4,
            1,
            Arc::new(StubRunner::new(10_000, 5)),
            Arc::clone(&metrics),
        )
        .expect("start");
        let running = manager.submit(&spec()).expect("submit running");
        wait_for(&running, JobState::Running);
        let queued = manager.submit(&spec()).expect("submit queued");

        // Queued: removed from the queue immediately.
        manager.cancel(&queued.id).expect("cancel queued");
        assert_eq!(queued.state(), JobState::Cancelled);
        // Terminal: refused.
        let err = manager.cancel(&queued.id).expect_err("cancel terminal");
        assert_eq!(err.status, 409);
        // Running: parks at the next step boundary as cancelled.
        manager.cancel(&running.id).expect("cancel running");
        wait_for(&running, JobState::Cancelled);
        assert_eq!(metrics.cancelled.load(Ordering::Relaxed), 2);
        manager.drain();
    }

    #[test]
    fn drain_interrupts_running_and_leaves_queued_for_restart() {
        let root = tempdir("drain");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = JobManager::start(
            root.clone(),
            4,
            1,
            Arc::new(StubRunner::new(10_000, 5)),
            Arc::clone(&metrics),
        )
        .expect("start");
        let running = manager.submit(&spec()).expect("submit running");
        wait_for(&running, JobState::Running);
        let queued = manager.submit(&spec()).expect("submit queued");
        manager.drain();
        assert_eq!(running.state(), JobState::Interrupted);
        assert_eq!(queued.state(), JobState::Queued);
        let err = manager.submit(&spec()).expect_err("draining");
        assert_eq!(err.status, 503);

        // A fresh manager over the same root re-queues both and runs
        // them to completion.
        let metrics2 = Arc::new(ServerMetrics::new());
        let revived =
            JobManager::start(root, 4, 2, Arc::new(StubRunner::new(1, 1)), Arc::clone(&metrics2))
                .expect("restart");
        assert_eq!(metrics2.recovered.load(Ordering::Relaxed), 2);
        let jobs = revived.list();
        assert_eq!(jobs.len(), 2);
        for job in &jobs {
            wait_for(job, JobState::Done);
        }
        // New submissions continue the sequence instead of reusing ids.
        let fresh = revived.submit(&spec()).expect("submit after restart");
        assert!(fresh.seq > jobs.iter().map(|j| j.seq).max().unwrap());
        revived.drain();
    }

    #[test]
    fn failed_runs_record_their_error() {
        let root = tempdir("failed");
        let manager = JobManager::start(
            root,
            4,
            1,
            Arc::new(StubRunner::new(1, 1)),
            Arc::new(ServerMetrics::new()),
        )
        .expect("start");
        let record =
            manager.submit(&Value::object(vec![("fail", Value::Bool(true))])).expect("submit");
        wait_for(&record, JobState::Failed);
        assert_eq!(record.error().as_deref(), Some("boom"));
        manager.drain();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moela-serve-mgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }
}
