//! The job manager: a bounded submission queue, a fixed pool of run
//! workers, a watchdog, and the self-healing job lifecycle.
//!
//! All shared state lives in one `Mutex<Inner>` plus a `Condvar`; no
//! lock is ever held across a runner call or a disk write, and every
//! acquisition goes through the poison-recovering [`lock`] helper so a
//! panicking thread cannot cascade-fail the server. Backpressure is
//! strict: when the queue holds `queue_depth` jobs, submissions are
//! refused with 429 rather than buffered.
//!
//! Supervision (see [`SupervisePolicy`]):
//!
//! * Runner calls execute inside an unwind boundary; a panic is a
//!   transient failure, not a dead worker.
//! * Transient and disk failures re-queue the job with exponential
//!   backoff and deterministic jitter until `max_attempts` is spent,
//!   then quarantine it with its last error. The attempt counter is
//!   persisted in `job.json`, so a crash-loop is detected even across
//!   SIGKILL + restart.
//! * A watchdog thread releases due retries, enforces per-job
//!   `timeout_s` deadlines, marks heartbeat-silent jobs `stalled`
//!   (interrupting them at the next step boundary), and — if a stalled
//!   worker never responds — abandons it, quarantines the job, and
//!   respawns a replacement worker so the pool never shrinks.
//! * Disk-write failures degrade `/readyz` until the affected job
//!   settles cleanly again.
//!
//! A graceful drain stops workers from picking up new work, fires every
//! running job's interrupt so it parks at the next step boundary, and
//! waits for the pool (and the watchdog) to exit. Queued jobs stay
//! `queued` in their `job.json`; a restarted server rediscovers them
//! (and any `running` jobs a crash left behind) and re-queues them in
//! submission order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use moela_persist::{decode, Value};

use crate::error::ApiError;
use crate::job::{InterruptKind, JobRecord, JobState};
use crate::lock::lock;
use crate::metrics::ServerMetrics;
use crate::runner::{FailureKind, JobContext, JobRunner, RunError, RunOutcome};
use crate::supervise::SupervisePolicy;

/// Mutable manager state, guarded by [`JobManager::inner`].
#[derive(Debug, Default)]
struct Inner {
    /// Every known job, keyed by submission sequence.
    jobs: BTreeMap<u64, Arc<JobRecord>>,
    /// Sequences waiting for a worker, oldest first. Jobs in retry
    /// backoff are *not* here (and do not count against `queue_depth`);
    /// the watchdog moves them back when their delay elapses.
    queue: VecDeque<u64>,
    /// Jobs in retry backoff: sequence → when they become runnable.
    retry: BTreeMap<u64, Instant>,
    /// Jobs currently inside a runner call.
    running: usize,
    /// Next submission sequence to hand out.
    next_seq: u64,
    /// Set once by [`JobManager::drain`]; never cleared.
    draining: bool,
    /// Worker threads that have not exited yet.
    workers_alive: usize,
    /// Next worker index to hand out (indices are never reused).
    next_worker: usize,
    /// Which job each worker is currently driving.
    active: BTreeMap<usize, u64>,
    /// Workers the watchdog abandoned; if such a thread ever returns
    /// from its stuck runner call, it must exit without bookkeeping.
    zombies: BTreeSet<usize>,
    /// Jobs whose last failure was a disk write; readiness is degraded
    /// while this is non-empty.
    disk_suspect: BTreeSet<u64>,
}

/// Owns the queue, the run-worker pool, and the watchdog. Construct
/// with [`JobManager::start`]; shut down with [`JobManager::drain`].
pub struct JobManager {
    inner: Mutex<Inner>,
    cond: Condvar,
    runner: Arc<dyn JobRunner>,
    metrics: Arc<ServerMetrics>,
    run_root: PathBuf,
    queue_depth: usize,
    policy: SupervisePolicy,
    workers: Mutex<Vec<(usize, JoinHandle<()>)>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("run_root", &self.run_root)
            .field("queue_depth", &self.queue_depth)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl JobManager {
    /// Creates the manager: recovers jobs left behind in `run_root` by a
    /// previous process, then starts `workers` run threads and the
    /// watchdog.
    pub fn start(
        run_root: PathBuf,
        queue_depth: usize,
        workers: usize,
        policy: SupervisePolicy,
        runner: Arc<dyn JobRunner>,
        metrics: Arc<ServerMetrics>,
    ) -> std::io::Result<Arc<Self>> {
        std::fs::create_dir_all(&run_root)?;
        let manager = Arc::new(JobManager {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            runner,
            metrics,
            run_root,
            queue_depth: queue_depth.max(1),
            policy,
            workers: Mutex::new(Vec::new()),
            watchdog: Mutex::new(None),
        });
        manager.recover()?;
        for _ in 0..workers.max(1) {
            Self::spawn_worker(&manager);
        }
        let m = Arc::clone(&manager);
        *lock(&manager.watchdog) = Some(
            std::thread::Builder::new()
                .name("moela-watchdog".into())
                .spawn(move || m.watchdog_loop())
                .expect("spawn watchdog"),
        );
        Ok(manager)
    }

    /// Spawns one run worker with a fresh, never-reused index.
    fn spawn_worker(manager: &Arc<Self>) {
        let idx = {
            let mut inner = lock(&manager.inner);
            let idx = inner.next_worker;
            inner.next_worker += 1;
            inner.workers_alive += 1;
            idx
        };
        let m = Arc::clone(manager);
        let handle = std::thread::Builder::new()
            .name(format!("moela-run-{idx}"))
            .spawn(move || m.worker_loop(idx))
            .expect("spawn run worker");
        lock(&manager.workers).push((idx, handle));
    }

    /// Scans `run_root` for `job.json` manifests from a previous life.
    /// Unfinished jobs (`queued`, `running`, `stalled`, `interrupted`)
    /// are re-queued in submission order with their persisted attempt
    /// counters — unless a crash-loop already spent the attempt budget,
    /// in which case the job is quarantined on the spot. Finished jobs
    /// are kept as records so the API can still report them.
    fn recover(&self) -> std::io::Result<()> {
        let mut found: Vec<(u64, Arc<JobRecord>, JobState)> = Vec::new();
        for entry in std::fs::read_dir(&self.run_root)? {
            let dir = entry?.path();
            let manifest_path = dir.join("job.json");
            if !manifest_path.is_file() {
                continue;
            }
            let text = std::fs::read_to_string(&manifest_path)?;
            let Ok(manifest) = decode::from_str(&text) else {
                eprintln!("serve: skipping unreadable manifest {}", manifest_path.display());
                continue;
            };
            let Some(record) = record_from_manifest(&manifest, dir) else {
                eprintln!("serve: skipping malformed manifest {}", manifest_path.display());
                continue;
            };
            let state = record.state();
            found.push((record.seq, Arc::new(record), state));
        }
        found.sort_by_key(|(seq, _, _)| *seq);

        let mut dirty = Vec::new();
        {
            let mut inner = lock(&self.inner);
            for (seq, record, state) in found {
                inner.next_seq = inner.next_seq.max(seq + 1);
                if !state.is_terminal() {
                    // A job found `running`/`stalled` died mid-attempt;
                    // its counted attempt is spent. If the budget is
                    // gone, this is a crash-loop: quarantine instead of
                    // looping forever.
                    let crashed = matches!(state, JobState::Running | JobState::Stalled);
                    if crashed && record.attempts() >= self.policy.max_attempts {
                        ServerMetrics::bump(&self.metrics.quarantined);
                        record.set_state(
                            JobState::Quarantined,
                            Some(format!(
                                "crash loop: server died during attempt {} of {}",
                                record.attempts(),
                                self.policy.max_attempts
                            )),
                            None,
                        );
                    } else {
                        record.set_state(JobState::Queued, None, None);
                        inner.queue.push_back(seq);
                        ServerMetrics::bump(&self.metrics.recovered);
                    }
                    dirty.push(Arc::clone(&record));
                }
                inner.jobs.insert(seq, record);
            }
        }
        // Persist the recovered states outside the lock; a failure here
        // only means the next crash re-runs the same recovery.
        for record in dirty {
            self.persist(&record);
        }
        self.cond.notify_all();
        Ok(())
    }

    /// Validates and enqueues a job. Refuses with 503 while draining and
    /// 429 (plus `Retry-After`) when the queue is at capacity.
    pub fn submit(&self, spec: &Value) -> Result<Arc<JobRecord>, ApiError> {
        let spec =
            self.runner.validate(spec).map_err(|msg| ApiError::new(400, "invalid_spec", msg))?;
        let record = {
            let mut inner = lock(&self.inner);
            if inner.draining {
                return Err(ApiError::new(503, "draining", "server is draining"));
            }
            if inner.queue.len() >= self.queue_depth {
                ServerMetrics::bump(&self.metrics.rejected_full);
                return Err(ApiError::new(
                    429,
                    "queue_full",
                    format!("submission queue is full ({} jobs)", self.queue_depth),
                ));
            }
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let id = format!("job-{seq:06}");
            let dir = self.run_root.join(&id);
            let record = Arc::new(JobRecord::new(id, seq, dir, spec, JobState::Queued));
            inner.jobs.insert(seq, Arc::clone(&record));
            inner.queue.push_back(seq);
            record
        };
        ServerMetrics::bump(&self.metrics.submitted);
        self.persist(&record);
        self.cond.notify_one();
        Ok(record)
    }

    /// All jobs in submission order.
    pub fn list(&self) -> Vec<Arc<JobRecord>> {
        lock(&self.inner).jobs.values().cloned().collect()
    }

    /// Looks up a job by id.
    pub fn get(&self, id: &str) -> Option<Arc<JobRecord>> {
        lock(&self.inner).jobs.values().find(|r| r.id == id).cloned()
    }

    /// Cancels a job: a queued job (including one in retry backoff) is
    /// removed from the queue outright; a running or stalled job has
    /// its token fired and parks at the next step boundary. Terminal
    /// jobs refuse with 409.
    pub fn cancel(&self, id: &str) -> Result<Arc<JobRecord>, ApiError> {
        let record = self.get(id).ok_or_else(|| ApiError::not_found(format!("no job {id}")))?;
        let was_queued = {
            let mut inner = lock(&self.inner);
            match record.state() {
                JobState::Queued => {
                    inner.queue.retain(|&seq| seq != record.seq);
                    inner.retry.remove(&record.seq);
                    record.request_cancel();
                    record.set_state(JobState::Cancelled, None, None);
                    true
                }
                JobState::Running | JobState::Stalled => {
                    record.request_cancel();
                    false
                }
                state => {
                    return Err(ApiError::new(
                        409,
                        "not_cancellable",
                        format!("job {id} is already {}", state.name()),
                    ));
                }
            }
        };
        if was_queued {
            ServerMetrics::bump(&self.metrics.cancelled);
            self.persist(&record);
        }
        Ok(record)
    }

    /// Graceful drain: stop handing out work, park every running job at
    /// its next step boundary, and wait for the worker pool and the
    /// watchdog to exit. Queued jobs (including retry-pending ones) are
    /// left `queued` on disk for the next process.
    pub fn drain(&self) {
        let running: Vec<Arc<JobRecord>> = {
            let mut inner = lock(&self.inner);
            inner.draining = true;
            inner
                .jobs
                .values()
                .filter(|r| matches!(r.state(), JobState::Running | JobState::Stalled))
                .cloned()
                .collect()
        };
        for record in running {
            // A drain interrupt (not a client cancel): the worker
            // records the parked job as `interrupted`, not `cancelled`.
            record.interrupt(InterruptKind::Drain);
        }
        self.cond.notify_all();
        let mut inner = lock(&self.inner);
        while inner.running > 0 || inner.workers_alive > 0 {
            inner = self.cond.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        drop(inner);
        let handles = std::mem::take(&mut *lock(&self.workers));
        for (_, handle) in handles {
            let _ = handle.join();
        }
        if let Some(handle) = lock(&self.watchdog).take() {
            let _ = handle.join();
        }
    }

    /// One run worker: pop, run (inside an unwind boundary), settle the
    /// outcome through the supervision policy, repeat. Exits when a
    /// drain begins, or silently if the watchdog abandoned it.
    fn worker_loop(&self, idx: usize) {
        loop {
            let record = {
                let mut inner = lock(&self.inner);
                loop {
                    if inner.draining {
                        inner.workers_alive -= 1;
                        self.cond.notify_all();
                        return;
                    }
                    if let Some(seq) = inner.queue.pop_front() {
                        let Some(record) = inner.jobs.get(&seq).cloned() else { continue };
                        inner.running += 1;
                        inner.active.insert(idx, seq);
                        break record;
                    }
                    inner = self.cond.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
            };

            let Some((cancel, attempt)) = record.begin_attempt() else {
                // A client cancel raced the pickup; the fresh token was
                // never armed, so finalize without running.
                ServerMetrics::bump(&self.metrics.cancelled);
                record.set_state(JobState::Cancelled, None, None);
                self.persist(&record);
                self.finish_slot(idx);
                continue;
            };
            self.persist(&record);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.runner.run(JobContext {
                    id: &record.id,
                    dir: &record.dir,
                    spec: &record.spec,
                    cancel,
                    attempt,
                    heartbeat: &record.heartbeat,
                    live: &record.live,
                })
            }));
            *lock(&record.live) = None;

            // If the watchdog abandoned this worker while it was stuck,
            // the job has already been finalized and the slot's
            // bookkeeping transferred to a replacement: disappear.
            if lock(&self.inner).zombies.remove(&idx) {
                return;
            }

            let result = outcome.unwrap_or_else(|payload| {
                ServerMetrics::bump(&self.metrics.runner_panics);
                Err(RunError::transient(format!(
                    "runner panicked: {}",
                    panic_message(payload.as_ref())
                )))
            });
            self.settle(&record, result);
            self.finish_slot(idx);
        }
    }

    /// Releases a worker's run slot after an outcome was recorded.
    fn finish_slot(&self, idx: usize) {
        let mut inner = lock(&self.inner);
        inner.active.remove(&idx);
        inner.running -= 1;
        drop(inner);
        self.cond.notify_all();
    }

    /// Turns one execution outcome into a lifecycle transition.
    fn settle(&self, record: &Arc<JobRecord>, result: Result<RunOutcome, RunError>) {
        match result {
            Ok(RunOutcome::Completed { summary }) => {
                ServerMetrics::bump(&self.metrics.completed);
                record.set_state(JobState::Done, None, Some(summary));
                if self.persist(record) {
                    self.mark_disk(record.seq, false);
                }
            }
            Ok(RunOutcome::Interrupted) => match record.interrupt_kind() {
                Some(InterruptKind::Cancel) => {
                    ServerMetrics::bump(&self.metrics.cancelled);
                    record.set_state(JobState::Cancelled, None, None);
                    self.persist(record);
                }
                Some(InterruptKind::Deadline) => {
                    ServerMetrics::bump(&self.metrics.deadline_exceeded);
                    let timeout = record.timeout.map_or(0, |t| t.as_secs());
                    record.set_state(
                        JobState::DeadlineExceeded,
                        Some(format!("deadline exceeded: timeout_s={timeout} elapsed")),
                        None,
                    );
                    self.persist(record);
                }
                Some(InterruptKind::Stall) => {
                    self.retry_or_quarantine(
                        record,
                        format!(
                            "stalled: no step heartbeat for at least {}s",
                            self.policy.stall_timeout.as_secs()
                        ),
                    );
                }
                Some(InterruptKind::Drain) | None => {
                    ServerMetrics::bump(&self.metrics.interrupted);
                    record.set_state(JobState::Interrupted, None, None);
                    self.persist(record);
                }
            },
            Err(e) if e.is_retryable() => {
                if e.kind == FailureKind::Disk {
                    self.metrics.count_disk_failure();
                    self.mark_disk(record.seq, true);
                }
                self.retry_or_quarantine(record, e.message);
            }
            Err(e) => {
                ServerMetrics::bump(&self.metrics.failed);
                record.set_state(JobState::Failed, Some(e.message), None);
                self.persist(record);
            }
        }
    }

    /// Schedules a transient failure for retry with backoff, or
    /// quarantines the job when its attempt budget is spent.
    fn retry_or_quarantine(&self, record: &Arc<JobRecord>, error: String) {
        let attempts = record.attempts();
        if attempts >= self.policy.max_attempts {
            ServerMetrics::bump(&self.metrics.quarantined);
            record.set_state(
                JobState::Quarantined,
                Some(format!("quarantined after {attempts} attempts; last error: {error}")),
                None,
            );
            if self.persist(record) {
                self.mark_disk(record.seq, false);
            }
            return;
        }
        ServerMetrics::bump(&self.metrics.retried);
        let delay = self.policy.backoff(&record.id, attempts);
        record.schedule_retry(error);
        self.persist(record);
        let mut inner = lock(&self.inner);
        if !inner.draining {
            inner.retry.insert(record.seq, Instant::now() + delay);
        }
        // While draining, the job stays `queued` on disk and the next
        // server life retries it immediately.
    }

    /// The watchdog: releases due retries, enforces deadlines, detects
    /// stalls, abandons unresponsive workers, and respawns dead ones.
    /// Keeps running during a drain (a stuck worker must still be
    /// abandonable or the drain would hang), exiting once the pool is
    /// gone.
    fn watchdog_loop(self: &Arc<Self>) {
        loop {
            std::thread::sleep(self.policy.tick);
            let (draining, idle) = {
                let inner = lock(&self.inner);
                (inner.draining, inner.running == 0 && inner.workers_alive == 0)
            };
            if draining && idle {
                return;
            }
            self.supervise_tick(draining);
        }
    }

    /// One watchdog scan.
    fn supervise_tick(self: &Arc<Self>, draining: bool) {
        let now = Instant::now();
        if !draining {
            self.release_due_retries(now);
            self.reap_dead_workers();
        }

        let live: Vec<Arc<JobRecord>> = {
            let inner = lock(&self.inner);
            inner
                .jobs
                .values()
                .filter(|r| matches!(r.state(), JobState::Running | JobState::Stalled))
                .cloned()
                .collect()
        };
        for record in live {
            match record.state() {
                JobState::Running => {
                    if let (Some(timeout), Some(elapsed)) = (record.timeout, record.running_for()) {
                        if elapsed > timeout && record.interrupt(InterruptKind::Deadline) {
                            continue;
                        }
                    }
                    if record.heartbeat.idle() > self.policy.stall_timeout
                        && record.interrupt_kind().is_none()
                        && record.interrupt(InterruptKind::Stall)
                    {
                        ServerMetrics::bump(&self.metrics.stalled);
                        record.set_state(JobState::Stalled, None, None);
                        self.persist(&record);
                    }
                }
                JobState::Stalled => {
                    let limit = self.policy.stall_timeout + self.policy.stall_grace;
                    if record.heartbeat.idle() > limit {
                        self.abandon(&record);
                    }
                }
                _ => {}
            }
        }
    }

    /// Moves jobs whose retry backoff has elapsed back into the queue.
    fn release_due_retries(&self, now: Instant) {
        let released = {
            let mut inner = lock(&self.inner);
            let due: Vec<u64> =
                inner.retry.iter().filter(|(_, at)| **at <= now).map(|(seq, _)| *seq).collect();
            for seq in &due {
                inner.retry.remove(seq);
                inner.queue.push_back(*seq);
            }
            !due.is_empty()
        };
        if released {
            self.cond.notify_all();
        }
    }

    /// Joins workers whose threads died outside the unwind boundary,
    /// retries the job they were driving, and respawns replacements.
    fn reap_dead_workers(self: &Arc<Self>) {
        let mut respawn = 0usize;
        let mut orphans: Vec<Arc<JobRecord>> = Vec::new();
        {
            let mut workers = lock(&self.workers);
            let mut inner = lock(&self.inner);
            if inner.draining {
                return;
            }
            let mut i = 0;
            while i < workers.len() {
                if !workers[i].1.is_finished() || inner.zombies.contains(&workers[i].0) {
                    i += 1;
                    continue;
                }
                let (idx, handle) = workers.remove(i);
                let _ = handle.join();
                inner.workers_alive = inner.workers_alive.saturating_sub(1);
                if let Some(seq) = inner.active.remove(&idx) {
                    inner.running = inner.running.saturating_sub(1);
                    if let Some(record) = inner.jobs.get(&seq) {
                        orphans.push(Arc::clone(record));
                    }
                }
                respawn += 1;
            }
        }
        for record in orphans {
            self.retry_or_quarantine(&record, "worker thread died unexpectedly".into());
        }
        for _ in 0..respawn {
            ServerMetrics::bump(&self.metrics.worker_respawns);
            Self::spawn_worker(self);
        }
        if respawn > 0 {
            self.cond.notify_all();
        }
    }

    /// Gives up on a worker that ignored its stall interrupt: the job is
    /// quarantined (its directory may still be written to by the stuck
    /// thread, so retrying it is not safe), the worker becomes a zombie
    /// whose eventual return is discarded, and a replacement keeps the
    /// pool at full strength.
    fn abandon(self: &Arc<Self>, record: &Arc<JobRecord>) {
        record.mark_abandoned();
        let (idx, respawn) = {
            let mut inner = lock(&self.inner);
            let Some(idx) =
                inner.active.iter().find(|(_, seq)| **seq == record.seq).map(|(i, _)| *i)
            else {
                return; // the worker settled after all; nothing to do
            };
            inner.active.remove(&idx);
            inner.zombies.insert(idx);
            inner.running = inner.running.saturating_sub(1);
            inner.workers_alive = inner.workers_alive.saturating_sub(1);
            (idx, !inner.draining)
        };
        // Detach the zombie's handle so a drain never joins a stuck
        // thread (dropping a JoinHandle detaches it).
        lock(&self.workers).retain(|(i, _)| *i != idx);
        ServerMetrics::bump(&self.metrics.quarantined);
        let limit = self.policy.stall_timeout + self.policy.stall_grace;
        record.set_state(
            JobState::Quarantined,
            Some(format!(
                "worker unresponsive: no step heartbeat for over {}s; worker abandoned",
                limit.as_secs()
            )),
            None,
        );
        self.persist(record);
        self.cond.notify_all();
        if respawn {
            ServerMetrics::bump(&self.metrics.worker_respawns);
            Self::spawn_worker(self);
        }
    }

    /// Writes a record's `job.json`, feeding failures into the disk
    /// health tracking. Returns whether the write succeeded.
    fn persist(&self, record: &JobRecord) -> bool {
        match record.persist() {
            Ok(()) => true,
            Err(e) => {
                eprintln!("serve: {e}");
                self.metrics.count_disk_failure();
                self.mark_disk(record.seq, true);
                false
            }
        }
    }

    /// Adds or removes a job from the disk-suspect set and refreshes
    /// the readiness latch.
    fn mark_disk(&self, seq: u64, failed: bool) {
        let degraded = {
            let mut inner = lock(&self.inner);
            if failed {
                inner.disk_suspect.insert(seq);
            } else {
                inner.disk_suspect.remove(&seq);
            }
            !inner.disk_suspect.is_empty()
        };
        self.metrics.set_disk_degraded(degraded);
    }
}

/// Renders a panic payload for the job's error message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Rebuilds a [`JobRecord`] from a persisted `job.json`.
fn record_from_manifest(manifest: &Value, dir: PathBuf) -> Option<JobRecord> {
    let id = manifest.field_opt("id")?.as_str().ok()?.to_owned();
    let seq = manifest.field_opt("seq")?.as_u64().ok()?;
    let state = JobState::parse(manifest.field_opt("state")?.as_str().ok()?)?;
    let spec = manifest.field_opt("spec")?.clone();
    let record = JobRecord::new(id, seq, dir, spec, state);
    record.restore_from_manifest(manifest);
    let error = manifest.field_opt("error").and_then(|v| v.as_str().ok()).map(str::to_owned);
    let summary = manifest.field_opt("summary").cloned();
    if error.is_some() || summary.is_some() {
        record.set_state(state, error, summary);
    }
    Some(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// A runner that "runs" by polling its cancel token: completes after
    /// `steps` polls, or parks if cancelled first. Spec keys steer
    /// failure modes (see `run`).
    struct StubRunner {
        steps: u64,
        step_ms: u64,
        started: AtomicU64,
    }

    impl StubRunner {
        fn new(steps: u64, step_ms: u64) -> Self {
            StubRunner { steps, step_ms, started: AtomicU64::new(0) }
        }
    }

    impl JobRunner for StubRunner {
        fn validate(&self, spec: &Value) -> Result<Value, String> {
            if spec.field_opt("bad").is_some() {
                return Err("bad spec".into());
            }
            Ok(spec.clone())
        }

        fn run(&self, ctx: JobContext<'_>) -> Result<RunOutcome, RunError> {
            self.started.fetch_add(1, Ordering::SeqCst);
            // `<mode>_until: n` in the spec applies the mode to attempts
            // 1..n; a job without the key never enters that mode.
            let until =
                |key: &str| ctx.spec.field_opt(key).and_then(|v| v.as_u64().ok()).unwrap_or(0);
            if ctx.spec.field_opt("fail").is_some() {
                return Err(RunError::permanent("boom"));
            }
            if ctx.attempt < until("flaky_until") {
                return Err(RunError::transient(format!("flaky on attempt {}", ctx.attempt)));
            }
            if ctx.attempt < until("disk_until") {
                return Err(RunError::disk(format!("ENOSPC on attempt {}", ctx.attempt)));
            }
            if ctx.attempt < until("panic_until") {
                panic!("eval exploded on attempt {}", ctx.attempt);
            }
            // `mute` attempts never beat the heartbeat; `deaf` attempts
            // additionally ignore the cancel token. `steps` in the spec
            // overrides the runner-wide step count per job.
            let mute = ctx.attempt < until("mute_until");
            let deaf = ctx.attempt < until("deaf_until");
            let steps =
                ctx.spec.field_opt("steps").and_then(|v| v.as_u64().ok()).unwrap_or(self.steps);
            for _ in 0..steps {
                if !mute {
                    ctx.heartbeat.beat();
                }
                if !deaf && ctx.cancel.is_cancelled() {
                    return Ok(RunOutcome::Interrupted);
                }
                std::thread::sleep(Duration::from_millis(self.step_ms));
            }
            Ok(RunOutcome::Completed { summary: Value::object(vec![("ok", Value::Bool(true))]) })
        }
    }

    fn spec() -> Value {
        Value::object(vec![("algorithm", Value::Str("stub".into()))])
    }

    fn spec_with(extra: Vec<(&str, Value)>) -> Value {
        let mut fields = vec![("algorithm", Value::Str("stub".into()))];
        fields.extend(extra);
        Value::object(fields)
    }

    /// A fast supervision policy for tests: tight tick, short backoff,
    /// stall detection effectively off unless a test opts in.
    fn fast_policy() -> SupervisePolicy {
        SupervisePolicy {
            max_attempts: 3,
            retry_base: Duration::from_millis(10),
            retry_cap: Duration::from_millis(100),
            stall_timeout: Duration::from_secs(3600),
            stall_grace: Duration::from_secs(3600),
            tick: Duration::from_millis(5),
        }
    }

    fn start(
        root: PathBuf,
        depth: usize,
        workers: usize,
        policy: SupervisePolicy,
        runner: Arc<dyn JobRunner>,
        metrics: &Arc<ServerMetrics>,
    ) -> Arc<JobManager> {
        JobManager::start(root, depth, workers, policy, runner, Arc::clone(metrics))
            .expect("start manager")
    }

    /// Polls `job.json` until it contains `needle`: the in-memory state
    /// flips before the manifest write lands, so disk assertions must
    /// wait on the file itself.
    fn wait_for_on_disk(record: &JobRecord, needle: &str) -> String {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let text = std::fs::read_to_string(record.dir.join("job.json")).unwrap_or_default();
            if text.contains(needle) {
                return text;
            }
            if std::time::Instant::now() >= deadline {
                panic!("job.json for {} never contained {needle}: {text}", record.id);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn wait_for(record: &JobRecord, state: JobState) {
        // Generous deadline: the full workspace suite runs real optimizer
        // e2e tests concurrently, and a starved worker thread can take
        // seconds to pick a stub job up.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while record.state() != state {
            if std::time::Instant::now() >= deadline {
                panic!("job {} never reached {state:?} (at {:?})", record.id, record.state());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn jobs_run_to_completion_and_persist() {
        let root = tempdir("complete");
        let metrics = Arc::new(ServerMetrics::new());
        let manager =
            start(root.clone(), 4, 2, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics);
        let record = manager.submit(&spec()).expect("submit");
        wait_for(&record, JobState::Done);
        assert!(record.summary().is_some());
        assert_eq!(record.attempts(), 1);
        let on_disk = wait_for_on_disk(&record, "\"state\":\"done\"");
        assert!(on_disk.contains("\"attempts\":1"), "{on_disk}");
        manager.drain();
        assert_eq!(metrics.completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_refuses_submissions() {
        let root = tempdir("full");
        let metrics = Arc::new(ServerMetrics::new());
        let manager =
            start(root, 1, 1, fast_policy(), Arc::new(StubRunner::new(10_000, 5)), &metrics);
        // First job occupies the single worker; second fills the queue.
        let running = manager.submit(&spec()).expect("submit 1");
        wait_for(&running, JobState::Running);
        manager.submit(&spec()).expect("submit 2");
        let err = manager.submit(&spec()).expect_err("queue full");
        assert_eq!(err.status, 429);
        assert_eq!(err.code, "queue_full");
        manager.drain();
    }

    #[test]
    fn invalid_specs_are_rejected_before_queueing() {
        let root = tempdir("invalid");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics);
        let err =
            manager.submit(&Value::object(vec![("bad", Value::Bool(true))])).expect_err("invalid");
        assert_eq!(err.status, 400);
        assert!(manager.list().is_empty());
        manager.drain();
    }

    #[test]
    fn cancel_handles_every_lifecycle_stage() {
        let root = tempdir("cancel");
        let metrics = Arc::new(ServerMetrics::new());
        let manager =
            start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(10_000, 5)), &metrics);
        let running = manager.submit(&spec()).expect("submit running");
        wait_for(&running, JobState::Running);
        let queued = manager.submit(&spec()).expect("submit queued");

        // Queued: removed from the queue immediately.
        manager.cancel(&queued.id).expect("cancel queued");
        assert_eq!(queued.state(), JobState::Cancelled);
        // Terminal: refused.
        let err = manager.cancel(&queued.id).expect_err("cancel terminal");
        assert_eq!(err.status, 409);
        // Running: parks at the next step boundary as cancelled.
        manager.cancel(&running.id).expect("cancel running");
        wait_for(&running, JobState::Cancelled);
        assert_eq!(metrics.cancelled.load(Ordering::Relaxed), 2);
        manager.drain();
    }

    #[test]
    fn drain_interrupts_running_and_leaves_queued_for_restart() {
        let root = tempdir("drain");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = start(
            root.clone(),
            4,
            1,
            fast_policy(),
            Arc::new(StubRunner::new(10_000, 5)),
            &metrics,
        );
        let running = manager.submit(&spec()).expect("submit running");
        wait_for(&running, JobState::Running);
        let queued = manager.submit(&spec()).expect("submit queued");
        manager.drain();
        assert_eq!(running.state(), JobState::Interrupted);
        assert_eq!(queued.state(), JobState::Queued);
        let err = manager.submit(&spec()).expect_err("draining");
        assert_eq!(err.status, 503);

        // A fresh manager over the same root re-queues both and runs
        // them to completion.
        let metrics2 = Arc::new(ServerMetrics::new());
        let revived = start(root, 4, 2, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics2);
        assert_eq!(metrics2.recovered.load(Ordering::Relaxed), 2);
        let jobs = revived.list();
        assert_eq!(jobs.len(), 2);
        for job in &jobs {
            wait_for(job, JobState::Done);
        }
        // New submissions continue the sequence instead of reusing ids.
        let fresh = revived.submit(&spec()).expect("submit after restart");
        assert!(fresh.seq > jobs.iter().map(|j| j.seq).max().unwrap());
        revived.drain();
    }

    #[test]
    fn permanent_failures_record_their_error_without_retrying() {
        let root = tempdir("failed");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics);
        let record =
            manager.submit(&Value::object(vec![("fail", Value::Bool(true))])).expect("submit");
        wait_for(&record, JobState::Failed);
        assert_eq!(record.error().as_deref(), Some("boom"));
        assert_eq!(record.attempts(), 1, "permanent failures must not retry");
        assert_eq!(metrics.retried.load(Ordering::Relaxed), 0);
        manager.drain();
    }

    #[test]
    fn transient_failures_retry_with_backoff_until_success() {
        let root = tempdir("retry");
        let metrics = Arc::new(ServerMetrics::new());
        let runner = Arc::new(StubRunner::new(1, 1));
        let manager = start(root, 4, 1, fast_policy(), Arc::clone(&runner) as _, &metrics);
        let record =
            manager.submit(&spec_with(vec![("flaky_until", Value::U64(3))])).expect("submit");
        wait_for(&record, JobState::Done);
        assert_eq!(record.attempts(), 3, "two transient failures, then success");
        assert_eq!(metrics.retried.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.quarantined.load(Ordering::Relaxed), 0);
        // The history records each failed attempt with its error.
        let history = record.history();
        let errors: Vec<_> = history.iter().filter(|h| h.error.is_some()).collect();
        assert!(errors.len() >= 2, "history must show the failed attempts: {history:?}");
        manager.drain();
    }

    #[test]
    fn exhausted_attempt_budgets_quarantine_with_history() {
        let root = tempdir("quarantine");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics);
        let record =
            manager.submit(&spec_with(vec![("flaky_until", Value::U64(100))])).expect("submit");
        wait_for(&record, JobState::Quarantined);
        assert_eq!(record.attempts(), 3, "the whole budget is spent");
        assert_eq!(metrics.retried.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.quarantined.load(Ordering::Relaxed), 1);
        let error = record.error().expect("quarantine records the last error");
        assert!(error.contains("after 3 attempts"), "{error}");
        assert!(error.contains("flaky on attempt 3"), "{error}");
        let on_disk = wait_for_on_disk(&record, "\"state\":\"quarantined\"");
        assert!(on_disk.contains("\"attempts\":3"), "{on_disk}");
        assert!(on_disk.contains("\"history\":["), "{on_disk}");
        manager.drain();
    }

    #[test]
    fn crash_loops_are_quarantined_at_recovery() {
        let root = tempdir("crashloop");
        // Forge the aftermath of a SIGKILL mid-attempt-3: a job left
        // `running` with the whole attempt budget spent.
        let dir = root.join("job-000000");
        std::fs::create_dir_all(&dir).expect("job dir");
        let record = JobRecord::new("job-000000".into(), 0, dir.clone(), spec(), JobState::Running);
        record.restore(3, Vec::new());
        record.persist().expect("forge job.json");

        let metrics = Arc::new(ServerMetrics::new());
        let manager = start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics);
        let revived = manager.get("job-000000").expect("recovered");
        assert_eq!(revived.state(), JobState::Quarantined);
        assert_eq!(revived.attempts(), 3);
        assert!(revived.error().unwrap().contains("crash loop"), "{:?}", revived.error());
        assert_eq!(metrics.quarantined.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.recovered.load(Ordering::Relaxed), 0);
        manager.drain();
    }

    #[test]
    fn runner_panics_are_contained_and_retried() {
        let root = tempdir("panic");
        let metrics = Arc::new(ServerMetrics::new());
        let manager = start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(1, 1)), &metrics);
        let record =
            manager.submit(&spec_with(vec![("panic_until", Value::U64(2))])).expect("submit");
        wait_for(&record, JobState::Done);
        assert_eq!(record.attempts(), 2);
        assert_eq!(metrics.runner_panics.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.retried.load(Ordering::Relaxed), 1);
        // The panic message made it into the job history.
        let history = record.history();
        assert!(
            history.iter().any(|h| {
                h.error.as_deref().is_some_and(|e| e.contains("eval exploded on attempt 1"))
            }),
            "{history:?}"
        );
        // The worker survived the panic: the server keeps serving.
        let again = manager.submit(&spec()).expect("submit after panic");
        wait_for(&again, JobState::Done);
        manager.drain();
    }

    #[test]
    fn deadlines_park_the_job_as_deadline_exceeded() {
        let root = tempdir("deadline");
        let metrics = Arc::new(ServerMetrics::new());
        let manager =
            start(root, 4, 1, fast_policy(), Arc::new(StubRunner::new(10_000, 5)), &metrics);
        let record =
            manager.submit(&spec_with(vec![("timeout_s", Value::U64(1))])).expect("submit");
        wait_for(&record, JobState::DeadlineExceeded);
        assert_eq!(metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
        assert!(record.error().unwrap().contains("deadline exceeded"), "{:?}", record.error());
        assert!(record.state().is_terminal());
        manager.drain();
    }

    #[test]
    fn stalled_jobs_are_interrupted_and_retried() {
        let root = tempdir("stall");
        let metrics = Arc::new(ServerMetrics::new());
        let mut policy = fast_policy();
        policy.stall_timeout = Duration::from_millis(60);
        let manager = start(root, 4, 1, policy, Arc::new(StubRunner::new(100, 5)), &metrics);
        // Attempt 1 never beats the heartbeat (but still honors the
        // cancel token); attempt 2 behaves and completes.
        let record =
            manager.submit(&spec_with(vec![("mute_until", Value::U64(2))])).expect("submit");
        wait_for(&record, JobState::Done);
        assert_eq!(record.attempts(), 2);
        assert!(metrics.stalled.load(Ordering::Relaxed) >= 1);
        assert!(metrics.retried.load(Ordering::Relaxed) >= 1);
        let history = record.history();
        assert!(
            history.iter().any(|h| h.state == JobState::Stalled),
            "stall must be visible in history: {history:?}"
        );
        manager.drain();
    }

    #[test]
    fn unresponsive_workers_are_abandoned_and_replaced() {
        let root = tempdir("abandon");
        let metrics = Arc::new(ServerMetrics::new());
        let mut policy = fast_policy();
        // A wide grace window so only the genuinely deaf worker (~3s
        // without a beat) is ever abandoned — a loaded test machine can
        // stretch an innocent job's 50ms step well past a tight window.
        policy.stall_timeout = Duration::from_millis(50);
        policy.stall_grace = Duration::from_millis(700);
        // ~60 ticks of 50ms: the stuck attempt ignores cancel for ~3s,
        // far beyond stall_timeout + stall_grace.
        let manager = start(root, 4, 1, policy, Arc::new(StubRunner::new(60, 50)), &metrics);
        let stuck = manager
            .submit(&spec_with(vec![("mute_until", Value::U64(2)), ("deaf_until", Value::U64(2))]))
            .expect("submit stuck");
        wait_for(&stuck, JobState::Quarantined);
        assert!(stuck.error().unwrap().contains("worker unresponsive"), "{:?}", stuck.error());
        // The respawn lands just after the quarantine transition the
        // wait above observed; poll instead of racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while metrics.worker_respawns.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "worker never respawned");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The replacement worker keeps the pool serving. One short step
        // so the sibling settles before the tight stall policy can
        // misread its heartbeat.
        let next =
            manager.submit(&spec_with(vec![("steps", Value::U64(1))])).expect("submit after");
        wait_for(&next, JobState::Done);
        manager.drain();
    }

    #[test]
    fn disk_failures_degrade_readiness_until_a_clean_settle() {
        let root = tempdir("disk");
        let metrics = Arc::new(ServerMetrics::new());
        let mut policy = fast_policy();
        // A long backoff keeps the degraded window wide open, so the
        // poll below cannot miss it even on a loaded machine.
        policy.retry_base = Duration::from_millis(800);
        policy.retry_cap = Duration::from_millis(1200);
        let manager = start(root, 4, 1, policy, Arc::new(StubRunner::new(1, 1)), &metrics);
        let record =
            manager.submit(&spec_with(vec![("disk_until", Value::U64(2))])).expect("submit");
        // While the job waits out its backoff after the disk failure,
        // readiness is degraded.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !metrics.is_disk_degraded() {
            assert!(std::time::Instant::now() < deadline, "degradation never latched");
            std::thread::sleep(Duration::from_millis(2));
        }
        wait_for(&record, JobState::Done);
        // The latch clears right after the settle's manifest write; give
        // that write a moment instead of racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while metrics.is_disk_degraded() {
            assert!(std::time::Instant::now() < deadline, "clean settle must restore readiness");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(metrics.disk_write_failures.load(Ordering::Relaxed), 1);
        assert_eq!(record.attempts(), 2);
        manager.drain();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moela-serve-mgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }
}
