//! Supervision policy: retry backoff, heartbeats, and the knobs the
//! watchdog runs on.
//!
//! Everything here is deterministic on purpose. The backoff jitter is
//! derived from the job id and the attempt number — not a clock, not a
//! process-global RNG — so the exact retry schedule of any job can be
//! reproduced (and pinned in tests) from its `job.json` alone. Two jobs
//! retrying after the same fault still spread out, because their ids
//! hash apart.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tunables for the self-healing job lifecycle. One policy is shared by
/// the manager, its workers, and the watchdog thread.
#[derive(Debug, Clone)]
pub struct SupervisePolicy {
    /// Attempts a job may consume before it is quarantined. An attempt
    /// is counted when a worker picks the job up, so crash-loops that
    /// never reach a failure path still burn attempts.
    pub max_attempts: u64,
    /// First retry delay; doubles every further attempt.
    pub retry_base: Duration,
    /// Ceiling on the exponential part of the retry delay.
    pub retry_cap: Duration,
    /// A running job whose heartbeat is older than this is `stalled`.
    pub stall_timeout: Duration,
    /// How long after stalling (still without a heartbeat) the watchdog
    /// abandons the worker and quarantines the job.
    pub stall_grace: Duration,
    /// Watchdog scan cadence.
    pub tick: Duration,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            max_attempts: 3,
            retry_base: Duration::from_secs(1),
            retry_cap: Duration::from_secs(60),
            stall_timeout: Duration::from_secs(30),
            stall_grace: Duration::from_secs(60),
            tick: Duration::from_millis(50),
        }
    }
}

impl SupervisePolicy {
    /// The delay before retrying `job_id` after its `attempt`-th failed
    /// attempt (1-based). See [`backoff_delay`].
    pub fn backoff(&self, job_id: &str, attempt: u64) -> Duration {
        backoff_delay(self.retry_base, self.retry_cap, job_id, attempt)
    }
}

/// Exponential backoff with deterministic jitter: `base · 2^(n−1)`
/// capped at `cap`, plus up to 25% jitter drawn from a hash of the job
/// id and the attempt number. No clocks, no global RNG — the schedule
/// is a pure function of its arguments.
pub fn backoff_delay(base: Duration, cap: Duration, job_id: &str, attempt: u64) -> Duration {
    let attempt = attempt.max(1);
    let base_ms = (base.as_millis() as u64).max(1);
    let cap_ms = (cap.as_millis() as u64).max(base_ms);
    let shift = (attempt - 1).min(16) as u32;
    let exp_ms = base_ms.saturating_mul(1u64 << shift).min(cap_ms);
    let span = exp_ms / 4;
    let jitter = if span == 0 { 0 } else { splitmix64(fnv1a(job_id) ^ attempt) % (span + 1) };
    Duration::from_millis(exp_ms + jitter)
}

/// FNV-1a over the job id: stable, dependency-free, good enough to
/// decorrelate sibling jobs' schedules.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: turns the structured fnv⊕attempt input into
/// well-mixed jitter bits.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A step-boundary heartbeat: the engine loop beats it once per
/// optimizer step, the watchdog reads how long ago the last beat was.
/// Stored as milliseconds since the heartbeat's own epoch so readers
/// and writers never share more than one atomic.
#[derive(Debug)]
pub struct Heartbeat {
    epoch: Instant,
    last_ms: AtomicU64,
}

impl Default for Heartbeat {
    fn default() -> Self {
        Self::new()
    }
}

impl Heartbeat {
    /// A fresh heartbeat, considered beaten "now".
    pub fn new() -> Self {
        Heartbeat { epoch: Instant::now(), last_ms: AtomicU64::new(0) }
    }

    /// Records a beat.
    pub fn beat(&self) {
        self.last_ms.store(self.epoch.elapsed().as_millis() as u64, Ordering::Release);
    }

    /// Time since the last beat.
    pub fn idle(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Acquire)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_doubles_under_the_cap() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        for attempt in 1..=8 {
            let a = backoff_delay(base, cap, "job-000007", attempt);
            let b = backoff_delay(base, cap, "job-000007", attempt);
            assert_eq!(a, b, "attempt {attempt} must be reproducible");
            let exp = (100u64 << (attempt - 1)).min(10_000);
            let ms = a.as_millis() as u64;
            assert!(ms >= exp, "attempt {attempt}: {ms} < exponential floor {exp}");
            assert!(ms <= exp + exp / 4, "attempt {attempt}: {ms} above jitter ceiling");
        }
    }

    #[test]
    fn backoff_sequence_is_pinned_for_a_known_job() {
        // The exact schedule for job-000001 at base 100ms / cap 10s.
        // These values are the contract: change the hash, the mixer, or
        // the jitter span and this test must be updated deliberately.
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        let schedule: Vec<u64> =
            (1..=6).map(|n| backoff_delay(base, cap, "job-000001", n).as_millis() as u64).collect();
        assert_eq!(schedule, vec![119, 208, 477, 952, 1918, 3438]);
    }

    #[test]
    fn jobs_with_different_ids_jitter_apart() {
        let base = Duration::from_millis(1000);
        let cap = Duration::from_secs(60);
        let a = backoff_delay(base, cap, "job-000001", 1);
        let b = backoff_delay(base, cap, "job-000002", 1);
        assert_ne!(a, b, "sibling jobs must not retry in lockstep");
    }

    #[test]
    fn backoff_tolerates_degenerate_inputs() {
        // Zero base, huge attempt, cap below base: no panic, no zero
        // stampede, exponential part saturates at the cap.
        let d = backoff_delay(Duration::ZERO, Duration::ZERO, "j", 1);
        assert!(d >= Duration::from_millis(1));
        let d = backoff_delay(Duration::from_secs(5), Duration::from_secs(1), "j", 63);
        assert!(d <= Duration::from_secs(5) + Duration::from_millis(1250));
    }

    #[test]
    fn heartbeat_idle_grows_until_the_next_beat() {
        let hb = Heartbeat::new();
        std::thread::sleep(Duration::from_millis(30));
        assert!(hb.idle() >= Duration::from_millis(20));
        hb.beat();
        assert!(hb.idle() < Duration::from_millis(20));
    }
}
