//! A minimal, defensive HTTP/1.1 layer over `std::net` — no crates.io.
//!
//! Scope is deliberately narrow: one request per connection
//! (`Connection: close` on every response), bodies delimited by
//! `Content-Length`, and hard caps everywhere a client could make the
//! server buffer without bound. Slow or abusive clients are cut off by
//! the socket read/write timeouts the server installs before parsing.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

use moela_persist::{encode, Value};

/// Upper bound on the request line plus all headers, in bytes.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a single header line, in bytes.
const MAX_LINE_BYTES: usize = 4 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/jobs/job-000001`).
    pub path: String,
    /// The raw query string without the `?` (empty when absent).
    pub query: String,
    /// Lowercased header names with their raw values.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The first `key=value` query parameter with this name (no
    /// percent-decoding — this server's parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed; each maps to one response status.
#[derive(Debug)]
pub enum HttpError {
    /// The client sent nothing or stalled past the read timeout (408,
    /// or silently dropped when not a single byte arrived).
    Timeout,
    /// The peer closed before a full request arrived.
    Disconnected,
    /// The request violates the framing rules (400).
    Malformed(String),
    /// The head or body exceeds the configured cap (413).
    TooLarge(String),
}

/// Reads one HTTP/1.1 request from `stream`. The caller must have set a
/// read timeout on the socket; a stalled client surfaces as
/// [`HttpError::Timeout`]. Generic over the byte source so the parser
/// can be exercised against in-memory input (see the proptest harness);
/// the server always hands it a `TcpStream`.
pub fn read_request<R: Read>(stream: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;

    let request_line = read_line(&mut reader, &mut head_bytes)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default().to_owned();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad request line {request_line:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad request target {target:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.clone(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "request body of {content_length} bytes exceeds the {max_body}-byte cap"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(io_to_http)?;
    }
    Ok(Request { method, path, query, headers, body })
}

/// Reads one CRLF- (or LF-) terminated line, charging it against the
/// per-request head budget.
fn read_line<R: Read>(
    reader: &mut BufReader<&mut R>,
    head_bytes: &mut usize,
) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() && *head_bytes == 0 {
                    return Err(HttpError::Disconnected);
                }
                return Err(HttpError::Malformed("connection closed mid-request".into()));
            }
            Ok(_) => {}
            Err(e) => return Err(io_to_http(e)),
        }
        *head_bytes += 1;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds the {MAX_HEAD_BYTES}-byte cap"
            )));
        }
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > MAX_LINE_BYTES {
            return Err(HttpError::TooLarge(format!(
                "header line exceeds the {MAX_LINE_BYTES}-byte cap"
            )));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()))
}

fn io_to_http(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof => {
            HttpError::Malformed("connection closed mid-request".into())
        }
        _ => HttpError::Malformed(format!("read error: {e}")),
    }
}

/// One response, always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(String, String)>,
    /// The `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from a [`Value`].
    pub fn json(status: u16, body: &Value) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: encode::to_string(body).into_bytes(),
        }
    }

    /// A JSON response from already-encoded bytes (artifact files).
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Self {
        Response { status, headers: Vec::new(), content_type: "application/json", body }
    }

    /// A plain-text response in the Prometheus text exposition format
    /// (version 0.0.4 — what `/metrics?format=prometheus` scrapes).
    pub fn prometheus(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_owned(), value));
        self
    }

    /// Serializes status line, headers and body onto `stream`. Write
    /// errors are returned for accounting but there is nothing further
    /// to do with a vanished client.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        head.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The reason phrase for every status this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Runs the parser against raw client bytes over a real socket pair.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("send");
            // Keep the socket open briefly so a short read is a timeout,
            // not an EOF.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().expect("accept");
        stream.set_read_timeout(Some(Duration::from_millis(150))).expect("timeout");
        let out = read_request(&mut stream, max_body);
        client.join().expect("client");
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd", 1024)
                .expect("ok");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn query_parameters_parse_without_decoding() {
        let req = parse(b"GET /metrics?format=prometheus&x=1 HTTP/1.1\r\n\r\n", 1024).expect("ok");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n", 1024).expect("ok");
        assert_eq!(req.query, "");
        assert_eq!(req.query_param("format"), None);
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let err = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 99999\r\n\r\n", 1024)
            .expect_err("too large");
        assert!(matches!(err, HttpError::TooLarge(_)), "{err:?}");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        let err = parse(b"NOT-HTTP\r\n\r\n", 1024).expect_err("malformed");
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
        let err = parse(b"GET jobs HTTP/1.1\r\n\r\n", 1024).expect_err("relative target");
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn stalled_clients_time_out() {
        let err = parse(b"GET /jobs HTTP/1.1\r\n", 1024).expect_err("stall");
        assert!(matches!(err, HttpError::Timeout), "{err:?}");
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            Response::json(429, &Value::object(vec![("ok", Value::Bool(false))]))
                .with_header("Retry-After", "1".into())
                .write_to(&mut stream)
                .expect("write");
        });
        let mut client = TcpStream::connect(addr).expect("connect");
        let mut out = String::new();
        client.read_to_string(&mut out).expect("read");
        server.join().expect("server");
        assert!(out.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{out}");
        assert!(out.contains("Retry-After: 1\r\n"), "{out}");
        assert!(out.contains("Connection: close\r\n"), "{out}");
        assert!(out.ends_with("{\"ok\":false}"), "{out}");
    }
}
