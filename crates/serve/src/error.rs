//! Structured JSON error bodies: every failure the API can produce is
//! `{"error":{"status":…,"code":…,"message":…}}` so clients never have
//! to scrape prose off a status line.

use moela_persist::Value;

use crate::http::Response;

/// A user-facing API failure.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable discriminator (e.g. `queue_full`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl ApiError {
    /// Builds an error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError { status, code, message: message.into() }
    }

    /// `404 not_found`.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self::new(404, "not_found", message)
    }

    /// `400 bad_request`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad_request", message)
    }

    /// Renders the structured JSON response.
    pub fn response(&self) -> Response {
        let body = Value::object(vec![(
            "error",
            Value::object(vec![
                ("status", Value::U64(u64::from(self.status))),
                ("code", Value::Str(self.code.to_owned())),
                ("message", Value::Str(self.message.clone())),
            ]),
        )]);
        Response::json(self.status, &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_as_structured_json() {
        let resp = ApiError::new(429, "queue_full", "queue is full").response();
        assert_eq!(resp.status, 429);
        let text = String::from_utf8_lossy(&resp.body);
        assert_eq!(
            text,
            "{\"error\":{\"status\":429,\"code\":\"queue_full\",\"message\":\"queue is full\"}}"
        );
    }
}
