//! Job identity, lifecycle states, and the in-memory record the manager
//! and the HTTP layer share.
//!
//! The lifecycle is a small state machine:
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    │          │  ├───▶ failed
//!    │          │  ├───▶ cancelled    (DELETE while running)
//!    │          │  └───▶ interrupted  (graceful drain / dead server)
//!    └─────────▶ cancelled            (DELETE while queued)
//! ```
//!
//! `cancelled` and `interrupted` both leave a resumable `RunStore`
//! behind; a restarted server re-queues `interrupted` (and stale
//! `running`/`queued`) jobs, while `cancelled` stays parked until a
//! human resumes it with `moela-dse resume`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use moela_moo::checkpoint::CancelToken;
use moela_obs::MetricsAggregator;
use moela_persist::{RunStore, Value};

/// `job.json` format version.
pub const JOB_FORMAT: u64 = 1;

/// One job's lifecycle state.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a run worker.
    Queued,
    /// A worker is driving the optimizer.
    Running,
    /// Finished; `front.json`/`trace.json` are ready.
    Done,
    /// The run errored; see the record's `error`.
    Failed,
    /// Cancelled by the client at a step boundary (resumable).
    Cancelled,
    /// Parked at a checkpoint by a drain or a dead server (resumed
    /// automatically on restart).
    Interrupted,
}

impl JobState {
    /// All states with their wire names.
    pub const ALL: [(JobState, &'static str); 6] = [
        (JobState::Queued, "queued"),
        (JobState::Running, "running"),
        (JobState::Done, "done"),
        (JobState::Failed, "failed"),
        (JobState::Cancelled, "cancelled"),
        (JobState::Interrupted, "interrupted"),
    ];

    /// The wire name.
    pub fn name(self) -> &'static str {
        Self::ALL.iter().find(|(s, _)| *s == self).map(|(_, n)| *n).expect("every state listed")
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().find(|(_, n)| *n == name).map(|(s, _)| *s)
    }

    /// Whether the job can never run again without outside intervention.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// The mutable half of a job record, guarded by one mutex.
#[derive(Debug, Default)]
pub struct JobCell {
    state: Option<JobState>,
    /// Set when a client cancelled (distinguishes `cancelled` from
    /// `interrupted` when the worker parks the run).
    cancel_requested: bool,
    error: Option<String>,
    summary: Option<Value>,
}

/// A shared handle to the job's live in-run metrics aggregator. `None`
/// until the runner publishes one, and across restarts.
pub type LiveMetrics = Mutex<Option<Arc<Mutex<MetricsAggregator>>>>;

/// One job known to the manager (in any state).
#[derive(Debug)]
pub struct JobRecord {
    /// Stable identity, also the run directory name (`job-000001`).
    pub id: String,
    /// Monotonic submission sequence (listing and recovery order).
    pub seq: u64,
    /// The job's run directory (a `RunStore` layout).
    pub dir: PathBuf,
    /// The validated, normalized submission spec.
    pub spec: Value,
    /// Cooperative cancellation flag threaded into the optimizer.
    pub cancel: CancelToken,
    /// Live metrics published by the runner while the job runs.
    pub live: LiveMetrics,
    cell: Mutex<JobCell>,
}

impl JobRecord {
    /// A fresh record in `state`.
    pub fn new(id: String, seq: u64, dir: PathBuf, spec: Value, state: JobState) -> Self {
        JobRecord {
            id,
            seq,
            dir,
            spec,
            cancel: CancelToken::new(),
            live: Mutex::new(None),
            cell: Mutex::new(JobCell {
                state: Some(state),
                cancel_requested: false,
                error: None,
                summary: None,
            }),
        }
    }

    /// The current lifecycle state.
    pub fn state(&self) -> JobState {
        self.cell.lock().expect("job cell").state.expect("state always set")
    }

    /// Transitions to `state`, optionally recording a failure message or
    /// a completion summary.
    pub fn set_state(&self, state: JobState, error: Option<String>, summary: Option<Value>) {
        let mut cell = self.cell.lock().expect("job cell");
        cell.state = Some(state);
        if error.is_some() {
            cell.error = error;
        }
        if summary.is_some() {
            cell.summary = summary;
        }
    }

    /// Marks that a client asked for cancellation (so a parked run
    /// reports `cancelled`, not `interrupted`).
    pub fn request_cancel(&self) {
        self.cell.lock().expect("job cell").cancel_requested = true;
        self.cancel.cancel();
    }

    /// Whether a client asked for cancellation.
    pub fn cancel_requested(&self) -> bool {
        self.cell.lock().expect("job cell").cancel_requested
    }

    /// The failure message, if the job failed.
    pub fn error(&self) -> Option<String> {
        self.cell.lock().expect("job cell").error.clone()
    }

    /// The completion summary, if the job finished.
    pub fn summary(&self) -> Option<Value> {
        self.cell.lock().expect("job cell").summary.clone()
    }

    /// A live snapshot from the in-run metrics aggregator, when the job
    /// is running and the runner has published one.
    pub fn live_summary(&self) -> Option<Value> {
        let slot = self.live.lock().ok()?;
        let agg = slot.as_ref()?;
        let agg = agg.lock().ok()?;
        Some(agg.summary())
    }

    /// Renders the record for the API. `detail` adds the spec, live
    /// metrics, summary, and error; the list view omits them.
    pub fn to_value(&self, detail: bool) -> Value {
        let mut fields = vec![
            ("id", Value::Str(self.id.clone())),
            ("seq", Value::U64(self.seq)),
            ("state", Value::Str(self.state().name().to_owned())),
        ];
        if detail {
            fields.push(("dir", Value::Str(self.dir.display().to_string())));
            fields.push(("spec", self.spec.clone()));
            if let Some(live) = self.live_summary() {
                fields.push(("live", live));
            }
            if let Some(summary) = self.summary() {
                fields.push(("summary", summary));
            }
            if let Some(error) = self.error() {
                fields.push(("error", Value::Str(error)));
            }
        }
        Value::object(fields)
    }

    /// The persistent `job.json` document for this record.
    pub fn manifest(&self) -> Value {
        let mut fields = vec![
            ("format", Value::U64(JOB_FORMAT)),
            ("id", Value::Str(self.id.clone())),
            ("seq", Value::U64(self.seq)),
            ("state", Value::Str(self.state().name().to_owned())),
            ("spec", self.spec.clone()),
        ];
        if let Some(error) = self.error() {
            fields.push(("error", Value::Str(error)));
        }
        if let Some(summary) = self.summary() {
            fields.push(("summary", summary));
        }
        Value::object(fields)
    }

    /// Writes `job.json` into the run directory. I/O failures are
    /// returned as text: losing a state write must fail the transition
    /// loudly, never crash the server.
    pub fn persist(&self) -> Result<(), String> {
        let store = RunStore::create(&self.dir)
            .map_err(|e| format!("cannot open run dir for {}: {e}", self.id))?;
        store.write_job(&self.manifest()).map_err(|e| format!("cannot persist {}: {e}", self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_round_trip() {
        for (state, name) in JobState::ALL {
            assert_eq!(JobState::parse(name), Some(state));
            assert_eq!(state.name(), name);
        }
        assert_eq!(JobState::parse("nope"), None);
    }

    #[test]
    fn terminality_matches_the_lifecycle() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Interrupted.is_terminal());
    }

    #[test]
    fn record_transitions_and_renders() {
        let spec = Value::object(vec![("algorithm", Value::Str("nsga2".into()))]);
        let record =
            JobRecord::new("job-000001".into(), 1, PathBuf::from("/tmp/x"), spec, JobState::Queued);
        assert_eq!(record.state(), JobState::Queued);
        assert!(!record.cancel.is_cancelled());
        record.set_state(JobState::Running, None, None);
        record.request_cancel();
        assert!(record.cancel.is_cancelled());
        assert!(record.cancel_requested());
        record.set_state(JobState::Cancelled, None, None);
        let v = record.to_value(true);
        assert_eq!(v.field("state").unwrap().as_str().unwrap(), "cancelled");
        assert_eq!(v.field("spec").unwrap().field("algorithm").unwrap().as_str().unwrap(), "nsga2");
        let list = record.to_value(false);
        assert!(list.field_opt("spec").is_none());
        let manifest = record.manifest();
        assert_eq!(manifest.field("format").unwrap().as_u64().unwrap(), JOB_FORMAT);
    }
}
