//! Job identity, lifecycle states, and the in-memory record the manager
//! and the HTTP layer share.
//!
//! The lifecycle is a small state machine:
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    │          │  ├───▶ failed             (permanent error)
//!    │          │  ├───▶ cancelled          (DELETE while running)
//!    │          │  ├───▶ interrupted        (graceful drain / dead server)
//!    │          │  ├───▶ deadline_exceeded  (spec timeout_s elapsed)
//!    │          │  ├───▶ stalled ──▶ queued | quarantined
//!    │          │  └───▶ queued             (transient error, retry w/ backoff)
//!    │          └──────▶ quarantined        (attempt budget exhausted)
//!    └─────────▶ cancelled                  (DELETE while queued)
//! ```
//!
//! `cancelled` and `interrupted` both leave a resumable `RunStore`
//! behind; a restarted server re-queues `interrupted` (and stale
//! `running`/`queued`/`stalled`) jobs, while `cancelled` stays parked
//! until a human resumes it with `moela-dse resume`. `quarantined` and
//! `deadline_exceeded` are terminal verdicts: the record (with its
//! attempt history) stays queryable but the job never runs again.
//!
//! Every transition appends to a bounded per-job history that is
//! persisted in `job.json` and served by `GET /jobs/{id}` — including
//! the attempt counter, which is how a crash-loop survives SIGKILL.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use moela_moo::checkpoint::CancelToken;
use moela_obs::MetricsAggregator;
use moela_persist::{RunStore, Value};

use crate::lock::lock;
use crate::supervise::Heartbeat;

/// `job.json` format version. Version 2 added `attempts` and `history`;
/// version-1 manifests load with both defaulted.
pub const JOB_FORMAT: u64 = 2;

/// Cap on persisted history entries; the oldest are dropped first.
const MAX_HISTORY: usize = 64;

/// One job's lifecycle state.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a run worker (possibly in retry backoff).
    Queued,
    /// A worker is driving the optimizer.
    Running,
    /// Running, but the step heartbeat went stale; the watchdog has
    /// asked it to park at the next boundary.
    Stalled,
    /// Finished; `front.json`/`trace.json` are ready.
    Done,
    /// The run hit a permanent error; see the record's `error`.
    Failed,
    /// Cancelled by the client at a step boundary (resumable).
    Cancelled,
    /// Parked at a checkpoint by a drain or a dead server (resumed
    /// automatically on restart).
    Interrupted,
    /// The spec's `timeout_s` wall-clock deadline elapsed.
    DeadlineExceeded,
    /// The attempt budget is exhausted (or the worker had to be
    /// abandoned); the last error is recorded and the job is parked
    /// for good.
    Quarantined,
}

impl JobState {
    /// All states with their wire names.
    pub const ALL: [(JobState, &'static str); 9] = [
        (JobState::Queued, "queued"),
        (JobState::Running, "running"),
        (JobState::Stalled, "stalled"),
        (JobState::Done, "done"),
        (JobState::Failed, "failed"),
        (JobState::Cancelled, "cancelled"),
        (JobState::Interrupted, "interrupted"),
        (JobState::DeadlineExceeded, "deadline_exceeded"),
        (JobState::Quarantined, "quarantined"),
    ];

    /// The wire name.
    pub fn name(self) -> &'static str {
        Self::ALL.iter().find(|(s, _)| *s == self).map(|(_, n)| *n).expect("every state listed")
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().find(|(_, n)| *n == name).map(|(s, _)| *s)
    }

    /// Whether the job can never run again without outside intervention.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done
                | JobState::Failed
                | JobState::Cancelled
                | JobState::DeadlineExceeded
                | JobState::Quarantined
        )
    }
}

/// Why a running job was asked to park at its next step boundary. The
/// first interrupt wins; the worker turns it into the final state.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum InterruptKind {
    /// A client `DELETE`d the job → `cancelled`.
    Cancel,
    /// A graceful drain → `interrupted` (resumed on restart).
    Drain,
    /// The spec's `timeout_s` elapsed → `deadline_exceeded`.
    Deadline,
    /// The watchdog saw a stale heartbeat → retried as transient.
    Stall,
}

/// One persisted lifecycle transition.
#[derive(Clone, Debug)]
pub struct HistoryEntry {
    /// The state entered.
    pub state: JobState,
    /// The attempt counter at the time of the transition.
    pub attempt: u64,
    /// The error that drove the transition, if any.
    pub error: Option<String>,
}

impl HistoryEntry {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("state", Value::Str(self.state.name().to_owned())),
            ("attempt", Value::U64(self.attempt)),
        ];
        if let Some(error) = &self.error {
            fields.push(("error", Value::Str(error.clone())));
        }
        Value::object(fields)
    }

    fn from_value(v: &Value) -> Option<Self> {
        Some(HistoryEntry {
            state: JobState::parse(v.field_opt("state")?.as_str().ok()?)?,
            attempt: v.field_opt("attempt")?.as_u64().ok()?,
            error: v.field_opt("error").and_then(|e| e.as_str().ok()).map(str::to_owned),
        })
    }
}

/// The mutable half of a job record, guarded by one mutex.
#[derive(Debug)]
struct JobCell {
    state: JobState,
    /// Why the current run was asked to park (first interrupt wins).
    interrupt: Option<InterruptKind>,
    error: Option<String>,
    summary: Option<Value>,
    /// Times a worker has picked this job up, across server restarts.
    attempts: u64,
    /// When the job first entered `running` in this process (the
    /// deadline clock; restarts restart it).
    started: Option<Instant>,
    /// Set when the watchdog gave up on the worker driving this job;
    /// the zombie worker must drop its outcome instead of reporting it.
    abandoned: bool,
    /// Cancellation token for the *current* attempt; replaced on retry
    /// because a fired token cannot be re-armed.
    cancel: CancelToken,
    history: Vec<HistoryEntry>,
}

/// A shared handle to the job's live in-run metrics aggregator. `None`
/// until the runner publishes one, and across restarts.
pub type LiveMetrics = Mutex<Option<std::sync::Arc<Mutex<MetricsAggregator>>>>;

/// One job known to the manager (in any state).
#[derive(Debug)]
pub struct JobRecord {
    /// Stable identity, also the run directory name (`job-000001`).
    pub id: String,
    /// Monotonic submission sequence (listing and recovery order).
    pub seq: u64,
    /// The job's run directory (a `RunStore` layout).
    pub dir: PathBuf,
    /// The validated, normalized submission spec.
    pub spec: Value,
    /// Wall-clock deadline from the spec's `timeout_s`, if set.
    pub timeout: Option<Duration>,
    /// Live metrics published by the runner while the job runs.
    pub live: LiveMetrics,
    /// Step-boundary heartbeat the watchdog reads.
    pub heartbeat: Heartbeat,
    cell: Mutex<JobCell>,
}

impl JobRecord {
    /// A fresh record in `state`. The wall-clock deadline is read off
    /// the (already validated) spec's `timeout_s`.
    pub fn new(id: String, seq: u64, dir: PathBuf, spec: Value, state: JobState) -> Self {
        let timeout = spec
            .field_opt("timeout_s")
            .and_then(|v| v.as_u64().ok())
            .filter(|&s| s > 0)
            .map(Duration::from_secs);
        JobRecord {
            id,
            seq,
            dir,
            spec,
            timeout,
            live: Mutex::new(None),
            heartbeat: Heartbeat::new(),
            cell: Mutex::new(JobCell {
                state,
                interrupt: None,
                error: None,
                summary: None,
                attempts: 0,
                started: None,
                abandoned: false,
                cancel: CancelToken::new(),
                history: Vec::new(),
            }),
        }
    }

    /// The current lifecycle state.
    pub fn state(&self) -> JobState {
        lock(&self.cell).state
    }

    /// Transitions to `state`, optionally recording a failure message or
    /// a completion summary. Every call appends a history entry.
    pub fn set_state(&self, state: JobState, error: Option<String>, summary: Option<Value>) {
        let mut cell = lock(&self.cell);
        cell.state = state;
        if error.is_some() {
            cell.error = error;
        }
        if summary.is_some() {
            cell.summary = summary;
        }
        let entry = HistoryEntry { state, attempt: cell.attempts, error: cell.error.clone() };
        push_history(&mut cell.history, entry);
    }

    /// Requests a park at the next step boundary. The first interrupt
    /// wins (a deadline fired before a cancel stays a deadline), with
    /// one exception: an explicit client cancel overrides a watchdog
    /// stall, because the client's verdict beats the retry path. The
    /// token fires either way. Returns whether `kind` was installed.
    pub fn interrupt(&self, kind: InterruptKind) -> bool {
        let mut cell = lock(&self.cell);
        let installed = match (cell.interrupt, kind) {
            (None, _) | (Some(InterruptKind::Stall), InterruptKind::Cancel) => {
                cell.interrupt = Some(kind);
                true
            }
            _ => false,
        };
        cell.cancel.cancel();
        installed
    }

    /// The pending interrupt, if one was requested.
    pub fn interrupt_kind(&self) -> Option<InterruptKind> {
        lock(&self.cell).interrupt
    }

    /// Marks that a client asked for cancellation (so a parked run
    /// reports `cancelled`, not `interrupted`).
    pub fn request_cancel(&self) {
        self.interrupt(InterruptKind::Cancel);
    }

    /// Whether a client asked for cancellation.
    pub fn cancel_requested(&self) -> bool {
        lock(&self.cell).interrupt == Some(InterruptKind::Cancel)
    }

    /// Whether the current attempt's cancel token has fired (tests).
    pub fn cancel_fired(&self) -> bool {
        lock(&self.cell).cancel.is_cancelled()
    }

    /// Starts one attempt: bumps the persistent attempt counter, arms a
    /// fresh cancel token, clears stale interrupts from the previous
    /// attempt, and moves to `running`. Returns `None` when a client
    /// cancel raced the pickup — the caller must finalize `cancelled`
    /// instead of running.
    pub fn begin_attempt(&self) -> Option<(CancelToken, u64)> {
        let mut cell = lock(&self.cell);
        if cell.interrupt == Some(InterruptKind::Cancel) {
            return None;
        }
        cell.attempts += 1;
        cell.interrupt = None;
        cell.cancel = CancelToken::new();
        cell.state = JobState::Running;
        if cell.started.is_none() {
            cell.started = Some(Instant::now());
        }
        let entry = HistoryEntry { state: JobState::Running, attempt: cell.attempts, error: None };
        push_history(&mut cell.history, entry);
        let token = cell.cancel.clone();
        let attempt = cell.attempts;
        drop(cell);
        self.heartbeat.beat();
        Some((token, attempt))
    }

    /// Parks the job back in `queued` after a transient failure, ready
    /// for the watchdog to release once its backoff elapses.
    pub fn schedule_retry(&self, error: String) {
        let mut cell = lock(&self.cell);
        cell.state = JobState::Queued;
        cell.interrupt = None;
        cell.error = Some(error.clone());
        let entry =
            HistoryEntry { state: JobState::Queued, attempt: cell.attempts, error: Some(error) };
        push_history(&mut cell.history, entry);
    }

    /// Times a worker has picked this job up (persisted).
    pub fn attempts(&self) -> u64 {
        lock(&self.cell).attempts
    }

    /// Restores persisted supervision state after recovery.
    pub fn restore(&self, attempts: u64, history: Vec<HistoryEntry>) {
        let mut cell = lock(&self.cell);
        cell.attempts = attempts;
        cell.history = history;
    }

    /// How long this job has been running in this process, if it ever
    /// started.
    pub fn running_for(&self) -> Option<Duration> {
        lock(&self.cell).started.map(|t| t.elapsed())
    }

    /// Marks the record abandoned: the watchdog has written the final
    /// verdict and the (stuck) worker must discard its outcome.
    pub fn mark_abandoned(&self) {
        lock(&self.cell).abandoned = true;
    }

    /// Whether the watchdog abandoned the worker driving this job.
    pub fn is_abandoned(&self) -> bool {
        lock(&self.cell).abandoned
    }

    /// The failure message, if the job failed.
    pub fn error(&self) -> Option<String> {
        lock(&self.cell).error.clone()
    }

    /// The completion summary, if the job finished.
    pub fn summary(&self) -> Option<Value> {
        lock(&self.cell).summary.clone()
    }

    /// The persisted transition history, oldest first.
    pub fn history(&self) -> Vec<HistoryEntry> {
        lock(&self.cell).history.clone()
    }

    /// A live snapshot from the in-run metrics aggregator, when the job
    /// is running and the runner has published one.
    pub fn live_summary(&self) -> Option<Value> {
        let slot = lock(&self.live);
        let agg = std::sync::Arc::clone(slot.as_ref()?);
        drop(slot);
        let agg = lock(&agg);
        Some(agg.summary())
    }

    /// Renders the record for the API. `detail` adds the spec, live
    /// metrics, attempt history, summary, and error; the list view
    /// omits them.
    pub fn to_value(&self, detail: bool) -> Value {
        let mut fields = vec![
            ("id", Value::Str(self.id.clone())),
            ("seq", Value::U64(self.seq)),
            ("state", Value::Str(self.state().name().to_owned())),
            ("attempts", Value::U64(self.attempts())),
        ];
        if detail {
            fields.push(("dir", Value::Str(self.dir.display().to_string())));
            fields.push(("spec", self.spec.clone()));
            let history: Vec<Value> = self.history().iter().map(HistoryEntry::to_value).collect();
            fields.push(("history", Value::Array(history)));
            if let Some(live) = self.live_summary() {
                fields.push(("live", live));
            }
            if let Some(summary) = self.summary() {
                fields.push(("summary", summary));
            }
            if let Some(error) = self.error() {
                fields.push(("error", Value::Str(error)));
            }
        }
        Value::object(fields)
    }

    /// The persistent `job.json` document for this record.
    pub fn manifest(&self) -> Value {
        let mut fields = vec![
            ("format", Value::U64(JOB_FORMAT)),
            ("id", Value::Str(self.id.clone())),
            ("seq", Value::U64(self.seq)),
            ("state", Value::Str(self.state().name().to_owned())),
            ("attempts", Value::U64(self.attempts())),
            ("spec", self.spec.clone()),
        ];
        let history: Vec<Value> = self.history().iter().map(HistoryEntry::to_value).collect();
        fields.push(("history", Value::Array(history)));
        if let Some(error) = self.error() {
            fields.push(("error", Value::Str(error)));
        }
        if let Some(summary) = self.summary() {
            fields.push(("summary", summary));
        }
        Value::object(fields)
    }

    /// Parses the supervision fields back out of a persisted manifest
    /// (absent in format-1 manifests → defaults).
    pub fn restore_from_manifest(&self, manifest: &Value) {
        let attempts = manifest.field_opt("attempts").and_then(|v| v.as_u64().ok()).unwrap_or(0);
        let history = match manifest.field_opt("history") {
            Some(Value::Array(items)) => {
                items.iter().filter_map(HistoryEntry::from_value).collect()
            }
            _ => Vec::new(),
        };
        self.restore(attempts, history);
    }

    /// Writes `job.json` into the run directory. I/O failures are
    /// returned as text: losing a state write must fail the transition
    /// loudly, never crash the server.
    pub fn persist(&self) -> Result<(), String> {
        let store = RunStore::create(&self.dir)
            .map_err(|e| format!("cannot open run dir for {}: {e}", self.id))?;
        store.write_job(&self.manifest()).map_err(|e| format!("cannot persist {}: {e}", self.id))
    }
}

/// Appends to a history, dropping the oldest entry past the cap.
fn push_history(history: &mut Vec<HistoryEntry>, entry: HistoryEntry) {
    if history.len() >= MAX_HISTORY {
        history.remove(0);
    }
    history.push(entry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_round_trip() {
        for (state, name) in JobState::ALL {
            assert_eq!(JobState::parse(name), Some(state));
            assert_eq!(state.name(), name);
        }
        assert_eq!(JobState::parse("nope"), None);
    }

    #[test]
    fn terminality_matches_the_lifecycle() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::DeadlineExceeded.is_terminal());
        assert!(JobState::Quarantined.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Stalled.is_terminal());
        assert!(!JobState::Interrupted.is_terminal());
    }

    #[test]
    fn record_transitions_and_renders() {
        let spec = Value::object(vec![("algorithm", Value::Str("nsga2".into()))]);
        let record =
            JobRecord::new("job-000001".into(), 1, PathBuf::from("/tmp/x"), spec, JobState::Queued);
        assert_eq!(record.state(), JobState::Queued);
        assert!(!record.cancel_fired());
        let (token, attempt) = record.begin_attempt().expect("no cancel pending");
        assert_eq!(attempt, 1);
        record.request_cancel();
        assert!(token.is_cancelled());
        assert!(record.cancel_requested());
        record.set_state(JobState::Cancelled, None, None);
        let v = record.to_value(true);
        assert_eq!(v.field("state").unwrap().as_str().unwrap(), "cancelled");
        assert_eq!(v.field("attempts").unwrap().as_u64().unwrap(), 1);
        assert_eq!(v.field("spec").unwrap().field("algorithm").unwrap().as_str().unwrap(), "nsga2");
        let list = record.to_value(false);
        assert!(list.field_opt("spec").is_none());
        let manifest = record.manifest();
        assert_eq!(manifest.field("format").unwrap().as_u64().unwrap(), JOB_FORMAT);
    }

    #[test]
    fn begin_attempt_loses_the_race_to_a_client_cancel() {
        let record = JobRecord::new(
            "job-000002".into(),
            2,
            PathBuf::from("/tmp/x"),
            Value::object(vec![]),
            JobState::Queued,
        );
        record.request_cancel();
        assert!(record.begin_attempt().is_none(), "a cancelled job must not start");
    }

    #[test]
    fn retry_rearms_the_cancel_token_and_counts_attempts() {
        let record = JobRecord::new(
            "job-000003".into(),
            3,
            PathBuf::from("/tmp/x"),
            Value::object(vec![]),
            JobState::Queued,
        );
        let (first, _) = record.begin_attempt().expect("attempt 1");
        record.interrupt(InterruptKind::Stall);
        assert!(first.is_cancelled());
        record.schedule_retry("stalled".into());
        assert_eq!(record.state(), JobState::Queued);
        let (second, attempt) = record.begin_attempt().expect("attempt 2");
        assert_eq!(attempt, 2);
        assert!(!second.is_cancelled(), "retry must run under a fresh token");
        assert!(record.interrupt_kind().is_none(), "stale interrupts cleared");
    }

    #[test]
    fn first_interrupt_wins() {
        let record = JobRecord::new(
            "job-000004".into(),
            4,
            PathBuf::from("/tmp/x"),
            Value::object(vec![]),
            JobState::Running,
        );
        assert!(record.interrupt(InterruptKind::Deadline));
        assert!(!record.interrupt(InterruptKind::Cancel));
        assert_eq!(record.interrupt_kind(), Some(InterruptKind::Deadline));
    }

    #[test]
    fn history_and_attempts_survive_a_manifest_round_trip() {
        let record = JobRecord::new(
            "job-000005".into(),
            5,
            PathBuf::from("/tmp/x"),
            Value::object(vec![]),
            JobState::Queued,
        );
        record.begin_attempt().expect("attempt");
        record.schedule_retry("boom".into());
        let manifest = record.manifest();

        let revived = JobRecord::new(
            "job-000005".into(),
            5,
            PathBuf::from("/tmp/x"),
            Value::object(vec![]),
            JobState::Queued,
        );
        revived.restore_from_manifest(&manifest);
        assert_eq!(revived.attempts(), 1);
        let history = revived.history();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].state, JobState::Running);
        assert_eq!(history[1].state, JobState::Queued);
        assert_eq!(history[1].error.as_deref(), Some("boom"));
    }

    #[test]
    fn timeout_comes_from_the_spec() {
        let spec = Value::object(vec![("timeout_s", Value::U64(9))]);
        let record =
            JobRecord::new("job-000006".into(), 6, PathBuf::from("/tmp/x"), spec, JobState::Queued);
        assert_eq!(record.timeout, Some(Duration::from_secs(9)));
        let record = JobRecord::new(
            "job-000007".into(),
            7,
            PathBuf::from("/tmp/x"),
            Value::object(vec![]),
            JobState::Queued,
        );
        assert_eq!(record.timeout, None);
    }
}
