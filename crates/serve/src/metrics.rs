//! Whole-server counters behind `GET /metrics`.
//!
//! Plain atomics — incremented from HTTP threads and run workers alike,
//! rendered as one flat JSON object. These are process-local and reset
//! on restart; per-job durable truth lives in each job's `RunStore`.

use std::sync::atomic::{AtomicU64, Ordering};

use moela_persist::Value;

/// Monotonic server-lifetime counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// HTTP requests parsed far enough to be routed.
    pub http_requests: AtomicU64,
    /// Requests rejected before routing (malformed, oversized, stalled).
    pub http_rejected: AtomicU64,
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Submissions bounced with 429 because the queue was full.
    pub rejected_full: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
    /// Jobs that errored while running.
    pub failed: AtomicU64,
    /// Jobs cancelled by a client.
    pub cancelled: AtomicU64,
    /// Jobs parked at a checkpoint by a drain.
    pub interrupted: AtomicU64,
    /// Jobs rediscovered from disk and re-queued at startup.
    pub recovered: AtomicU64,
}

impl ServerMetrics {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters for `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let read = |c: &AtomicU64| Value::U64(c.load(Ordering::Relaxed));
        Value::object(vec![
            ("http_requests", read(&self.http_requests)),
            ("http_rejected", read(&self.http_rejected)),
            ("jobs_submitted", read(&self.submitted)),
            ("jobs_rejected_full", read(&self.rejected_full)),
            ("jobs_completed", read(&self.completed)),
            ("jobs_failed", read(&self.failed)),
            ("jobs_cancelled", read(&self.cancelled)),
            ("jobs_interrupted", read(&self.interrupted)),
            ("jobs_recovered", read(&self.recovered)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_flat_and_start_at_zero() {
        let m = ServerMetrics::new();
        let v = m.to_value();
        assert_eq!(v.field("jobs_submitted").unwrap().as_u64().unwrap(), 0);
        ServerMetrics::bump(&m.submitted);
        ServerMetrics::bump(&m.submitted);
        ServerMetrics::bump(&m.rejected_full);
        let v = m.to_value();
        assert_eq!(v.field("jobs_submitted").unwrap().as_u64().unwrap(), 2);
        assert_eq!(v.field("jobs_rejected_full").unwrap().as_u64().unwrap(), 1);
    }
}
