//! Whole-server counters behind `GET /metrics`.
//!
//! Plain atomics — incremented from HTTP threads, run workers, and the
//! watchdog alike, rendered as one flat JSON object. These are
//! process-local and reset on restart; per-job durable truth lives in
//! each job's `RunStore`. Supervision counters share their names with
//! the engine's `metrics.json` via [`moela_obs::names`].
//!
//! `disk_degraded` is the one non-monotonic flag here: it latches on a
//! failed checkpoint/manifest write and clears on the next successful
//! one, and is what splits `/readyz` readiness from `/healthz`
//! liveness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use moela_obs::names;
use moela_persist::Value;

/// Monotonic server-lifetime counters (plus the disk-health latch).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// HTTP requests parsed far enough to be routed.
    pub http_requests: AtomicU64,
    /// Requests rejected before routing (malformed, oversized, stalled).
    pub http_rejected: AtomicU64,
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Submissions bounced with 429 because the queue was full.
    pub rejected_full: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
    /// Jobs that errored permanently while running.
    pub failed: AtomicU64,
    /// Jobs cancelled by a client.
    pub cancelled: AtomicU64,
    /// Jobs parked at a checkpoint by a drain.
    pub interrupted: AtomicU64,
    /// Jobs rediscovered from disk and re-queued at startup.
    pub recovered: AtomicU64,
    /// Jobs re-queued with backoff after a transient failure.
    pub retried: AtomicU64,
    /// Jobs parked terminally after exhausting their attempt budget.
    pub quarantined: AtomicU64,
    /// Jobs the watchdog marked stalled on a stale heartbeat.
    pub stalled: AtomicU64,
    /// Jobs terminated by their spec's `timeout_s` deadline.
    pub deadline_exceeded: AtomicU64,
    /// Runner panics contained by a worker's unwind boundary.
    pub runner_panics: AtomicU64,
    /// Worker threads replaced after dying or being abandoned.
    pub worker_respawns: AtomicU64,
    /// Job-state / checkpoint writes that failed with an I/O error.
    pub disk_write_failures: AtomicU64,
    /// Latched while the last job-state write failed; cleared by the
    /// next successful one. Drives the `/readyz` readiness split.
    pub disk_degraded: AtomicBool,
}

impl ServerMetrics {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a failed durable write (the latch is set separately by
    /// the manager, which tracks which jobs are still disk-suspect).
    pub fn count_disk_failure(&self) {
        Self::bump(&self.disk_write_failures);
    }

    /// Sets or clears the readiness-degradation latch.
    pub fn set_disk_degraded(&self, degraded: bool) {
        self.disk_degraded.store(degraded, Ordering::Relaxed);
    }

    /// Whether the last durable write failed.
    pub fn is_disk_degraded(&self) -> bool {
        self.disk_degraded.load(Ordering::Relaxed)
    }

    /// Renders the counters for `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let read = |c: &AtomicU64| Value::U64(c.load(Ordering::Relaxed));
        Value::object(vec![
            ("http_requests", read(&self.http_requests)),
            ("http_rejected", read(&self.http_rejected)),
            ("jobs_submitted", read(&self.submitted)),
            ("jobs_rejected_full", read(&self.rejected_full)),
            ("jobs_completed", read(&self.completed)),
            ("jobs_failed", read(&self.failed)),
            ("jobs_cancelled", read(&self.cancelled)),
            ("jobs_interrupted", read(&self.interrupted)),
            ("jobs_recovered", read(&self.recovered)),
            (names::JOBS_RETRIED, read(&self.retried)),
            (names::JOBS_QUARANTINED, read(&self.quarantined)),
            (names::JOBS_STALLED, read(&self.stalled)),
            (names::JOBS_DEADLINE_EXCEEDED, read(&self.deadline_exceeded)),
            (names::RUNNER_PANICS, read(&self.runner_panics)),
            (names::WORKER_RESPAWNS, read(&self.worker_respawns)),
            (names::DISK_WRITE_FAILURES, read(&self.disk_write_failures)),
            ("disk_degraded", Value::Bool(self.is_disk_degraded())),
        ])
    }

    /// Renders the same counters in the Prometheus text exposition
    /// format (version 0.0.4): every monotonic counter as a
    /// `moela_serve_`-prefixed `counter`, the `disk_degraded` latch as
    /// a 0/1 `gauge`. Driven off [`Self::to_value`] so the two
    /// representations can never disagree on names or values.
    pub fn to_prometheus(&self) -> String {
        let Value::Object(fields) = self.to_value() else {
            unreachable!("to_value renders an object")
        };
        let mut out = String::new();
        for (name, value) in fields {
            let metric = format!("moela_serve_{name}");
            match value {
                Value::U64(v) => {
                    out.push_str(&format!("# TYPE {metric} counter\n{metric} {v}\n"));
                }
                Value::Bool(b) => {
                    out.push_str(&format!("# TYPE {metric} gauge\n{metric} {}\n", u8::from(b)));
                }
                other => {
                    debug_assert!(false, "unexpected metrics value kind {}", other.kind());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_flat_and_start_at_zero() {
        let m = ServerMetrics::new();
        let v = m.to_value();
        assert_eq!(v.field("jobs_submitted").unwrap().as_u64().unwrap(), 0);
        assert_eq!(v.field("jobs_retried").unwrap().as_u64().unwrap(), 0);
        assert_eq!(v.field("jobs_quarantined").unwrap().as_u64().unwrap(), 0);
        ServerMetrics::bump(&m.submitted);
        ServerMetrics::bump(&m.submitted);
        ServerMetrics::bump(&m.rejected_full);
        let v = m.to_value();
        assert_eq!(v.field("jobs_submitted").unwrap().as_u64().unwrap(), 2);
        assert_eq!(v.field("jobs_rejected_full").unwrap().as_u64().unwrap(), 1);
    }

    #[test]
    fn prometheus_exposition_mirrors_the_json_counters() {
        let m = ServerMetrics::new();
        ServerMetrics::bump(&m.submitted);
        ServerMetrics::bump(&m.submitted);
        m.set_disk_degraded(true);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE moela_serve_jobs_submitted counter\n"), "{text}");
        assert!(text.contains("\nmoela_serve_jobs_submitted 2\n"), "{text}");
        assert!(text.contains("# TYPE moela_serve_disk_degraded gauge\n"), "{text}");
        assert!(text.contains("\nmoela_serve_disk_degraded 1\n"), "{text}");
        // Every JSON key appears as a prefixed metric line.
        let Value::Object(fields) = m.to_value() else { panic!("object") };
        for (name, _) in fields {
            assert!(text.contains(&format!("moela_serve_{name} ")), "missing {name}: {text}");
        }
    }

    #[test]
    fn disk_degradation_latches_and_recovers() {
        let m = ServerMetrics::new();
        assert!(!m.is_disk_degraded());
        m.count_disk_failure();
        m.count_disk_failure();
        m.set_disk_degraded(true);
        assert!(m.is_disk_degraded());
        let v = m.to_value();
        assert_eq!(v.field("disk_write_failures").unwrap().as_u64().unwrap(), 2);
        assert_eq!(v.field("disk_degraded").unwrap(), &Value::Bool(true));
        m.set_disk_degraded(false);
        assert!(!m.is_disk_degraded());
        let v = m.to_value();
        assert_eq!(v.field("disk_write_failures").unwrap().as_u64().unwrap(), 2, "counter stays");
        assert_eq!(v.field("disk_degraded").unwrap(), &Value::Bool(false));
    }
}
