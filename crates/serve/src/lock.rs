//! Poison-recovering mutex acquisition.
//!
//! Every lock in this crate guards state that stays internally
//! consistent between acquisitions — job records persist themselves,
//! counters are atomics, the queue is re-checked under the lock — so a
//! panic inside a critical section leaves nothing half-written that a
//! later reader could misinterpret. Std's poisoning would still turn
//! that one panicked thread into a cascade: every subsequent
//! `.lock().expect(...)` on the same mutex aborts its thread too, and
//! the whole server wedges. [`lock`] recovers the guard instead, so a
//! single crashed holder costs exactly one job, never the process.

use std::sync::{Mutex, MutexGuard};

/// Acquires `m`, recovering the guard when a previous holder panicked.
pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn a_panicked_holder_does_not_poison_later_acquisitions() {
        let shared = Arc::new(Mutex::new(41u64));
        let holder = Arc::clone(&shared);
        let panicked = std::thread::spawn(move || {
            let mut guard = lock(&holder);
            *guard += 1;
            panic!("holder dies with the lock");
        })
        .join();
        assert!(panicked.is_err(), "the holder must have panicked");
        assert!(shared.lock().is_err(), "the mutex must actually be poisoned");
        // The helper recovers the guard and the pre-panic write is intact.
        assert_eq!(*lock(&shared), 42);
        *lock(&shared) = 7;
        assert_eq!(*lock(&shared), 7);
    }
}
