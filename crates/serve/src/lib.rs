//! moela-serve: an embedded DSE job server.
//!
//! A dependency-free (std-only) HTTP/1.1 front end over the existing
//! run/checkpoint machinery: clients `POST /jobs` a JSON spec, a
//! bounded queue feeds a fixed pool of run workers, each worker drives
//! an optimizer through the same start/step/finish loop the CLI uses
//! (so served artifacts are byte-identical to `moela-dse run` at the
//! same seed), and every lifecycle transition is persisted to the job's
//! `RunStore` so a killed server rediscovers and resumes its in-flight
//! jobs on restart.
//!
//! The crate deliberately knows nothing about algorithms or problems:
//! the embedding binary supplies a [`JobRunner`]. Layering:
//!
//! ```text
//! http      one-request-per-connection parser/writer, hard caps
//! error     structured JSON error bodies
//! lock      poison-recovering mutex acquisition
//! supervise retry backoff, heartbeats, and the supervision policy
//! job       lifecycle states + the shared per-job record
//! metrics   whole-server counters (GET /metrics)
//! runner    the JobRunner seam the embedding binary implements
//! manager   bounded queue, worker pool, watchdog, recovery, drain
//! server    accept loop, connection pool, routing, event streaming
//! ```

mod error;
mod http;
mod job;
mod lock;
mod manager;
mod metrics;
mod runner;
mod server;
mod supervise;

pub use error::ApiError;
pub use http::{read_request, HttpError, Request, Response};
pub use job::{HistoryEntry, InterruptKind, JobRecord, JobState, LiveMetrics, JOB_FORMAT};
pub use lock::lock;
pub use manager::JobManager;
pub use metrics::ServerMetrics;
pub use runner::{FailureKind, JobContext, JobRunner, RunError, RunOutcome};
pub use server::{ReportBuilder, ServeConfig, Server};
pub use supervise::{backoff_delay, Heartbeat, SupervisePolicy};
