//! The HTTP front end: a nonblocking accept loop, a small pool of
//! connection threads, routing, and the graceful-drain protocol.
//!
//! ```text
//! POST   /jobs              submit a job spec            202 | 400 | 429 | 503
//! GET    /jobs              list all jobs                200
//! GET    /jobs/{id}         state + live phase metrics   200 | 404
//! GET    /jobs/{id}/front   final front (JSON)           200 | 404 | 409
//! GET    /jobs/{id}/trace   convergence trace (JSON)     200 | 404 | 409
//! GET    /jobs/{id}/events  telemetry JSONL stream       200 | 404
//! GET    /jobs/{id}/report  run-analysis report (JSON)   200 | 404 | 409 | 501
//! DELETE /jobs/{id}         cancel                       200 | 404 | 409
//! GET    /healthz           liveness probe (always 200)  200
//! GET    /readyz            readiness probe              200 | 503
//! GET    /metrics           server counters (JSON, or
//!                           Prometheus text with
//!                           ?format=prometheus or
//!                           Accept: text/plain)          200
//! POST   /shutdown          graceful drain, then exit 0  200
//! ```
//!
//! Liveness and readiness are deliberately split: `/healthz` answers
//! 200 as long as the process can serve HTTP at all (its body reports
//! `ready`/`disk_degraded` for observers), while `/readyz` turns 503
//! when the server is draining or the disk-health latch is set — a load
//! balancer should stop routing new submissions, but the process should
//! not be killed while it is still retrying jobs and serving reads.
//!
//! Every response carries `Connection: close`; every socket gets read
//! and write timeouts before a byte is parsed, so a stalled client can
//! never pin a connection thread. When all connection threads are busy
//! the accept loop answers a canned 503 inline instead of queueing
//! sockets without bound.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use moela_persist::{decode, Value};

use crate::error::ApiError;
use crate::http::{read_request, HttpError, Request, Response};
use crate::job::{JobRecord, JobState};
use crate::lock::lock;
use crate::manager::JobManager;
use crate::metrics::ServerMetrics;
use crate::runner::JobRunner;
use crate::supervise::SupervisePolicy;

/// Builds the run-analysis report for one finished job's run directory
/// (the `GET /jobs/{id}/report` body). Injected by the embedding binary
/// — the analysis lives above this crate — so the server stays free of
/// optimizer knowledge. Returns `Err` with a human-readable reason when
/// the run is not analyzable yet (mapped to 409).
#[derive(Clone)]
pub struct ReportBuilder(Arc<ReportFn>);

/// The closure shape behind [`ReportBuilder`].
type ReportFn = dyn Fn(&std::path::Path) -> Result<Value, String> + Send + Sync;

impl ReportBuilder {
    /// Wraps a report-building closure.
    pub fn new(
        f: impl Fn(&std::path::Path) -> Result<Value, String> + Send + Sync + 'static,
    ) -> Self {
        ReportBuilder(Arc::new(f))
    }

    /// Builds the report for `dir`.
    pub fn build(&self, dir: &std::path::Path) -> Result<Value, String> {
        (self.0)(dir)
    }
}

impl std::fmt::Debug for ReportBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReportBuilder(..)")
    }
}

/// Server tunables; every field has a sensible default via
/// [`ServeConfig::new`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7774` (port 0 for ephemeral).
    pub addr: String,
    /// Run-worker pool size (concurrent optimizer runs).
    pub workers: usize,
    /// Bounded submission-queue depth; beyond it, submissions get 429.
    pub queue_depth: usize,
    /// Directory that holds one `RunStore` per job.
    pub run_root: PathBuf,
    /// Connection-thread pool size.
    pub http_threads: usize,
    /// Socket read timeout (covers request parsing).
    pub read_timeout: Duration,
    /// Socket write timeout (covers response delivery).
    pub write_timeout: Duration,
    /// Request-body cap in bytes.
    pub max_body: usize,
    /// Job supervision: retry budget/backoff, stall detection, deadlines.
    pub supervise: SupervisePolicy,
    /// Optional run-analysis hook behind `GET /jobs/{id}/report`
    /// (absent → 501).
    pub report_builder: Option<ReportBuilder>,
}

impl ServeConfig {
    /// Defaults for everything except the address and run root.
    pub fn new(addr: impl Into<String>, run_root: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            workers: 2,
            queue_depth: 16,
            run_root: run_root.into(),
            http_threads: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: 256 * 1024,
            supervise: SupervisePolicy::default(),
            report_builder: None,
        }
    }
}

/// Shared state every connection thread sees.
struct ServerState {
    manager: Arc<JobManager>,
    metrics: Arc<ServerMetrics>,
    shutdown: AtomicBool,
    config: ServeConfig,
}

/// A bound, not-yet-serving job server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener, recovers jobs left in `run_root`, and starts
    /// the run-worker pool. No HTTP traffic is served until
    /// [`Server::run`].
    pub fn bind(config: ServeConfig, runner: Arc<dyn JobRunner>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = Arc::new(ServerMetrics::new());
        let manager = JobManager::start(
            config.run_root.clone(),
            config.queue_depth,
            config.workers,
            config.supervise.clone(),
            runner,
            Arc::clone(&metrics),
        )?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                manager,
                metrics,
                shutdown: AtomicBool::new(false),
                config,
            }),
        })
    }

    /// The bound address (the real port when the config asked for 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `POST /shutdown` drain completes. On return every
    /// running job has been parked at a checkpoint and the run-worker
    /// pool has exited; the caller can exit 0.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool_size = self.state.config.http_threads.max(1);
        let (tx, handles) = spawn_http_pool(Arc::clone(&self.state), pool_size);

        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // All connection threads busy: refuse inline so
                        // pending sockets never accumulate.
                        ServerMetrics::bump(&self.state.metrics.http_rejected);
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                        let _ = ApiError::new(503, "busy", "all connection threads busy")
                            .response()
                            .with_header("Retry-After", "1".into())
                            .write_to(&mut stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Stop accepting, let in-flight connections finish, then drain
        // the run workers (parking every running job at a checkpoint).
        drop(tx);
        for handle in handles {
            let _ = handle.join();
        }
        self.state.manager.drain();
        Ok(())
    }
}

/// Starts the connection-thread pool over a bounded channel; the bound
/// is what turns an overloaded pool into inline 503s.
fn spawn_http_pool(
    state: Arc<ServerState>,
    pool_size: usize,
) -> (SyncSender<TcpStream>, Vec<std::thread::JoinHandle<()>>) {
    let (tx, rx) = sync_channel::<TcpStream>(pool_size);
    let rx = Arc::new(Mutex::new(rx));
    let mut handles = Vec::with_capacity(pool_size);
    for n in 0..pool_size {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        handles.push(
            std::thread::Builder::new()
                .name(format!("moela-http-{n}"))
                .spawn(move || loop {
                    let stream = {
                        let guard: std::sync::MutexGuard<'_, Receiver<TcpStream>> = lock(&rx);
                        guard.recv()
                    };
                    match stream {
                        Ok(stream) => handle_connection(&state, stream),
                        Err(_) => return,
                    }
                })
                .expect("spawn http worker"),
        );
    }
    (tx, handles)
}

/// Parses one request off `stream`, routes it, writes the response.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let response = match read_request(&mut stream, state.config.max_body) {
        Ok(request) => {
            ServerMetrics::bump(&state.metrics.http_requests);
            if request.method == "GET"
                && request.path.starts_with("/jobs/")
                && request.path.ends_with("/events")
            {
                stream_events(state, &request, &mut stream);
                return;
            }
            route(state, &request).unwrap_or_else(|e| e.response())
        }
        Err(HttpError::Disconnected) => return,
        Err(e) => {
            ServerMetrics::bump(&state.metrics.http_rejected);
            match e {
                HttpError::Timeout => {
                    ApiError::new(408, "timeout", "request not received in time").response()
                }
                HttpError::TooLarge(msg) => ApiError::new(413, "too_large", msg).response(),
                HttpError::Malformed(msg) => ApiError::new(400, "malformed", msg).response(),
                HttpError::Disconnected => unreachable!("handled above"),
            }
        }
    };
    let _ = response.write_to(&mut stream);
}

/// Dispatches one parsed request.
fn route(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        // Liveness: always 200 while the process can answer HTTP; the
        // body carries the readiness detail for observers.
        ("GET", ["healthz"]) => {
            let draining = state.shutdown.load(Ordering::SeqCst);
            let degraded = state.metrics.is_disk_degraded();
            Ok(Response::json(
                200,
                &Value::object(vec![
                    ("ok", Value::Bool(!draining && !degraded)),
                    ("live", Value::Bool(true)),
                    ("ready", Value::Bool(!draining && !degraded)),
                    ("draining", Value::Bool(draining)),
                    ("disk_degraded", Value::Bool(degraded)),
                ]),
            ))
        }
        // Readiness: 503 while draining or disk-degraded so a load
        // balancer stops sending new work — without killing the process.
        ("GET", ["readyz"]) => {
            let draining = state.shutdown.load(Ordering::SeqCst);
            let degraded = state.metrics.is_disk_degraded();
            let ready = !draining && !degraded;
            Ok(Response::json(
                if ready { 200 } else { 503 },
                &Value::object(vec![
                    ("ready", Value::Bool(ready)),
                    ("draining", Value::Bool(draining)),
                    ("disk_degraded", Value::Bool(degraded)),
                ]),
            ))
        }
        ("GET", ["metrics"]) => {
            // Content negotiation: JSON stays the default so existing
            // scrapers are untouched; `?format=prometheus` (or an
            // `Accept: text/plain` scraper) gets the text exposition.
            let wants_text = req.query_param("format") == Some("prometheus")
                || req.header("accept").is_some_and(|a| a.contains("text/plain"));
            if wants_text {
                Ok(Response::prometheus(200, state.metrics.to_prometheus()))
            } else {
                Ok(Response::json(200, &state.metrics.to_value()))
            }
        }
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            Ok(Response::json(200, &Value::object(vec![("draining", Value::Bool(true))])))
        }
        ("POST", ["jobs"]) => {
            let spec = decode_body(&req.body)?;
            match state.manager.submit(&spec) {
                Ok(record) => Ok(Response::json(202, &record.to_value(true))),
                // A full queue is transient: tell the client when to retry.
                Err(e) if e.status == 429 => {
                    Ok(e.response().with_header("Retry-After", "1".into()))
                }
                Err(e) => Err(e),
            }
        }
        ("GET", ["jobs"]) => {
            let jobs: Vec<Value> = state.manager.list().iter().map(|r| r.to_value(false)).collect();
            Ok(Response::json(200, &Value::object(vec![("jobs", Value::Array(jobs))])))
        }
        ("GET", ["jobs", id]) => {
            let record = lookup(state, id)?;
            Ok(Response::json(200, &record.to_value(true)))
        }
        ("DELETE", ["jobs", id]) => {
            let record = state.manager.cancel(id)?;
            Ok(Response::json(200, &record.to_value(true)))
        }
        ("GET", ["jobs", id, "front"]) => artifact(state, id, "front.json"),
        ("GET", ["jobs", id, "trace"]) => artifact(state, id, "trace.json"),
        ("GET", ["jobs", id, "report"]) => {
            let record = lookup(state, id)?;
            let Some(builder) = &state.config.report_builder else {
                return Err(ApiError::new(
                    501,
                    "not_implemented",
                    "this server was started without a report builder",
                ));
            };
            match builder.build(&record.dir) {
                Ok(report) => Ok(Response::json(200, &report)),
                // The run is still producing artifacts (or crashed
                // before finishing): same contract as /front and /trace.
                Err(reason) => Err(ApiError::new(
                    409,
                    "not_ready",
                    format!("job {id} is {}; {reason}", record.state().name()),
                )),
            }
        }
        (_, ["healthz" | "readyz" | "metrics" | "shutdown" | "jobs", ..]) => Err(ApiError::new(
            405,
            "method_not_allowed",
            format!("{} is not supported on {}", req.method, req.path),
        )),
        _ => Err(ApiError::not_found(format!("no route for {}", req.path))),
    }
}

/// Looks up a job or 404s.
fn lookup(state: &ServerState, id: &str) -> Result<Arc<JobRecord>, ApiError> {
    state.manager.get(id).ok_or_else(|| ApiError::not_found(format!("no job {id}")))
}

/// Serves a finished job's JSON artifact straight off disk.
fn artifact(state: &ServerState, id: &str, file: &str) -> Result<Response, ApiError> {
    let record = lookup(state, id)?;
    let path = record.dir.join(file);
    match std::fs::read(&path) {
        Ok(bytes) => Ok(Response::json_bytes(200, bytes)),
        Err(_) => Err(ApiError::new(
            409,
            "not_ready",
            format!("job {id} is {}; {file} is not available yet", record.state().name()),
        )),
    }
}

/// Parses a request body as JSON.
fn decode_body(body: &[u8]) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    decode::from_str(text).map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))
}

/// Streams `events.jsonl` as newline-delimited JSON, following the file
/// until the job leaves the queued/running states (or the server starts
/// draining). The body is close-delimited — no `Content-Length` — which
/// is the one legal way to stream without chunked encoding.
fn stream_events(state: &ServerState, req: &Request, stream: &mut TcpStream) {
    use std::io::Write;

    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let id = segments.get(1).copied().unwrap_or_default();
    let record = match state.manager.get(id) {
        Some(record) => record,
        None => {
            let _ = ApiError::not_found(format!("no job {id}")).response().write_to(stream);
            return;
        }
    };
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let path = record.dir.join("events.jsonl");
    let mut offset: u64 = 0;
    loop {
        if let Ok(bytes) = std::fs::read(&path) {
            if (bytes.len() as u64) > offset {
                let fresh = &bytes[offset as usize..];
                if stream.write_all(fresh).is_err() {
                    return; // client went away
                }
                let _ = stream.flush();
                offset = bytes.len() as u64;
            }
        }
        let live =
            matches!(record.state(), JobState::Queued | JobState::Running | JobState::Stalled);
        if !live || state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{JobContext, RunError, RunOutcome};
    use moela_persist::RunStore;
    use std::io::{Read, Write};

    /// A runner that writes a front.json + an events line, then polls
    /// its cancel token for `steps` ticks (beating the heartbeat).
    struct StubRunner {
        steps: u64,
    }

    impl JobRunner for StubRunner {
        fn validate(&self, spec: &Value) -> Result<Value, String> {
            if spec.field_opt("algorithm").is_none() {
                return Err("spec needs an algorithm".into());
            }
            Ok(spec.clone())
        }

        fn run(&self, ctx: JobContext<'_>) -> Result<RunOutcome, RunError> {
            let store = RunStore::create(ctx.dir).map_err(|e| RunError::disk(e.to_string()))?;
            std::fs::write(store.events_path(), "{\"event\":\"started\"}\n")
                .map_err(|e| RunError::disk(e.to_string()))?;
            for _ in 0..self.steps {
                ctx.heartbeat.beat();
                if ctx.cancel.is_cancelled() {
                    return Ok(RunOutcome::Interrupted);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            store
                .write_front_json(&Value::object(vec![(
                    "objectives",
                    Value::Array(vec![Value::Array(vec![Value::F64(1.0), Value::F64(2.0)])]),
                )]))
                .map_err(|e| RunError::disk(e.to_string()))?;
            Ok(RunOutcome::Completed {
                summary: Value::object(vec![("evaluations", Value::U64(42))]),
            })
        }
    }

    /// Spawns a server on an ephemeral port; returns its address and the
    /// thread driving `run()`.
    fn serve(tag: &str, steps: u64, workers: usize, depth: usize) -> TestServer {
        let root =
            std::env::temp_dir().join(format!("moela-serve-http-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut config = ServeConfig::new("127.0.0.1:0", &root);
        config.workers = workers;
        config.queue_depth = depth;
        let server = Server::bind(config, Arc::new(StubRunner { steps })).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run());
        TestServer { addr, handle, root }
    }

    struct TestServer {
        addr: SocketAddr,
        handle: std::thread::JoinHandle<std::io::Result<()>>,
        root: PathBuf,
    }

    impl TestServer {
        /// Sends one request, returns (status, body).
        fn call(&self, method: &str, path: &str, body: &str) -> (u16, String) {
            let mut stream = TcpStream::connect(self.addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
            let req = format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            // The server may respond and close before the whole body is
            // written (oversized-body rejection), which surfaces here as
            // a broken pipe / reset; the response is still readable.
            let _ = stream.write_all(req.as_bytes());
            let mut raw = String::new();
            let mut buf = [0u8; 4096];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => raw.push_str(&String::from_utf8_lossy(&buf[..n])),
                    Err(_) if !raw.is_empty() => break,
                    Err(e) => panic!("recv: {e}"),
                }
            }
            let status: u16 = raw.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
            let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_owned();
            (status, body)
        }

        fn poll_until(&self, id: &str, state: &str) -> String {
            for _ in 0..600 {
                let (status, body) = self.call("GET", &format!("/jobs/{id}"), "");
                assert_eq!(status, 200, "{body}");
                if body.contains(&format!("\"state\":\"{state}\"")) {
                    return body;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            panic!("job {id} never reached {state}");
        }

        fn shutdown(self) {
            let (status, _) = self.call("POST", "/shutdown", "");
            assert_eq!(status, 200);
            self.handle.join().expect("server thread").expect("clean exit");
        }
    }

    #[test]
    fn health_metrics_and_unknown_routes() {
        let server = serve("basic", 1, 1, 4);
        let (status, body) = server.call("GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"), "{body}");
        assert!(body.contains("\"live\":true"), "{body}");
        assert!(body.contains("\"disk_degraded\":false"), "{body}");
        let (status, body) = server.call("GET", "/readyz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ready\":true"), "{body}");
        let (status, body) = server.call("GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs_submitted\":0"), "{body}");
        assert!(body.contains("\"jobs_quarantined\":0"), "{body}");
        let (status, body) = server.call("GET", "/nope", "");
        assert_eq!(status, 404);
        assert!(body.contains("\"code\":\"not_found\""), "{body}");
        let (status, body) = server.call("PUT", "/jobs", "");
        assert_eq!(status, 405, "{body}");
        server.shutdown();
    }

    #[test]
    fn metrics_exposes_prometheus_text_on_request() {
        let server = serve("prom", 1, 1, 4);
        let (status, body) = server.call("GET", "/metrics?format=prometheus", "");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE moela_serve_http_requests counter"), "{body}");
        assert!(body.contains("moela_serve_jobs_submitted 0"), "{body}");
        assert!(body.contains("moela_serve_disk_degraded 0"), "{body}");
        // The JSON default is untouched for existing scrapers.
        let (status, body) = server.call("GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.starts_with('{'), "{body}");
        assert!(body.contains("\"jobs_submitted\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn report_route_uses_the_injected_builder() {
        let root =
            std::env::temp_dir().join(format!("moela-serve-http-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut config = ServeConfig::new("127.0.0.1:0", &root);
        config.workers = 1;
        config.report_builder = Some(ReportBuilder::new(|dir| {
            if dir.join("front.json").is_file() {
                Ok(Value::object(vec![("report", Value::Bool(true))]))
            } else {
                Err("the run has not finished".into())
            }
        }));
        let server = Server::bind(config, Arc::new(StubRunner { steps: 200 })).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run());
        let server = TestServer { addr, handle, root };
        let (status, _) = server.call("POST", "/jobs", "{\"algorithm\":\"stub\"}");
        assert_eq!(status, 202);
        // ~1s of stub steps remain, so the report cannot be ready yet.
        let (status, body) = server.call("GET", "/jobs/job-000000/report", "");
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("\"code\":\"not_ready\""), "{body}");
        server.poll_until("job-000000", "done");
        let (status, body) = server.call("GET", "/jobs/job-000000/report", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"report\":true"), "{body}");
        let (status, _) = server.call("GET", "/jobs/job-999999/report", "");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn report_route_without_a_builder_is_501() {
        let server = serve("noreport", 1, 1, 4);
        let (status, _) = server.call("POST", "/jobs", "{\"algorithm\":\"stub\"}");
        assert_eq!(status, 202);
        server.poll_until("job-000000", "done");
        let (status, body) = server.call("GET", "/jobs/job-000000/report", "");
        assert_eq!(status, 501, "{body}");
        assert!(body.contains("\"code\":\"not_implemented\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn submit_poll_and_fetch_artifacts() {
        let server = serve("lifecycle", 2, 1, 4);
        let (status, body) = server.call("POST", "/jobs", "{\"algorithm\":\"stub\"}");
        assert_eq!(status, 202, "{body}");
        assert!(body.contains("\"id\":\"job-000000\""), "{body}");
        // The artifact is not there until the run completes.
        let (status, body) = server.call("GET", "/jobs/job-000000/front", "");
        if status != 200 {
            assert_eq!(status, 409, "{body}");
        }
        let body = server.poll_until("job-000000", "done");
        assert!(body.contains("\"summary\":{\"evaluations\":42}"), "{body}");
        let (status, body) = server.call("GET", "/jobs/job-000000/front", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"objectives\":[[1.0,2.0]]"), "{body}");
        let (status, body) = server.call("GET", "/jobs/job-000000/events", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"event\":\"started\""), "{body}");
        let (status, body) = server.call("GET", "/jobs", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs\":[{"), "{body}");
        let (status, _) = server.call("GET", "/jobs/job-999999", "");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn bad_specs_and_bodies_are_rejected() {
        let server = serve("reject", 1, 1, 4);
        let (status, body) = server.call("POST", "/jobs", "{\"population\":8}");
        assert_eq!(status, 400);
        assert!(body.contains("\"code\":\"invalid_spec\""), "{body}");
        let (status, body) = server.call("POST", "/jobs", "not json");
        assert_eq!(status, 400, "{body}");
        let huge = "x".repeat(300 * 1024);
        let (status, body) = server.call("POST", "/jobs", &huge);
        assert_eq!(status, 413, "{body}");
        server.shutdown();
    }

    #[test]
    fn full_queue_returns_429_with_retry_after() {
        let server = serve("backpressure", 100_000, 1, 1);
        let (status, _) = server.call("POST", "/jobs", "{\"algorithm\":\"stub\"}");
        assert_eq!(status, 202);
        server.poll_until("job-000000", "running");
        let (status, _) = server.call("POST", "/jobs", "{\"algorithm\":\"stub\"}");
        assert_eq!(status, 202);
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let body = "{\"algorithm\":\"stub\"}";
        stream
            .write_all(
                format!(
                    "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("recv");
        assert!(raw.starts_with("HTTP/1.1 429 "), "{raw}");
        assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
        assert!(raw.contains("\"code\":\"queue_full\""), "{raw}");
        // Cancel the running job so shutdown is prompt.
        let (status, _) = server.call("DELETE", "/jobs/job-000000", "");
        assert_eq!(status, 200);
        server.poll_until("job-000000", "cancelled");
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_running_jobs_to_interrupted() {
        let server = serve("drain", 100_000, 1, 4);
        let (status, _) = server.call("POST", "/jobs", "{\"algorithm\":\"stub\"}");
        assert_eq!(status, 202);
        server.poll_until("job-000000", "running");
        let root = server.root.clone();
        server.shutdown();
        let manifest = std::fs::read_to_string(root.join("job-000000").join("job.json"))
            .expect("job.json survives the drain");
        assert!(manifest.contains("\"state\":\"interrupted\""), "{manifest}");
    }
}
