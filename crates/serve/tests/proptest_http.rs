//! Property-based fuzzing of the hand-rolled HTTP/1.1 parser.
//!
//! The parser sits in front of every byte a client can send, so its
//! contract is absolute: for ANY input — random byte soup, truncated
//! heads, oversized lines, hostile Content-Lengths — it returns a
//! structured [`HttpError`] or a parsed request. It never panics and
//! never allocates past its caps. The parser is generic over `Read`,
//! so these cases drive it straight from in-memory cursors with no
//! sockets involved.

use std::io::Cursor;

use moela_serve::{read_request, HttpError};
use proptest::prelude::*;

/// The body cap used across the harness (small, so the TooLarge path
/// is reachable by generated Content-Lengths).
const MAX_BODY: usize = 4 * 1024;

/// Runs the parser over raw bytes; the return value only matters to
/// the cases that assert which structured outcome appeared.
fn parse(raw: &[u8]) -> Result<moela_serve::Request, HttpError> {
    read_request(&mut Cursor::new(raw.to_vec()), MAX_BODY)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup must produce a structured outcome, not a
    /// panic (the proptest runner turns any panic into a failure).
    #[test]
    fn byte_soup_never_panics(raw in proptest::collection::vec(0u8..=255u8, 0..2048)) {
        let _ = parse(&raw);
    }

    /// Mostly-textual soup exercises the request-line and header paths
    /// deeper than uniform bytes (which usually die on the first line).
    #[test]
    fn ascii_soup_never_panics(raw in proptest::collection::vec(9u8..=126u8, 0..2048)) {
        let _ = parse(&raw);
    }

    /// Every truncation of a valid request fails with a structured
    /// error — closed-mid-request or disconnected — never a panic, and
    /// never a phantom "parsed" request.
    #[test]
    fn truncated_heads_fail_structurally(cut in 0usize..55) {
        // The full request is 55 bytes; every strict prefix is truncated.
        let full = b"POST /jobs HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd";
        prop_assert!(cut < full.len());
        let err = parse(&full[..cut]).expect_err("a truncated request must not parse");
        prop_assert!(
            matches!(err, HttpError::Malformed(_) | HttpError::Disconnected),
            "unexpected error for cut {}: {:?}", cut, err
        );
    }

    /// A header line of any length past the cap is refused as TooLarge
    /// instead of being buffered without bound.
    #[test]
    fn oversized_header_lines_are_capped(extra in 0usize..4096) {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 4096 + extra));
        raw.extend_from_slice(b"\r\n\r\n");
        let err = parse(&raw).expect_err("oversized header must be refused");
        prop_assert!(matches!(err, HttpError::TooLarge(_)), "{:?}", err);
    }

    /// A Content-Length above the body cap is refused before any body
    /// byte is read, whatever the advertised size.
    #[test]
    fn oversized_bodies_are_refused_up_front(excess in 1u64..u32::MAX as u64) {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY as u64 + excess
        );
        let err = parse(raw.as_bytes()).expect_err("oversized body must be refused");
        prop_assert!(matches!(err, HttpError::TooLarge(_)), "{:?}", err);
    }

    /// Valid requests with arbitrary binary bodies round-trip exactly:
    /// fuzzing must not scare the parser off correct input.
    #[test]
    fn valid_requests_round_trip(body in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let mut raw = format!(
            "POST /jobs/fuzz HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let req = parse(&raw).expect("a well-formed request must parse");
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path.as_str(), "/jobs/fuzz");
        prop_assert_eq!(req.body, body);
    }
}
