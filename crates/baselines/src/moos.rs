//! MOOS (Deshwal et al., ACM TECS 2019): an ML-guided multi-objective
//! local-search framework that *learns which search direction to follow
//! next* — the paper's strongest prior-art baseline.
//!
//! Reimplemented from the published description:
//!
//! * a Pareto **archive** holds every non-dominated design found;
//! * the search proceeds in **episodes**: each episode picks a
//!   (start, direction) pair — the start from the archive, the direction
//!   from a fixed fan of scalarization weights — and runs a greedy
//!   weighted-sum descent, inserting accepted designs into the archive;
//! * a random forest learns `(start features ⧺ direction) → PHV gain`, and
//!   after a warm-up the next episode picks the candidate pair with the
//!   highest *predicted* gain (ε-greedy to keep exploring).
//!
//! The PHV-gain labels are exactly the "costly PHV calculations" MOELA's
//! §IV.A criticizes — they are recomputed after every episode here, which
//! is faithful to MOOS and is what the speed comparison measures.
//!
//! The run loop is exposed as a checkpointable state machine
//! ([`MoosState`], one step per episode).

use std::time::{Duration, Instant};

use rand::{Rng, RngCore};

use moela_ml::{Dataset, ForestConfig, RandomForest};
use moela_moo::archive::ParetoArchive;
use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{
    fault_log_from, is_quarantined, penalty_objectives, EvalFault, FaultConfig, FaultLog,
};
use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::scalarize::ReferencePoint;
use moela_moo::snapshot::{archive_from_value, archive_to_value};
use moela_moo::weights::uniform_weights;
use moela_moo::{GuardedEvaluator, Problem};
use moela_obs::Obs;
use moela_persist::{PersistError, Restore, Snapshot, SolutionCodec, Value};

use crate::common::{normalized_phv, weighted_descent};

/// MOOS parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MoosConfig {
    /// Number of search episodes.
    pub episodes: usize,
    /// Archive capacity (crowding-pruned beyond this).
    pub archive_cap: usize,
    /// Number of scalarization directions in the fan.
    pub directions: usize,
    /// Episodes with random (unguided) direction selection.
    pub warmup: usize,
    /// ε of the ε-greedy direction policy after warm-up.
    pub epsilon: f64,
    /// Greedy-descent step limit per episode.
    pub ls_max_steps: usize,
    /// Neighbors sampled per descent step.
    pub ls_neighbors_per_step: usize,
    /// Random-forest hyper-parameters of the gain model.
    pub forest: ForestConfig,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Fault-containment policy for evaluation (see
    /// [`moela_moo::GuardedEvaluator`]).
    pub fault: FaultConfig,
}

impl Default for MoosConfig {
    fn default() -> Self {
        Self {
            episodes: 60,
            archive_cap: 40,
            directions: 12,
            warmup: 8,
            epsilon: 0.3,
            ls_max_steps: 25,
            ls_neighbors_per_step: 4,
            forest: ForestConfig { trees: 25, bootstrap_size: Some(512), ..Default::default() },
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
            fault: FaultConfig::default(),
        }
    }
}

/// The MOOS optimizer bound to one problem.
///
/// # Example
///
/// ```
/// use moela_baselines::{Moos, MoosConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let config = MoosConfig { episodes: 5, ..Default::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = Moos::new(config, &problem).run(&mut rng);
/// assert!(!out.population.is_empty());
/// ```
#[derive(Debug)]
pub struct Moos<'p, P> {
    config: MoosConfig,
    problem: &'p P,
}

impl<'p, P: Problem> Moos<'p, P> {
    /// Binds a configuration to a problem.
    ///
    /// # Panics
    ///
    /// Panics if `episodes`, `archive_cap`, or `directions` is zero, or if
    /// `epsilon` leaves `[0, 1]`.
    pub fn new(config: MoosConfig, problem: &'p P) -> Self {
        assert!(config.episodes > 0, "episodes must be positive");
        assert!(config.archive_cap > 0, "archive capacity must be positive");
        assert!(config.directions > 0, "need at least one direction");
        assert!((0.0..=1.0).contains(&config.epsilon), "epsilon must lie in [0, 1]");
        Self { config, problem }
    }
}

impl<'p, P> Moos<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs MOOS and returns the archive (as the population) with its
    /// trace.
    ///
    /// Each descent step's neighbors are evaluated as one batch through a
    /// [`GuardedEvaluator`] sized by [`MoosConfig::threads`] — results
    /// are bit-identical for every thread count.
    pub fn run(&self, rng: &mut impl RngCore) -> RunResult<P::Solution> {
        let rng: &mut dyn RngCore = rng;
        let mut state = self.start(rng);
        while state.step(rng) {}
        state.finish()
    }

    /// Initializes a run (the seeded archive + episode-0 trace point) as
    /// a steppable state machine.
    pub fn start(&self, rng: &mut dyn RngCore) -> MoosState<'p, P> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let mut evaluator = GuardedEvaluator::new(cfg.threads, cfg.fault);
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };

        let mut archive: ParetoArchive<P::Solution> = ParetoArchive::bounded(cfg.archive_cap);
        let mut z = ReferencePoint::new(m);
        let mut normalizer = Normalizer::new(m);

        // Seed the archive with a handful of random designs; quarantined
        // seeds are simply not archived.
        for _ in 0..4 {
            let s = self.problem.random_solution(rng);
            let (o, attempts) = evaluator.evaluate_one(self.problem, &s);
            evaluations += attempts;
            if evaluator.poisoned() {
                break;
            }
            let Some(o) = o else { continue };
            if is_quarantined(&o) {
                continue;
            }
            z.update(&o);
            normalizer.observe(&o);
            recorder.observe(&o);
            archive.insert(s, o);
        }
        recorder.record(0, evaluations, start_time.elapsed(), &archive.objectives());
        let evaluator_poisoned = evaluator.poisoned();

        MoosState {
            config: cfg,
            problem: self.problem,
            evaluator,
            start_time,
            evaluations,
            recorder,
            archive,
            z,
            normalizer,
            train: Dataset::with_capacity(10_000),
            gain_model: None,
            episode: 0,
            finished: evaluator_poisoned,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        }
    }

    /// Rebuilds a mid-run state from a [`MoosState::snapshot_state`]
    /// value, with `elapsed` wall-clock time already consumed.
    pub fn restore<C: SolutionCodec<P::Solution>>(
        &self,
        codec: &C,
        value: &Value,
        elapsed: Duration,
    ) -> Result<MoosState<'p, P>, PersistError> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let archive = archive_from_value(value.field("archive")?, codec)?;
        let z = ReferencePoint::restore(value.field("z")?)?;
        let normalizer = Normalizer::restore(value.field("normalizer")?)?;
        if z.len() != m || normalizer.len() != m {
            return Err(PersistError::schema(
                "checkpointed reference/normalizer dimension mismatch",
            ));
        }
        let gain_model = match value.field("gain_model")? {
            Value::Null => None,
            v => Some(RandomForest::restore(v)?),
        };
        Ok(MoosState {
            evaluator: GuardedEvaluator::from_parts(
                cfg.threads,
                cfg.fault,
                fault_log_from(value, "faults")?,
            ),
            config: cfg,
            problem: self.problem,
            start_time: Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now),
            evaluations: value.field("evaluations")?.as_u64()?,
            recorder: TraceRecorder::restore(value.field("recorder")?)?,
            archive,
            z,
            normalizer,
            train: Dataset::restore(value.field("train")?)?,
            gain_model,
            episode: value.field("episode")?.as_usize()?,
            finished: value.field("finished")?.as_bool()?,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        })
    }
}

/// A MOOS run in progress, checkpointable between episodes.
#[derive(Debug)]
pub struct MoosState<'p, P: Problem> {
    config: MoosConfig,
    problem: &'p P,
    evaluator: GuardedEvaluator,
    start_time: Instant,
    evaluations: u64,
    recorder: TraceRecorder,
    archive: ParetoArchive<P::Solution>,
    z: ReferencePoint,
    normalizer: Normalizer,
    train: Dataset,
    gain_model: Option<RandomForest>,
    episode: usize,
    finished: bool,
    /// Telemetry handle (never checkpointed; disabled by default).
    obs: Obs,
    /// Cooperative cancellation flag (never checkpointed; inert
    /// unless the driver installs a shared token).
    cancel: CancelToken,
}

impl<'p, P> MoosState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Completed episodes.
    pub fn completed(&self) -> u64 {
        self.episode as u64
    }

    /// Objective evaluations paid for so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Installs the observability handle phase spans are reported
    /// through. Telemetry is write-only: it never alters an RNG draw,
    /// an evaluation, or a trace byte.
    /// Installs a cooperative cancellation token checked at step
    /// boundaries (see [`CancelToken`]).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.evaluator.set_obs(obs.clone());
        self.obs = obs;
    }

    fn budget_left(&self) -> bool {
        self.config.max_evaluations.is_none_or(|cap| self.evaluations < cap)
            && self.config.time_budget.is_none_or(|cap| self.start_time.elapsed() < cap)
    }

    /// Executes one episode. Returns `false` — drawing no RNG values —
    /// once the run has finished.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.cancel.is_cancelled() {
            // Cancelled at a step boundary: draw nothing, mutate
            // nothing, stay snapshottable and resumable.
            return false;
        }
        let mut rng = rng;
        if self.finished || self.episode >= self.config.episodes || self.evaluator.poisoned() {
            self.finished = true;
            return false;
        }
        if !self.budget_left() {
            self.finished = true;
            return false;
        }
        let episode = self.episode;
        let cfg = self.config.clone();
        let directions = uniform_weights(cfg.directions, self.problem.objective_count());

        // --- Pick (start, direction) --------------------------------
        let entries = self.archive.entries_view();
        // Keep the exact short-circuit order (the ε draw must only
        // happen past warm-up with a model), so a `match` rewrite
        // would change the RNG stream.
        #[allow(clippy::unnecessary_unwrap)]
        let (start, start_objs, weight) =
            if episode < cfg.warmup || self.gain_model.is_none() || rng.gen_bool(cfg.epsilon) {
                // Exploration: half the time restart from a fresh random
                // design (archive members are locally exhausted), half the
                // time re-descend an archive member in a random direction.
                let w = directions[rng.gen_range(0..directions.len())].clone();
                if entries.is_empty() || rng.gen_bool(0.5) {
                    let s = self.problem.random_solution(rng);
                    let (o, attempts) = self.evaluator.evaluate_one(self.problem, &s);
                    self.evaluations += attempts;
                    if self.evaluator.poisoned() {
                        self.finished = true;
                        return false;
                    }
                    // A quarantined fresh start still descends — from the
                    // penalty corner, where any real neighbor improves —
                    // but never touches the archive or the normalizer.
                    let o = match o {
                        Some(o) if !is_quarantined(&o) => {
                            self.z.update(&o);
                            self.normalizer.observe(&o);
                            self.recorder.observe(&o);
                            self.archive.insert(s.clone(), o.clone());
                            o
                        }
                        _ => penalty_objectives(self.problem.objective_count()),
                    };
                    (s, o, w)
                } else {
                    let (s, o) = &entries[rng.gen_range(0..entries.len())];
                    (s.clone(), o.clone(), w)
                }
            } else {
                let _predict = self.obs.span("surrogate_predict");
                let model = self.gain_model.as_ref().expect("checked above");
                let mut best: Option<(usize, usize, f64)> = None;
                for (si, (s, _)) in entries.iter().enumerate() {
                    let f_base = self.problem.features(s);
                    for (di, d) in directions.iter().enumerate() {
                        let mut f = f_base.clone();
                        f.extend_from_slice(d);
                        let pred = model.predict(&f);
                        if best.is_none_or(|(_, _, bp)| pred > bp) {
                            best = Some((si, di, pred));
                        }
                    }
                }
                match best {
                    Some((si, di, _)) => {
                        let (s, o) = &entries[si];
                        (s.clone(), o.clone(), directions[di].clone())
                    }
                    // Only reachable when chaos emptied the archive: fall
                    // back to an unevaluated random start at the penalty
                    // corner rather than indexing an empty archive.
                    None => {
                        let s = self.problem.random_solution(rng);
                        let o = penalty_objectives(self.problem.objective_count());
                        let w = directions[rng.gen_range(0..directions.len())].clone();
                        (s, o, w)
                    }
                }
            };

        // --- Episode: descend and archive ---------------------------
        let phv_before = normalized_phv(&self.archive.objectives(), &self.normalizer);
        let ls_span = self.obs.span("local_search");
        let (accepted, spent) = weighted_descent(
            self.problem,
            &start,
            &start_objs,
            &weight,
            self.z.values(),
            &self.normalizer,
            cfg.ls_max_steps,
            cfg.ls_neighbors_per_step,
            &mut self.evaluator,
            rng,
        );
        drop(ls_span);
        self.evaluations += spent;
        if self.evaluator.poisoned() {
            self.finished = true;
            return false;
        }
        {
            let _archive = self.obs.span("archive_update");
            let mut ls_improvements = 0u64;
            for (s, o) in accepted {
                self.z.update(&o);
                self.normalizer.observe(&o);
                self.recorder.observe(&o);
                if self.archive.insert(s, o) {
                    ls_improvements += 1;
                }
            }
            if ls_improvements > 0 {
                self.obs.counter(moela_obs::names::LS_IMPROVEMENTS, ls_improvements);
            }
        }
        let phv_after = normalized_phv(&self.archive.objectives(), &self.normalizer);

        // --- Learn the gain ----------------------------------------
        let mut features = self.problem.features(&start);
        features.extend_from_slice(&weight);
        self.train.push_finite(features, phv_after - phv_before);
        if episode + 1 >= cfg.warmup && self.train.len() >= 8 {
            let _fit = self.obs.span("surrogate_fit");
            self.gain_model = Some(RandomForest::fit(&self.train, &cfg.forest, &mut rng));
        }

        {
            let _archive = self.obs.span("archive_update");
            self.recorder.record(
                episode + 1,
                self.evaluations,
                self.start_time.elapsed(),
                &self.archive.objectives(),
            );
        }
        self.episode = episode + 1;
        self.obs.counter("generations", 1);
        self.obs.gauge("archive_size", self.archive.len() as f64);
        if let Some(point) = self.recorder.points().last() {
            self.obs.gauge("phv", point.phv);
        }
        true
    }

    /// Consumes the state, producing the final result.
    pub fn finish(self) -> RunResult<P::Solution> {
        RunResult {
            population: self.archive.into_entries(),
            trace: self.recorder.into_points(),
            evaluations: self.evaluations,
            elapsed: self.start_time.elapsed(),
        }
    }

    /// Captures the complete optimizer state (the RNG is checkpointed by
    /// the driver alongside).
    pub fn snapshot_state<C: SolutionCodec<P::Solution>>(&self, codec: &C) -> Value {
        Value::object(vec![
            ("episode", Value::U64(self.episode as u64)),
            ("finished", Value::Bool(self.finished)),
            ("evaluations", Value::U64(self.evaluations)),
            ("recorder", self.recorder.snapshot()),
            ("archive", archive_to_value(&self.archive, codec)),
            ("z", self.z.snapshot()),
            ("normalizer", self.normalizer.snapshot()),
            ("train", self.train.snapshot()),
            ("gain_model", self.gain_model.as_ref().map_or(Value::Null, Snapshot::snapshot)),
            ("faults", self.evaluator.log().snapshot()),
        ])
    }

    /// Fault counters accumulated by the guarded evaluator.
    pub fn fault_log(&self) -> &FaultLog {
        self.evaluator.log()
    }

    /// The latched `Fail`-policy fault, if one stopped the run.
    pub fn fault_error(&self) -> Option<&EvalFault> {
        self.evaluator.error()
    }
}

impl<'p, P, C> Resumable<C> for MoosState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    type Solution = P::Solution;

    fn completed(&self) -> u64 {
        MoosState::completed(self)
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        MoosState::step(self, rng)
    }

    fn snapshot_state(&self, codec: &C) -> Value {
        MoosState::snapshot_state(self, codec)
    }

    fn finish(self) -> RunResult<P::Solution> {
        MoosState::finish(self)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        Some(MoosState::fault_log(self))
    }

    fn fault_error(&self) -> Option<&EvalFault> {
        MoosState::fault_error(self)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        MoosState::set_cancel(self, token);
    }

    fn set_obs(&mut self, obs: Obs) {
        MoosState::set_obs(self, obs);
    }

    fn evaluations(&self) -> u64 {
        MoosState::evaluations(self)
    }

    fn latest_phv(&self) -> Option<f64> {
        self.recorder.points().last().map(|p| p.phv)
    }
}

/// A cheap borrowed view of archive entries (the archive does not expose
/// its internals mutably during an episode).
trait ArchiveView<S> {
    fn entries_view(&self) -> Vec<(S, Vec<f64>)>;
}

impl<S: Clone> ArchiveView<S> for ParetoArchive<S> {
    fn entries_view(&self) -> Vec<(S, Vec<f64>)> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::Zdt;
    use moela_persist::VecF64Codec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn archive_holds_only_nondominated_designs() {
        let problem = Zdt::zdt1(8);
        let config = MoosConfig { episodes: 10, ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(1));
        let objs: Vec<Vec<f64>> = out.population.iter().map(|(_, o)| o.clone()).collect();
        let idx = moela_moo::pareto::non_dominated_indices(&objs);
        assert_eq!(idx.len(), objs.len());
    }

    #[test]
    fn converges_toward_the_zdt1_front() {
        let problem = Zdt::zdt1(8);
        let config = MoosConfig { episodes: 60, ls_max_steps: 40, ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(2));
        let d = igd(&out.front_objectives(), &problem.true_front(100));
        assert!(d < 1.0, "IGD {d}");
    }

    #[test]
    fn phv_trace_improves() {
        let problem = Zdt::zdt1(8);
        let normalizer =
            moela_moo::normalize::Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 10.0]);
        let config =
            MoosConfig { episodes: 25, trace_normalizer: Some(normalizer), ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(3));
        assert!(out.trace.last().expect("non-empty").phv > out.trace[0].phv);
    }

    #[test]
    fn respects_the_evaluation_cap() {
        let problem = Zdt::zdt1(8);
        let config =
            MoosConfig { episodes: 10_000, max_evaluations: Some(400), ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(4));
        // One in-flight episode may overshoot by its own budget.
        assert!(out.evaluations <= 400 + 110, "evaluations {}", out.evaluations);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt2(8);
        let run = |threads: usize| {
            let config = MoosConfig { episodes: 12, threads, ..Default::default() };
            Moos::new(config, &problem).run(&mut rng(7))
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.evaluations, sequential.evaluations);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&parallel), objs(&sequential));
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = Zdt::zdt3(8);
        let config = MoosConfig { episodes: 12, ..Default::default() };
        let a = Moos::new(config.clone(), &problem).run(&mut rng(5));
        let b = Moos::new(config, &problem).run(&mut rng(5));
        assert_eq!(a.evaluations, b.evaluations);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&a), objs(&b));
    }

    /// Under injected chaos with a containment policy, a full MOOS run
    /// completes, its archive stays clean (finite, no penalty vectors),
    /// and results are bit-identical at any thread count.
    #[test]
    fn chaotic_runs_are_finite_and_thread_invariant() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.05,nan=0.05,arity=0.03").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 31);
            let config = MoosConfig {
                episodes: 8,
                warmup: 2,
                threads,
                fault: FaultConfig { policy: FaultPolicy::Skip, retries: 1 },
                ..Default::default()
            };
            let mut r = rng(13);
            let mut state = Moos::new(config, &problem).start(&mut r);
            while state.step(&mut r) {}
            let log = *state.fault_log();
            (state.finish(), log)
        };
        let (base, base_log) = run(1);
        assert!(base_log.faults() > 0, "the spec must actually inject");
        assert!(base
            .population
            .iter()
            .all(|(_, o)| o.iter().all(|v| v.is_finite()) && !moela_moo::fault::is_penalty(o)));
        for threads in [2, 4] {
            let (out, log) = run(threads);
            assert_eq!(out.evaluations, base.evaluations, "threads = {threads}");
            let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
                r.population.iter().map(|(_, o)| o.clone()).collect()
            };
            assert_eq!(objs(&out), objs(&base), "threads = {threads}");
            assert_eq!(log, base_log, "fault counters must not depend on threads");
        }
    }

    /// The default Fail policy latches the first fault as a structured
    /// error and stops the run instead of aborting the process.
    #[test]
    fn fail_policy_latches_a_structured_error() {
        use moela_moo::fault::FaultKind;
        use moela_moo::{ChaosProblem, ChaosSpec};
        let problem = ChaosProblem::new(Zdt::zdt1(6), ChaosSpec::parse("panic=1.0").unwrap(), 5);
        let config = MoosConfig { episodes: 10, ..Default::default() };
        let mut r = rng(1);
        let mut state = Moos::new(config, &problem).start(&mut r);
        assert!(!state.step(&mut r), "the poisoned guard must stop the run");
        let err = state.fault_error().expect("a latched error");
        assert_eq!(err.kind, FaultKind::Panic);
        let via_trait =
            <MoosState<_> as Resumable<VecF64Codec>>::fault_error(&state).expect("surfaced");
        assert_eq!(via_trait, err);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_at_every_boundary() {
        // Warmup 2 with 8 episodes exercises both the unguided and the
        // model-guided episode paths across the resume boundary.
        let problem = Zdt::zdt1(8);
        let config = MoosConfig { episodes: 8, warmup: 2, ..Default::default() };
        let moos = Moos::new(config.clone(), &problem);
        let baseline = Moos::new(config, &problem).run(&mut rng(51));

        for boundary in [0u64, 1, 2, 4, 7] {
            let mut r = rng(51);
            let mut state = moos.start(&mut r);
            while state.completed() < boundary && state.step(&mut r) {}
            let snap = state.snapshot_state(&VecF64Codec);
            let mut r2 = rand::rngs::StdRng::from_state(r.state());
            let mut resumed = moos.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
            while resumed.step(&mut r2) {}
            let out = resumed.finish();
            assert_eq!(out.evaluations, baseline.evaluations, "boundary {boundary}");
            let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
                r.population.iter().map(|(_, o)| o.clone()).collect()
            };
            assert_eq!(objs(&out), objs(&baseline), "boundary {boundary}");
            let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
                r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
            };
            assert_eq!(trace(&out), trace(&baseline), "boundary {boundary}");
        }
    }
}
