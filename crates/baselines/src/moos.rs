//! MOOS (Deshwal et al., ACM TECS 2019): an ML-guided multi-objective
//! local-search framework that *learns which search direction to follow
//! next* — the paper's strongest prior-art baseline.
//!
//! Reimplemented from the published description:
//!
//! * a Pareto **archive** holds every non-dominated design found;
//! * the search proceeds in **episodes**: each episode picks a
//!   (start, direction) pair — the start from the archive, the direction
//!   from a fixed fan of scalarization weights — and runs a greedy
//!   weighted-sum descent, inserting accepted designs into the archive;
//! * a random forest learns `(start features ⧺ direction) → PHV gain`, and
//!   after a warm-up the next episode picks the candidate pair with the
//!   highest *predicted* gain (ε-greedy to keep exploring).
//!
//! The PHV-gain labels are exactly the "costly PHV calculations" MOELA's
//! §IV.A criticizes — they are recomputed after every episode here, which
//! is faithful to MOOS and is what the speed comparison measures.

use std::time::{Duration, Instant};

use rand::{Rng, RngCore};

use moela_ml::{Dataset, ForestConfig, RandomForest};
use moela_moo::archive::ParetoArchive;
use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::scalarize::ReferencePoint;
use moela_moo::weights::uniform_weights;
use moela_moo::{ParallelEvaluator, Problem};

use crate::common::{normalized_phv, weighted_descent};

/// MOOS parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MoosConfig {
    /// Number of search episodes.
    pub episodes: usize,
    /// Archive capacity (crowding-pruned beyond this).
    pub archive_cap: usize,
    /// Number of scalarization directions in the fan.
    pub directions: usize,
    /// Episodes with random (unguided) direction selection.
    pub warmup: usize,
    /// ε of the ε-greedy direction policy after warm-up.
    pub epsilon: f64,
    /// Greedy-descent step limit per episode.
    pub ls_max_steps: usize,
    /// Neighbors sampled per descent step.
    pub ls_neighbors_per_step: usize,
    /// Random-forest hyper-parameters of the gain model.
    pub forest: ForestConfig,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
}

impl Default for MoosConfig {
    fn default() -> Self {
        Self {
            episodes: 60,
            archive_cap: 40,
            directions: 12,
            warmup: 8,
            epsilon: 0.3,
            ls_max_steps: 25,
            ls_neighbors_per_step: 4,
            forest: ForestConfig { trees: 25, bootstrap_size: Some(512), ..Default::default() },
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
        }
    }
}

/// The MOOS optimizer bound to one problem.
///
/// # Example
///
/// ```
/// use moela_baselines::{Moos, MoosConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let config = MoosConfig { episodes: 5, ..Default::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = Moos::new(config, &problem).run(&mut rng);
/// assert!(!out.population.is_empty());
/// ```
#[derive(Debug)]
pub struct Moos<'p, P> {
    config: MoosConfig,
    problem: &'p P,
}

impl<'p, P: Problem> Moos<'p, P> {
    /// Binds a configuration to a problem.
    ///
    /// # Panics
    ///
    /// Panics if `episodes`, `archive_cap`, or `directions` is zero, or if
    /// `epsilon` leaves `[0, 1]`.
    pub fn new(config: MoosConfig, problem: &'p P) -> Self {
        assert!(config.episodes > 0, "episodes must be positive");
        assert!(config.archive_cap > 0, "archive capacity must be positive");
        assert!(config.directions > 0, "need at least one direction");
        assert!((0.0..=1.0).contains(&config.epsilon), "epsilon must lie in [0, 1]");
        Self { config, problem }
    }
}

impl<'p, P> Moos<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs MOOS and returns the archive (as the population) with its
    /// trace.
    ///
    /// Each descent step's neighbors are evaluated as one batch through a
    /// [`ParallelEvaluator`] sized by [`MoosConfig::threads`] — results
    /// are bit-identical for every thread count.
    pub fn run(&self, rng: &mut impl RngCore) -> RunResult<P::Solution> {
        let mut rng: &mut dyn RngCore = rng;
        let cfg = &self.config;
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let evaluator = ParallelEvaluator::new(cfg.threads);
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };

        let directions = uniform_weights(cfg.directions, m);
        let mut archive: ParetoArchive<P::Solution> = ParetoArchive::bounded(cfg.archive_cap);
        let mut z = ReferencePoint::new(m);
        let mut normalizer = Normalizer::new(m);

        // Seed the archive with a handful of random designs.
        for _ in 0..4 {
            let s = self.problem.random_solution(rng);
            let o = self.problem.evaluate(&s);
            evaluations += 1;
            z.update(&o);
            normalizer.observe(&o);
            recorder.observe(&o);
            archive.insert(s, o);
        }
        recorder.record(0, evaluations, start_time.elapsed(), &archive.objectives());

        let mut train = Dataset::with_capacity(10_000);
        let mut gain_model: Option<RandomForest> = None;

        let budget_left = |evaluations: u64| {
            cfg.max_evaluations.is_none_or(|cap| evaluations < cap)
                && cfg.time_budget.is_none_or(|cap| start_time.elapsed() < cap)
        };

        for episode in 0..cfg.episodes {
            if !budget_left(evaluations) {
                break;
            }
            // --- Pick (start, direction) --------------------------------
            let entries = archive.entries_view();
            // Keep the exact short-circuit order (the ε draw must only
            // happen past warm-up with a model), so a `match` rewrite
            // would change the RNG stream.
            #[allow(clippy::unnecessary_unwrap)]
            let (start, start_objs, weight) =
                if episode < cfg.warmup || gain_model.is_none() || rng.gen_bool(cfg.epsilon) {
                    // Exploration: half the time restart from a fresh random
                    // design (archive members are locally exhausted), half the
                    // time re-descend an archive member in a random direction.
                    let w = directions[rng.gen_range(0..directions.len())].clone();
                    if rng.gen_bool(0.5) {
                        let s = self.problem.random_solution(rng);
                        let o = self.problem.evaluate(&s);
                        evaluations += 1;
                        z.update(&o);
                        normalizer.observe(&o);
                        recorder.observe(&o);
                        archive.insert(s.clone(), o.clone());
                        (s, o, w)
                    } else {
                        let (s, o) = &entries[rng.gen_range(0..entries.len())];
                        (s.clone(), o.clone(), w)
                    }
                } else {
                    let model = gain_model.as_ref().expect("checked above");
                    let mut best: Option<(usize, usize, f64)> = None;
                    for (si, (s, _)) in entries.iter().enumerate() {
                        let f_base = self.problem.features(s);
                        for (di, d) in directions.iter().enumerate() {
                            let mut f = f_base.clone();
                            f.extend_from_slice(d);
                            let pred = model.predict(&f);
                            if best.is_none_or(|(_, _, bp)| pred > bp) {
                                best = Some((si, di, pred));
                            }
                        }
                    }
                    let (si, di, _) = best.expect("archive is non-empty");
                    let (s, o) = &entries[si];
                    (s.clone(), o.clone(), directions[di].clone())
                };

            // --- Episode: descend and archive ---------------------------
            let phv_before = normalized_phv(&archive.objectives(), &normalizer);
            let (accepted, spent) = weighted_descent(
                self.problem,
                &start,
                &start_objs,
                &weight,
                z.values(),
                &normalizer,
                cfg.ls_max_steps,
                cfg.ls_neighbors_per_step,
                &evaluator,
                rng,
            );
            evaluations += spent;
            for (s, o) in accepted {
                z.update(&o);
                normalizer.observe(&o);
                recorder.observe(&o);
                archive.insert(s, o);
            }
            let phv_after = normalized_phv(&archive.objectives(), &normalizer);

            // --- Learn the gain ----------------------------------------
            let mut features = self.problem.features(&start);
            features.extend_from_slice(&weight);
            train.push(features, phv_after - phv_before);
            if episode + 1 >= cfg.warmup && train.len() >= 8 {
                gain_model = Some(RandomForest::fit(&train, &cfg.forest, &mut rng));
            }

            recorder.record(episode + 1, evaluations, start_time.elapsed(), &archive.objectives());
        }

        RunResult {
            population: archive.into_entries(),
            trace: recorder.into_points(),
            evaluations,
            elapsed: start_time.elapsed(),
        }
    }
}

/// A cheap borrowed view of archive entries (the archive does not expose
/// its internals mutably during an episode).
trait ArchiveView<S> {
    fn entries_view(&self) -> Vec<(S, Vec<f64>)>;
}

impl<S: Clone> ArchiveView<S> for ParetoArchive<S> {
    fn entries_view(&self) -> Vec<(S, Vec<f64>)> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::Zdt;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn archive_holds_only_nondominated_designs() {
        let problem = Zdt::zdt1(8);
        let config = MoosConfig { episodes: 10, ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(1));
        let objs: Vec<Vec<f64>> = out.population.iter().map(|(_, o)| o.clone()).collect();
        let idx = moela_moo::pareto::non_dominated_indices(&objs);
        assert_eq!(idx.len(), objs.len());
    }

    #[test]
    fn converges_toward_the_zdt1_front() {
        let problem = Zdt::zdt1(8);
        let config = MoosConfig { episodes: 60, ls_max_steps: 40, ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(2));
        let d = igd(&out.front_objectives(), &problem.true_front(100));
        assert!(d < 1.0, "IGD {d}");
    }

    #[test]
    fn phv_trace_improves() {
        let problem = Zdt::zdt1(8);
        let normalizer =
            moela_moo::normalize::Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 10.0]);
        let config =
            MoosConfig { episodes: 25, trace_normalizer: Some(normalizer), ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(3));
        assert!(out.trace.last().expect("non-empty").phv > out.trace[0].phv);
    }

    #[test]
    fn respects_the_evaluation_cap() {
        let problem = Zdt::zdt1(8);
        let config =
            MoosConfig { episodes: 10_000, max_evaluations: Some(400), ..Default::default() };
        let out = Moos::new(config, &problem).run(&mut rng(4));
        // One in-flight episode may overshoot by its own budget.
        assert!(out.evaluations <= 400 + 110, "evaluations {}", out.evaluations);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt2(8);
        let run = |threads: usize| {
            let config = MoosConfig { episodes: 12, threads, ..Default::default() };
            Moos::new(config, &problem).run(&mut rng(7))
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.evaluations, sequential.evaluations);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&parallel), objs(&sequential));
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = Zdt::zdt3(8);
        let config = MoosConfig { episodes: 12, ..Default::default() };
        let a = Moos::new(config.clone(), &problem).run(&mut rng(5));
        let b = Moos::new(config, &problem).run(&mut rng(5));
        assert_eq!(a.evaluations, b.evaluations);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&a), objs(&b));
    }
}
