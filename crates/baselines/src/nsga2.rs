//! NSGA-II (Deb et al., 2002): the classic Pareto-ranking evolutionary
//! baseline (the paper's reference \[4\]).
//!
//! The run loop is exposed as a checkpointable state machine
//! ([`Nsga2State`], one step per generation).

use std::time::{Duration, Instant};

use rand::{Rng, RngCore};

use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{fault_log_from, is_quarantined, EvalFault, FaultConfig, FaultLog};
use moela_moo::pareto::{crowding_distance, non_dominated_sort};
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::snapshot::{entries_from_value, entries_to_value};
use moela_moo::{GuardedEvaluator, Problem};
use moela_obs::Obs;
use moela_persist::{PersistError, Restore, Snapshot, SolutionCodec, Value};

/// NSGA-II parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Nsga2Config {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Fault-containment policy for evaluation (see
    /// [`moela_moo::GuardedEvaluator`]).
    pub fault: FaultConfig,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population: 50,
            generations: 100,
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
            fault: FaultConfig::default(),
        }
    }
}

/// The NSGA-II optimizer bound to one problem.
///
/// # Example
///
/// ```
/// use moela_baselines::{Nsga2, Nsga2Config};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let config = Nsga2Config { population: 12, generations: 5, ..Default::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = Nsga2::new(config, &problem).run(&mut rng);
/// assert_eq!(out.population.len(), 12);
/// ```
#[derive(Debug)]
pub struct Nsga2<'p, P> {
    config: Nsga2Config,
    problem: &'p P,
}

impl<'p, P: Problem> Nsga2<'p, P> {
    /// Binds a configuration to a problem.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2`.
    pub fn new(config: Nsga2Config, problem: &'p P) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        Self { config, problem }
    }
}

impl<'p, P> Nsga2<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs NSGA-II and returns the final population with its trace.
    ///
    /// Each generation's offspring are generated sequentially from `rng`,
    /// then evaluated as one batch through a [`GuardedEvaluator`] sized
    /// by [`Nsga2Config::threads`] — results are bit-identical for every
    /// thread count. When the evaluation budget runs out mid-generation,
    /// the partial offspring batch still enters environmental selection
    /// (those evaluations are paid for) and the trace records it.
    pub fn run(&self, rng: &mut impl RngCore) -> RunResult<P::Solution> {
        let rng: &mut dyn RngCore = rng;
        let mut state = self.start(rng);
        while state.step(rng) {}
        state.finish()
    }

    /// Initializes a run (random population + generation-0 trace point)
    /// as a steppable state machine.
    pub fn start(&self, rng: &mut dyn RngCore) -> Nsga2State<'p, P> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let mut evaluator = GuardedEvaluator::new(cfg.threads, cfg.fault);
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };

        let candidates: Vec<P::Solution> =
            (0..cfg.population).map(|_| self.problem.random_solution(rng)).collect();
        let batch = evaluator.evaluate(self.problem, &candidates);
        evaluations += batch.attempts;
        // Dropped initial slots are materialized as penalty vectors so the
        // population keeps its size; penalty members sink to the last front
        // and are bred out, and they never feed the trace normalizer.
        let pop: Vec<(P::Solution, Vec<f64>)> = candidates
            .into_iter()
            .zip(batch.materialized(m))
            .map(|(s, o)| {
                if !is_quarantined(&o) {
                    recorder.observe(&o);
                }
                (s, o)
            })
            .collect();
        let objs: Vec<Vec<f64>> = pop.iter().map(|(_, o)| o.clone()).collect();
        recorder.record(0, evaluations, start_time.elapsed(), &objs);
        let evaluator_poisoned = evaluator.poisoned();

        Nsga2State {
            config: cfg,
            problem: self.problem,
            evaluator,
            start_time,
            evaluations,
            recorder,
            pop,
            generation: 0,
            finished: evaluator_poisoned,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        }
    }

    /// Rebuilds a mid-run state from a [`Nsga2State::snapshot_state`]
    /// value, with `elapsed` wall-clock time already consumed.
    pub fn restore<C: SolutionCodec<P::Solution>>(
        &self,
        codec: &C,
        value: &Value,
        elapsed: Duration,
    ) -> Result<Nsga2State<'p, P>, PersistError> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let pop = entries_from_value(value.field("population")?, codec)?;
        if pop.is_empty() {
            return Err(PersistError::schema("checkpointed population is empty"));
        }
        if pop.iter().any(|(_, o)| o.len() != m) {
            return Err(PersistError::schema("checkpointed objective dimensionality mismatch"));
        }
        Ok(Nsga2State {
            evaluator: GuardedEvaluator::from_parts(
                cfg.threads,
                cfg.fault,
                fault_log_from(value, "faults")?,
            ),
            config: cfg,
            problem: self.problem,
            start_time: Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now),
            evaluations: value.field("evaluations")?.as_u64()?,
            recorder: TraceRecorder::restore(value.field("recorder")?)?,
            pop,
            generation: value.field("generation")?.as_usize()?,
            finished: value.field("finished")?.as_bool()?,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        })
    }
}

/// An NSGA-II run in progress, checkpointable between generations.
#[derive(Debug)]
pub struct Nsga2State<'p, P: Problem> {
    config: Nsga2Config,
    problem: &'p P,
    evaluator: GuardedEvaluator,
    start_time: Instant,
    evaluations: u64,
    recorder: TraceRecorder,
    pop: Vec<(P::Solution, Vec<f64>)>,
    generation: usize,
    finished: bool,
    /// Telemetry handle (never checkpointed; disabled by default).
    obs: Obs,
    /// Cooperative cancellation flag (never checkpointed; inert
    /// unless the driver installs a shared token).
    cancel: CancelToken,
}

impl<'p, P> Nsga2State<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Completed generations.
    pub fn completed(&self) -> u64 {
        self.generation as u64
    }

    /// Objective evaluations paid for so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Installs the observability handle phase spans are reported
    /// through. Telemetry is write-only: it never alters an RNG draw,
    /// an evaluation, or a trace byte.
    /// Installs a cooperative cancellation token checked at step
    /// boundaries (see [`CancelToken`]).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.evaluator.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Executes one generation. Returns `false` — drawing no RNG values —
    /// once the run has finished.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.cancel.is_cancelled() {
            // Cancelled at a step boundary: draw nothing, mutate
            // nothing, stay snapshottable and resumable.
            return false;
        }
        if self.finished || self.generation >= self.config.generations || self.evaluator.poisoned()
        {
            self.finished = true;
            return false;
        }
        let cfg = &self.config;
        let generation = self.generation;
        if cfg.time_budget.is_some_and(|cap| self.start_time.elapsed() >= cap) {
            self.finished = true;
            return false;
        }
        // Cap the offspring batch to the remaining evaluation budget;
        // a partial batch is still selected over and recorded.
        let remaining =
            cfg.max_evaluations.map_or(u64::MAX, |cap| cap.saturating_sub(self.evaluations));
        if remaining == 0 {
            self.finished = true;
            return false;
        }
        let n_children = remaining.min(cfg.population as u64) as usize;
        let partial = n_children < cfg.population;

        // Rank the current population for tournament selection.
        let rank_span = self.obs.span("select");
        let objs: Vec<Vec<f64>> = self.pop.iter().map(|(_, o)| o.clone()).collect();
        let fronts = non_dominated_sort(&objs);
        let mut rank = vec![0usize; self.pop.len()];
        let mut crowd = vec![0.0f64; self.pop.len()];
        for (r, front) in fronts.iter().enumerate() {
            let front_objs: Vec<Vec<f64>> = front.iter().map(|&i| objs[i].clone()).collect();
            let d = crowding_distance(&front_objs);
            for (&i, &di) in front.iter().zip(&d) {
                rank[i] = r;
                crowd[i] = di;
            }
        }
        let n = self.pop.len();
        let tournament = |rng: &mut dyn RngCore| -> usize {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                a
            } else {
                b
            }
        };
        drop(rank_span);

        // Offspring generation: children first (sequential RNG), then
        // one batched evaluation.
        let mate_span = self.obs.span("mate");
        let children: Vec<P::Solution> = (0..n_children)
            .map(|_| {
                let pa = tournament(rng);
                let pb = tournament(rng);
                self.problem.crossover(&self.pop[pa].0, &self.pop[pb].0, rng)
            })
            .collect();
        drop(mate_span);
        let batch = self.evaluator.evaluate(self.problem, &children);
        self.evaluations += batch.attempts;
        if self.evaluator.poisoned() {
            self.finished = true;
            return false;
        }
        // Skipped offspring simply shrink the batch — environmental
        // selection handles a smaller parents ∪ offspring pool.
        let offspring: Vec<(P::Solution, Vec<f64>)> = children
            .into_iter()
            .zip(batch.objectives)
            .filter_map(|(child, o)| o.map(|o| (child, o)))
            .filter(|(_, o)| !is_quarantined(o))
            .map(|(child, o)| {
                self.recorder.observe(&o);
                (child, o)
            })
            .collect();

        // Environmental selection over parents ∪ offspring.
        {
            let _select = self.obs.span("select");
            let offspring_objs: Vec<Vec<f64>> = offspring.iter().map(|(_, o)| o.clone()).collect();
            self.pop.extend(offspring);
            self.pop = environmental_selection(std::mem::take(&mut self.pop), cfg.population);
            // Operator attribution (telemetry only): offspring that won
            // a slot in the next generation, matched multiset-style by
            // their bit-exact objective vectors.
            let mut unmatched = offspring_objs;
            let survivors = self
                .pop
                .iter()
                .filter(|(_, objs)| match unmatched.iter().position(|o| o == objs) {
                    Some(i) => {
                        unmatched.swap_remove(i);
                        true
                    }
                    None => false,
                })
                .count() as u64;
            if survivors > 0 {
                self.obs.counter(moela_obs::names::EA_IMPROVEMENTS, survivors);
            }
        }
        let objs: Vec<Vec<f64>> = self.pop.iter().map(|(_, o)| o.clone()).collect();
        {
            let _archive = self.obs.span("archive_update");
            self.recorder.record(
                generation + 1,
                self.evaluations,
                self.start_time.elapsed(),
                &objs,
            );
        }
        self.generation = generation + 1;
        self.obs.counter("generations", 1);
        if let Some(point) = self.recorder.points().last() {
            self.obs.gauge("phv", point.phv);
        }
        if partial {
            self.finished = true;
            return false;
        }
        true
    }

    /// Consumes the state, producing the final result.
    pub fn finish(self) -> RunResult<P::Solution> {
        RunResult {
            population: self.pop,
            trace: self.recorder.into_points(),
            evaluations: self.evaluations,
            elapsed: self.start_time.elapsed(),
        }
    }

    /// Captures the complete optimizer state (the RNG is checkpointed by
    /// the driver alongside).
    pub fn snapshot_state<C: SolutionCodec<P::Solution>>(&self, codec: &C) -> Value {
        Value::object(vec![
            ("generation", Value::U64(self.generation as u64)),
            ("finished", Value::Bool(self.finished)),
            ("evaluations", Value::U64(self.evaluations)),
            ("recorder", self.recorder.snapshot()),
            ("population", entries_to_value(&self.pop, codec)),
            ("faults", self.evaluator.log().snapshot()),
        ])
    }

    /// Fault counters accumulated by the guarded evaluator.
    pub fn fault_log(&self) -> &FaultLog {
        self.evaluator.log()
    }

    /// The latched `Fail`-policy fault, if one stopped the run.
    pub fn fault_error(&self) -> Option<&EvalFault> {
        self.evaluator.error()
    }
}

impl<'p, P, C> Resumable<C> for Nsga2State<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    type Solution = P::Solution;

    fn completed(&self) -> u64 {
        Nsga2State::completed(self)
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        Nsga2State::step(self, rng)
    }

    fn snapshot_state(&self, codec: &C) -> Value {
        Nsga2State::snapshot_state(self, codec)
    }

    fn finish(self) -> RunResult<P::Solution> {
        Nsga2State::finish(self)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        Some(Nsga2State::fault_log(self))
    }

    fn fault_error(&self) -> Option<&EvalFault> {
        Nsga2State::fault_error(self)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        Nsga2State::set_cancel(self, token);
    }

    fn set_obs(&mut self, obs: Obs) {
        Nsga2State::set_obs(self, obs);
    }

    fn evaluations(&self) -> u64 {
        Nsga2State::evaluations(self)
    }

    fn latest_phv(&self) -> Option<f64> {
        self.recorder.points().last().map(|p| p.phv)
    }
}

/// NSGA-II's survival step: fill by fronts, break the last front by
/// crowding distance.
fn environmental_selection<S: Clone>(
    combined: Vec<(S, Vec<f64>)>,
    keep: usize,
) -> Vec<(S, Vec<f64>)> {
    let objs: Vec<Vec<f64>> = combined.iter().map(|(_, o)| o.clone()).collect();
    let fronts = non_dominated_sort(&objs);
    let mut selected: Vec<usize> = Vec::with_capacity(keep);
    for front in fronts {
        if selected.len() + front.len() <= keep {
            selected.extend(front);
        } else {
            let front_objs: Vec<Vec<f64>> = front.iter().map(|&i| objs[i].clone()).collect();
            let d = crowding_distance(&front_objs);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| d[b].total_cmp(&d[a]));
            for &local in order.iter().take(keep - selected.len()) {
                selected.push(front[local]);
            }
            break;
        }
    }
    selected.into_iter().map(|i| combined[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::Zdt;
    use moela_persist::VecF64Codec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn converges_toward_the_zdt1_front() {
        let problem = Zdt::zdt1(8);
        let config = Nsga2Config { population: 24, generations: 60, ..Default::default() };
        let out = Nsga2::new(config, &problem).run(&mut rng(1));
        let d = igd(&out.front_objectives(), &problem.true_front(100));
        assert!(d < 0.3, "IGD {d}");
    }

    #[test]
    fn environmental_selection_prefers_lower_fronts() {
        let combined = vec![
            ("good1", vec![0.0, 1.0]),
            ("good2", vec![1.0, 0.0]),
            ("bad1", vec![2.0, 2.0]),
            ("bad2", vec![3.0, 3.0]),
        ];
        let kept = environmental_selection(combined, 2);
        let names: Vec<&str> = kept.iter().map(|(s, _)| *s).collect();
        assert!(names.contains(&"good1") && names.contains(&"good2"));
    }

    #[test]
    fn environmental_selection_breaks_ties_by_crowding() {
        // One front of 4; keep 3: the most crowded interior point drops.
        let combined = vec![
            ("left", vec![0.0, 10.0]),
            ("mid1", vec![4.9, 5.1]),
            ("mid2", vec![5.0, 5.0]),
            ("right", vec![10.0, 0.0]),
        ];
        let kept = environmental_selection(combined, 3);
        let names: Vec<&str> = kept.iter().map(|(s, _)| *s).collect();
        assert!(names.contains(&"left") && names.contains(&"right"));
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn population_size_is_stable() {
        let problem = Zdt::zdt6(6);
        let config = Nsga2Config { population: 14, generations: 8, ..Default::default() };
        let out = Nsga2::new(config, &problem).run(&mut rng(2));
        assert_eq!(out.population.len(), 14);
    }

    #[test]
    fn respects_the_evaluation_cap() {
        let problem = Zdt::zdt1(8);
        // 205 forces a partial (5-child) final generation.
        let config = Nsga2Config {
            population: 10,
            generations: 10_000,
            max_evaluations: Some(205),
            ..Default::default()
        };
        let out = Nsga2::new(config, &problem).run(&mut rng(3));
        assert_eq!(out.evaluations, 205, "batches are capped to the remaining budget");
        assert_eq!(out.population.len(), 10, "partial offspring still face selection");
        let last = out.trace.last().expect("non-empty trace");
        assert_eq!(
            last.evaluations, out.evaluations,
            "the partial final generation must still reach the trace"
        );
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt3(8);
        let run = |threads: usize| {
            let config =
                Nsga2Config { population: 12, generations: 8, threads, ..Default::default() };
            Nsga2::new(config, &problem).run(&mut rng(5))
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.population, sequential.population);
        assert_eq!(parallel.evaluations, sequential.evaluations);
    }

    /// Under injected chaos with a containment policy, a full NSGA-II run
    /// completes, stays finite, and is bit-identical at any thread count.
    #[test]
    fn chaotic_runs_are_finite_and_thread_invariant() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.05,nan=0.05,inf=0.03,arity=0.03").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 31);
            let config = Nsga2Config {
                population: 10,
                generations: 6,
                threads,
                fault: FaultConfig { policy: FaultPolicy::Skip, retries: 1 },
                ..Default::default()
            };
            let mut r = rng(13);
            let mut state = Nsga2::new(config, &problem).start(&mut r);
            while state.step(&mut r) {}
            let log = *state.fault_log();
            (state.finish(), log)
        };
        let (base, base_log) = run(1);
        assert!(base_log.faults() > 0, "the spec must actually inject");
        assert!(base.population.iter().all(|(_, o)| o.iter().all(|v| v.is_finite())));
        for threads in [2, 4] {
            let (out, log) = run(threads);
            assert_eq!(out.population, base.population, "threads = {threads}");
            assert_eq!(out.evaluations, base.evaluations);
            assert_eq!(log, base_log, "fault counters must not depend on threads");
        }
    }

    /// The default Fail policy latches the first fault as a structured
    /// error and stops the run instead of aborting the process.
    #[test]
    fn fail_policy_latches_a_structured_error() {
        use moela_moo::fault::FaultKind;
        use moela_moo::{ChaosProblem, ChaosSpec};
        let problem = ChaosProblem::new(Zdt::zdt1(6), ChaosSpec::parse("panic=1.0").unwrap(), 5);
        let config = Nsga2Config { population: 6, generations: 10, ..Default::default() };
        let mut r = rng(1);
        let mut state = Nsga2::new(config, &problem).start(&mut r);
        assert!(!state.step(&mut r), "the poisoned guard must stop the run");
        let err = state.fault_error().expect("a latched error");
        assert_eq!(err.kind, FaultKind::Panic);
        let via_trait =
            <Nsga2State<_> as Resumable<VecF64Codec>>::fault_error(&state).expect("surfaced");
        assert_eq!(via_trait, err);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_at_every_boundary() {
        let problem = Zdt::zdt1(8);
        let config = Nsga2Config { population: 10, generations: 6, ..Default::default() };
        let nsga2 = Nsga2::new(config.clone(), &problem);
        let baseline = Nsga2::new(config, &problem).run(&mut rng(41));

        for boundary in 0..6u64 {
            let mut r = rng(41);
            let mut state = nsga2.start(&mut r);
            while state.completed() < boundary && state.step(&mut r) {}
            let snap = state.snapshot_state(&VecF64Codec);
            let mut r2 = rand::rngs::StdRng::from_state(r.state());
            let mut resumed = nsga2.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
            while resumed.step(&mut r2) {}
            let out = resumed.finish();
            assert_eq!(out.population, baseline.population, "boundary {boundary}");
            assert_eq!(out.evaluations, baseline.evaluations);
            let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
                r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
            };
            assert_eq!(trace(&out), trace(&baseline), "boundary {boundary}");
        }
    }
}
