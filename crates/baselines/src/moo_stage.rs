//! MOO-STAGE (Joardar et al., IEEE TC 2019): STAGE-style learning of an
//! evaluation function that predicts *how good an outcome a local search
//! reaches from a given start*, used to pick restart points.
//!
//! Reimplemented from the published description (and Boyan & Moore's
//! original STAGE):
//!
//! * the **base search** is a PHV-greedy local search: a neighbor is
//!   accepted when inserting it into the Pareto archive would raise the
//!   archive's hypervolume (this per-candidate PHV computation is the
//!   overhead MOELA's §IV.A calls out);
//! * every base-search trajectory is labeled with the final archive PHV
//!   and appended to the training set of a random-forest `Eval`;
//! * the **meta search** hill-climbs on `Eval`'s *predictions* (no real
//!   evaluations) from the end of the last trajectory to propose the next
//!   start; when the meta search stalls, the next start is random.
//!
//! The run loop is exposed as a checkpointable state machine
//! ([`MooStageState`], one step per episode).

use std::time::{Duration, Instant};

use rand::RngCore;

use moela_ml::{Dataset, ForestConfig, RandomForest};
use moela_moo::archive::ParetoArchive;
use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{fault_log_from, is_quarantined, EvalFault, FaultConfig, FaultLog};
use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::snapshot::{archive_from_value, archive_to_value};
use moela_moo::{GuardedEvaluator, Problem};
use moela_obs::Obs;
use moela_persist::{PersistError, Restore, Snapshot, SolutionCodec, Value};

use crate::common::normalized_phv;

/// MOO-STAGE parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MooStageConfig {
    /// Number of base-search episodes.
    pub episodes: usize,
    /// Archive capacity.
    pub archive_cap: usize,
    /// Base-search step limit per episode.
    pub ls_max_steps: usize,
    /// Neighbors sampled per base-search step.
    pub ls_neighbors_per_step: usize,
    /// Meta-search (predicted-Eval hill-climb) step limit.
    pub meta_steps: usize,
    /// Random-forest hyper-parameters of `Eval`.
    pub forest: ForestConfig,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Fault-containment policy for evaluation (see
    /// [`moela_moo::GuardedEvaluator`]).
    pub fault: FaultConfig,
}

impl Default for MooStageConfig {
    fn default() -> Self {
        Self {
            episodes: 40,
            archive_cap: 40,
            ls_max_steps: 25,
            ls_neighbors_per_step: 4,
            meta_steps: 10,
            forest: ForestConfig { trees: 25, bootstrap_size: Some(512), ..Default::default() },
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
            fault: FaultConfig::default(),
        }
    }
}

/// The MOO-STAGE optimizer bound to one problem.
///
/// # Example
///
/// ```
/// use moela_baselines::{MooStage, MooStageConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let config = MooStageConfig { episodes: 4, ..Default::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = MooStage::new(config, &problem).run(&mut rng);
/// assert!(!out.population.is_empty());
/// ```
#[derive(Debug)]
pub struct MooStage<'p, P> {
    config: MooStageConfig,
    problem: &'p P,
}

impl<'p, P: Problem> MooStage<'p, P> {
    /// Binds a configuration to a problem.
    ///
    /// # Panics
    ///
    /// Panics if any episode/step budget is zero.
    pub fn new(config: MooStageConfig, problem: &'p P) -> Self {
        assert!(config.episodes > 0, "episodes must be positive");
        assert!(config.archive_cap > 0, "archive capacity must be positive");
        assert!(
            config.ls_max_steps > 0 && config.ls_neighbors_per_step > 0,
            "base-search budgets must be positive"
        );
        Self { config, problem }
    }
}

impl<'p, P> MooStage<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs MOO-STAGE and returns the archive (as the population) with its
    /// trace.
    ///
    /// Each base-search step's neighbors are sampled sequentially from
    /// `rng`, then evaluated as one batch through a [`GuardedEvaluator`]
    /// sized by [`MooStageConfig::threads`] — results are bit-identical
    /// for every thread count (the archive only changes after the step's
    /// best candidate is chosen).
    pub fn run(&self, rng: &mut impl RngCore) -> RunResult<P::Solution> {
        let rng: &mut dyn RngCore = rng;
        let mut state = self.start(rng);
        while state.step(rng) {}
        state.finish()
    }

    /// Initializes a run (the seeded archive + episode-0 trace point) as
    /// a steppable state machine.
    pub fn start(&self, rng: &mut dyn RngCore) -> MooStageState<'p, P> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let mut evaluator = GuardedEvaluator::new(cfg.threads, cfg.fault);
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };

        let mut archive: ParetoArchive<P::Solution> = ParetoArchive::bounded(cfg.archive_cap);
        let mut normalizer = Normalizer::new(m);

        // Initial random start; a quarantined one is simply not archived
        // (the base search still departs from it).
        let start = self.problem.random_solution(rng);
        let (start_objs, attempts) = evaluator.evaluate_one(self.problem, &start);
        evaluations += attempts;
        if let Some(o) = start_objs.filter(|o| !is_quarantined(o)) {
            normalizer.observe(&o);
            recorder.observe(&o);
            archive.insert(start.clone(), o);
        }
        recorder.record(0, evaluations, start_time.elapsed(), &archive.objectives());
        let evaluator_poisoned = evaluator.poisoned();

        MooStageState {
            config: cfg,
            problem: self.problem,
            evaluator,
            start_time,
            evaluations,
            recorder,
            archive,
            normalizer,
            train: Dataset::with_capacity(10_000),
            eval_fn: None,
            start,
            episode: 0,
            finished: evaluator_poisoned,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        }
    }

    /// Rebuilds a mid-run state from a [`MooStageState::snapshot_state`]
    /// value, with `elapsed` wall-clock time already consumed.
    pub fn restore<C: SolutionCodec<P::Solution>>(
        &self,
        codec: &C,
        value: &Value,
        elapsed: Duration,
    ) -> Result<MooStageState<'p, P>, PersistError> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let normalizer = Normalizer::restore(value.field("normalizer")?)?;
        if normalizer.len() != m {
            return Err(PersistError::schema("checkpointed normalizer dimension mismatch"));
        }
        let eval_fn = match value.field("eval_fn")? {
            Value::Null => None,
            v => Some(RandomForest::restore(v)?),
        };
        Ok(MooStageState {
            evaluator: GuardedEvaluator::from_parts(
                cfg.threads,
                cfg.fault,
                fault_log_from(value, "faults")?,
            ),
            config: cfg,
            problem: self.problem,
            start_time: Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now),
            evaluations: value.field("evaluations")?.as_u64()?,
            recorder: TraceRecorder::restore(value.field("recorder")?)?,
            archive: archive_from_value(value.field("archive")?, codec)?,
            normalizer,
            train: Dataset::restore(value.field("train")?)?,
            eval_fn,
            start: codec.decode_solution(value.field("start")?)?,
            episode: value.field("episode")?.as_usize()?,
            finished: value.field("finished")?.as_bool()?,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        })
    }
}

/// A MOO-STAGE run in progress, checkpointable between episodes.
#[derive(Debug)]
pub struct MooStageState<'p, P: Problem> {
    config: MooStageConfig,
    problem: &'p P,
    evaluator: GuardedEvaluator,
    start_time: Instant,
    evaluations: u64,
    recorder: TraceRecorder,
    archive: ParetoArchive<P::Solution>,
    normalizer: Normalizer,
    train: Dataset,
    eval_fn: Option<RandomForest>,
    /// The next episode's base-search start, carried across episodes.
    start: P::Solution,
    episode: usize,
    finished: bool,
    /// Telemetry handle (never checkpointed; disabled by default).
    obs: Obs,
    /// Cooperative cancellation flag (never checkpointed; inert
    /// unless the driver installs a shared token).
    cancel: CancelToken,
}

impl<'p, P> MooStageState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Completed episodes.
    pub fn completed(&self) -> u64 {
        self.episode as u64
    }

    /// Objective evaluations paid for so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Installs the observability handle phase spans are reported
    /// through. Telemetry is write-only: it never alters an RNG draw,
    /// an evaluation, or a trace byte.
    /// Installs a cooperative cancellation token checked at step
    /// boundaries (see [`CancelToken`]).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.evaluator.set_obs(obs.clone());
        self.obs = obs;
    }

    fn budget_left(&self) -> bool {
        self.config.max_evaluations.is_none_or(|cap| self.evaluations < cap)
            && self.config.time_budget.is_none_or(|cap| self.start_time.elapsed() < cap)
    }

    /// Executes one episode. Returns `false` — drawing no RNG values —
    /// once the run has finished.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.cancel.is_cancelled() {
            // Cancelled at a step boundary: draw nothing, mutate
            // nothing, stay snapshottable and resumable.
            return false;
        }
        let mut rng = rng;
        if self.finished || self.episode >= self.config.episodes || self.evaluator.poisoned() {
            self.finished = true;
            return false;
        }
        if !self.budget_left() {
            self.finished = true;
            return false;
        }
        let episode = self.episode;
        let cfg = self.config.clone();

        // --- Base search: PHV-greedy hill climb ---------------------
        let ls_span = self.obs.span("local_search");
        let mut ls_improvements = 0u64;
        const PATIENCE: usize = 3;
        let mut current = self.start.clone();
        let mut current_phv = normalized_phv(&self.archive.objectives(), &self.normalizer);
        let mut trajectory: Vec<Vec<f64>> = vec![self.problem.features(&current)];
        let mut stalls = 0usize;
        for _ in 0..cfg.ls_max_steps {
            let candidates: Vec<P::Solution> = (0..cfg.ls_neighbors_per_step)
                .map(|_| self.problem.neighbor(&current, rng))
                .collect();
            // Every candidate is one move from `current`, so delta-capable
            // problems may score the batch incrementally (bit-identically).
            let batch = self.evaluator.evaluate_neighbors(self.problem, &current, &candidates);
            self.evaluations += batch.attempts;
            if self.evaluator.poisoned() {
                self.finished = true;
                return false;
            }
            let mut best: Option<(P::Solution, Vec<f64>, f64)> = None;
            for (cand, objs) in candidates.into_iter().zip(batch.objectives) {
                let Some(objs) = objs else { continue };
                if is_quarantined(&objs) {
                    continue;
                }
                self.normalizer.observe(&objs);
                self.recorder.observe(&objs);
                // PHV potential: archive HV if this design joined.
                let mut with = self.archive.objectives();
                with.push(objs.clone());
                let potential = normalized_phv(&with, &self.normalizer);
                if best.as_ref().is_none_or(|(_, _, bp)| potential > *bp) {
                    best = Some((cand, objs, potential));
                }
            }
            match best {
                Some((cand, objs, potential)) if potential > current_phv + 1e-12 => {
                    if self.archive.insert(cand.clone(), objs) {
                        ls_improvements += 1;
                    }
                    current = cand;
                    current_phv = potential;
                    trajectory.push(self.problem.features(&current));
                    stalls = 0;
                }
                _ => {
                    stalls += 1;
                    if stalls >= PATIENCE {
                        break;
                    }
                }
            }
        }

        if ls_improvements > 0 {
            self.obs.counter(moela_obs::names::LS_IMPROVEMENTS, ls_improvements);
        }
        drop(ls_span);

        // --- Label the trajectory and retrain Eval ------------------
        let final_phv = normalized_phv(&self.archive.objectives(), &self.normalizer);
        for features in trajectory {
            // STAGE regresses the *outcome* onto every visited state;
            // negate so lower predictions mean better starts, matching
            // the random-forest consumers elsewhere in the workspace.
            self.train.push_finite(features, -final_phv);
        }
        if self.train.len() >= 8 {
            let _fit = self.obs.span("surrogate_fit");
            self.eval_fn = Some(RandomForest::fit(&self.train, &cfg.forest, &mut rng));
        }

        // --- Meta search on predicted Eval --------------------------
        self.start = match &self.eval_fn {
            Some(model) => {
                let _predict = self.obs.span("surrogate_predict");
                let mut meta = current.clone();
                let mut meta_score = model.predict(&self.problem.features(&meta));
                let mut moved = false;
                for _ in 0..cfg.meta_steps {
                    let cand = self.problem.neighbor(&meta, rng);
                    let score = model.predict(&self.problem.features(&cand));
                    if score < meta_score {
                        meta = cand;
                        meta_score = score;
                        moved = true;
                    }
                }
                if moved {
                    meta
                } else {
                    // STAGE restarts randomly when the meta search
                    // cannot escape the current basin.
                    self.problem.random_solution(rng)
                }
            }
            None => self.problem.random_solution(rng),
        };

        {
            let _archive = self.obs.span("archive_update");
            self.recorder.record(
                episode + 1,
                self.evaluations,
                self.start_time.elapsed(),
                &self.archive.objectives(),
            );
        }
        self.episode = episode + 1;
        self.obs.counter("generations", 1);
        self.obs.gauge("archive_size", self.archive.len() as f64);
        if let Some(point) = self.recorder.points().last() {
            self.obs.gauge("phv", point.phv);
        }
        true
    }

    /// Consumes the state, producing the final result.
    pub fn finish(self) -> RunResult<P::Solution> {
        RunResult {
            population: self.archive.into_entries(),
            trace: self.recorder.into_points(),
            evaluations: self.evaluations,
            elapsed: self.start_time.elapsed(),
        }
    }

    /// Captures the complete optimizer state (the RNG is checkpointed by
    /// the driver alongside).
    pub fn snapshot_state<C: SolutionCodec<P::Solution>>(&self, codec: &C) -> Value {
        Value::object(vec![
            ("episode", Value::U64(self.episode as u64)),
            ("finished", Value::Bool(self.finished)),
            ("evaluations", Value::U64(self.evaluations)),
            ("recorder", self.recorder.snapshot()),
            ("archive", archive_to_value(&self.archive, codec)),
            ("normalizer", self.normalizer.snapshot()),
            ("train", self.train.snapshot()),
            ("eval_fn", self.eval_fn.as_ref().map_or(Value::Null, Snapshot::snapshot)),
            ("start", codec.encode_solution(&self.start)),
            ("faults", self.evaluator.log().snapshot()),
        ])
    }

    /// Fault counters accumulated by the guarded evaluator.
    pub fn fault_log(&self) -> &FaultLog {
        self.evaluator.log()
    }

    /// The latched `Fail`-policy fault, if one stopped the run.
    pub fn fault_error(&self) -> Option<&EvalFault> {
        self.evaluator.error()
    }
}

impl<'p, P, C> Resumable<C> for MooStageState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    type Solution = P::Solution;

    fn completed(&self) -> u64 {
        MooStageState::completed(self)
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        MooStageState::step(self, rng)
    }

    fn snapshot_state(&self, codec: &C) -> Value {
        MooStageState::snapshot_state(self, codec)
    }

    fn finish(self) -> RunResult<P::Solution> {
        MooStageState::finish(self)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        Some(MooStageState::fault_log(self))
    }

    fn fault_error(&self) -> Option<&EvalFault> {
        MooStageState::fault_error(self)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        MooStageState::set_cancel(self, token);
    }

    fn set_obs(&mut self, obs: Obs) {
        MooStageState::set_obs(self, obs);
    }

    fn evaluations(&self) -> u64 {
        MooStageState::evaluations(self)
    }

    fn latest_phv(&self) -> Option<f64> {
        self.recorder.points().last().map(|p| p.phv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::Zdt;
    use moela_persist::VecF64Codec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn archive_is_nondominated_and_bounded() {
        let problem = Zdt::zdt1(8);
        let config = MooStageConfig { episodes: 8, archive_cap: 10, ..Default::default() };
        let out = MooStage::new(config, &problem).run(&mut rng(1));
        assert!(out.population.len() <= 10);
        let objs: Vec<Vec<f64>> = out.population.iter().map(|(_, o)| o.clone()).collect();
        assert_eq!(moela_moo::pareto::non_dominated_indices(&objs).len(), objs.len());
    }

    #[test]
    fn phv_trace_improves() {
        let problem = Zdt::zdt1(8);
        let normalizer =
            moela_moo::normalize::Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 10.0]);
        let config = MooStageConfig {
            episodes: 15,
            trace_normalizer: Some(normalizer),
            ..Default::default()
        };
        let out = MooStage::new(config, &problem).run(&mut rng(2));
        assert!(out.trace.last().expect("non-empty").phv > out.trace[0].phv);
    }

    #[test]
    fn makes_progress_toward_the_front() {
        let problem = Zdt::zdt1(8);
        let config = MooStageConfig { episodes: 30, ls_max_steps: 40, ..Default::default() };
        let out = MooStage::new(config, &problem).run(&mut rng(3));
        let d = igd(&out.front_objectives(), &problem.true_front(100));
        assert!(d < 1.5, "IGD {d}");
    }

    #[test]
    fn respects_the_evaluation_cap() {
        let problem = Zdt::zdt1(8);
        let config =
            MooStageConfig { episodes: 10_000, max_evaluations: Some(300), ..Default::default() };
        let out = MooStage::new(config, &problem).run(&mut rng(4));
        assert!(out.evaluations <= 300 + 110, "evaluations {}", out.evaluations);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt2(8);
        let run = |threads: usize| {
            let config = MooStageConfig { episodes: 8, threads, ..Default::default() };
            MooStage::new(config, &problem).run(&mut rng(6))
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.evaluations, sequential.evaluations);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&parallel), objs(&sequential));
    }

    /// Under injected chaos with a containment policy, a full MOO-STAGE
    /// run completes, its archive stays clean, and results are
    /// bit-identical at any thread count.
    #[test]
    fn chaotic_runs_are_finite_and_thread_invariant() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.05,nan=0.05,arity=0.03").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 31);
            let config = MooStageConfig {
                episodes: 6,
                threads,
                fault: FaultConfig { policy: FaultPolicy::Skip, retries: 1 },
                ..Default::default()
            };
            let mut r = rng(13);
            let mut state = MooStage::new(config, &problem).start(&mut r);
            while state.step(&mut r) {}
            let log = *state.fault_log();
            (state.finish(), log)
        };
        let (base, base_log) = run(1);
        assert!(base_log.faults() > 0, "the spec must actually inject");
        assert!(base
            .population
            .iter()
            .all(|(_, o)| o.iter().all(|v| v.is_finite()) && !moela_moo::fault::is_penalty(o)));
        for threads in [2, 4] {
            let (out, log) = run(threads);
            assert_eq!(out.evaluations, base.evaluations, "threads = {threads}");
            let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
                r.population.iter().map(|(_, o)| o.clone()).collect()
            };
            assert_eq!(objs(&out), objs(&base), "threads = {threads}");
            assert_eq!(log, base_log, "fault counters must not depend on threads");
        }
    }

    /// The default Fail policy latches the first fault as a structured
    /// error and stops the run instead of aborting the process.
    #[test]
    fn fail_policy_latches_a_structured_error() {
        use moela_moo::fault::FaultKind;
        use moela_moo::{ChaosProblem, ChaosSpec};
        let problem = ChaosProblem::new(Zdt::zdt1(6), ChaosSpec::parse("panic=1.0").unwrap(), 5);
        let config = MooStageConfig { episodes: 10, ..Default::default() };
        let mut r = rng(1);
        let mut state = MooStage::new(config, &problem).start(&mut r);
        assert!(!state.step(&mut r), "the poisoned guard must stop the run");
        let err = state.fault_error().expect("a latched error");
        assert_eq!(err.kind, FaultKind::Panic);
        let via_trait =
            <MooStageState<_> as Resumable<VecF64Codec>>::fault_error(&state).expect("surfaced");
        assert_eq!(via_trait, err);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_at_every_boundary() {
        // Enough episodes that the meta search runs both with and without
        // a fitted Eval model across the resume boundary.
        let problem = Zdt::zdt1(8);
        let config = MooStageConfig { episodes: 7, ..Default::default() };
        let stage = MooStage::new(config.clone(), &problem);
        let baseline = MooStage::new(config, &problem).run(&mut rng(61));

        for boundary in [0u64, 1, 3, 6] {
            let mut r = rng(61);
            let mut state = stage.start(&mut r);
            while state.completed() < boundary && state.step(&mut r) {}
            let snap = state.snapshot_state(&VecF64Codec);
            let mut r2 = rand::rngs::StdRng::from_state(r.state());
            let mut resumed = stage.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
            while resumed.step(&mut r2) {}
            let out = resumed.finish();
            assert_eq!(out.evaluations, baseline.evaluations, "boundary {boundary}");
            let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
                r.population.iter().map(|(_, o)| o.clone()).collect()
            };
            assert_eq!(objs(&out), objs(&baseline), "boundary {boundary}");
            let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
                r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
            };
            assert_eq!(trace(&out), trace(&baseline), "boundary {boundary}");
        }
    }
}
