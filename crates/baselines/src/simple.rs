//! Naive baselines: uniform random search and multi-start weighted-sum
//! local search (no learning). These bracket the sophisticated algorithms
//! from below in the benchmark harness and sanity-check the test suite.

use std::time::{Duration, Instant};

use rand::{Rng, RngCore};

use moela_moo::archive::ParetoArchive;
use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{fault_log_from, is_quarantined, EvalFault, FaultConfig, FaultLog};
use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::scalarize::ReferencePoint;
use moela_moo::snapshot::{archive_from_value, archive_to_value};
use moela_moo::weights::uniform_weights;
use moela_moo::{GuardedEvaluator, Problem};
use moela_obs::Obs;
use moela_persist::{PersistError, SolutionCodec, Value};

use crate::common::weighted_descent;

/// Uniform random search: draw designs, keep the Pareto archive.
#[derive(Clone, Debug, PartialEq)]
pub struct RandomSearchConfig {
    /// Number of random designs to draw.
    pub samples: u64,
    /// Archive capacity.
    pub archive_cap: usize,
    /// Trace granularity: record a point every `trace_every` samples.
    pub trace_every: u64,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online.
    pub trace_normalizer: Option<Normalizer>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Fault-containment policy for evaluation (see
    /// [`moela_moo::GuardedEvaluator`]).
    pub fault: FaultConfig,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        Self {
            samples: 1000,
            archive_cap: 50,
            trace_every: 100,
            trace_normalizer: None,
            time_budget: None,
            threads: 1,
            fault: FaultConfig::default(),
        }
    }
}

/// Runs random search.
///
/// # Example
///
/// ```
/// use moela_baselines::{random_search, RandomSearchConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let cfg = RandomSearchConfig { samples: 50, ..Default::default() };
/// let out = random_search(&cfg, &problem, &mut rng);
/// assert_eq!(out.evaluations, 50);
/// ```
pub fn random_search<P>(
    config: &RandomSearchConfig,
    problem: &P,
    rng: &mut impl RngCore,
) -> RunResult<P::Solution>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let rng: &mut dyn RngCore = rng;
    let mut state = random_search_start(config, problem);
    while state.step(rng) {}
    state.finish()
}

/// Initializes a random-search run as a steppable state machine (one
/// step per trace chunk). Draws no RNG values itself.
pub fn random_search_start<'p, P>(
    config: &RandomSearchConfig,
    problem: &'p P,
) -> RandomSearchState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let m = problem.objective_count();
    let recorder = match &config.trace_normalizer {
        Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
        None => TraceRecorder::new(m),
    };
    RandomSearchState {
        evaluator: GuardedEvaluator::new(config.threads, config.fault),
        config: config.clone(),
        problem,
        start_time: Instant::now(),
        evaluations: 0,
        recorder,
        archive: ParetoArchive::bounded(config.archive_cap),
        drawn: 0,
        chunks: 0,
        finished: false,
        obs: Obs::disabled(),
        cancel: CancelToken::default(),
    }
}

/// Rebuilds a mid-run state from a [`RandomSearchState::snapshot_state`]
/// value, with `elapsed` wall-clock time already consumed.
pub fn random_search_restore<'p, P, C>(
    config: &RandomSearchConfig,
    problem: &'p P,
    codec: &C,
    value: &Value,
    elapsed: Duration,
) -> Result<RandomSearchState<'p, P>, PersistError>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    use moela_persist::Restore;
    let drawn = value.field("drawn")?.as_u64()?;
    if drawn > config.samples {
        return Err(PersistError::schema("checkpoint drew more samples than configured"));
    }
    Ok(RandomSearchState {
        evaluator: GuardedEvaluator::from_parts(
            config.threads,
            config.fault,
            fault_log_from(value, "faults")?,
        ),
        config: config.clone(),
        problem,
        start_time: Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now),
        evaluations: value.field("evaluations")?.as_u64()?,
        recorder: TraceRecorder::restore(value.field("recorder")?)?,
        archive: archive_from_value(value.field("archive")?, codec)?,
        drawn,
        chunks: value.field("chunks")?.as_u64()?,
        finished: value.field("finished")?.as_bool()?,
        obs: Obs::disabled(),
        cancel: CancelToken::default(),
    })
}

/// A random-search run in progress, checkpointable between trace chunks.
#[derive(Debug)]
pub struct RandomSearchState<'p, P: Problem> {
    config: RandomSearchConfig,
    problem: &'p P,
    evaluator: GuardedEvaluator,
    start_time: Instant,
    evaluations: u64,
    recorder: TraceRecorder,
    archive: ParetoArchive<P::Solution>,
    drawn: u64,
    chunks: u64,
    finished: bool,
    /// Telemetry handle (never checkpointed; disabled by default).
    obs: Obs,
    /// Cooperative cancellation flag (never checkpointed; inert
    /// unless the driver installs a shared token).
    cancel: CancelToken,
}

impl<'p, P> RandomSearchState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Completed chunks (checkpoint boundaries, not samples).
    pub fn completed(&self) -> u64 {
        self.chunks
    }

    /// Objective evaluations paid for so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Installs the observability handle phase spans are reported
    /// through. Telemetry is write-only: it never alters an RNG draw,
    /// an evaluation, or a trace byte.
    /// Installs a cooperative cancellation token checked at step
    /// boundaries (see [`CancelToken`]).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.evaluator.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Draws and evaluates one chunk of samples, aligned to the trace
    /// granularity so the trace is identical to the old one-at-a-time
    /// loop (the wall-clock budget is checked per chunk rather than per
    /// sample). Returns `false` — drawing no RNG values — once the run
    /// has finished.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.cancel.is_cancelled() {
            // Cancelled at a step boundary: draw nothing, mutate
            // nothing, stay snapshottable and resumable.
            return false;
        }
        if self.finished || self.drawn >= self.config.samples {
            self.finished = true;
            return false;
        }
        if self.config.time_budget.is_some_and(|cap| self.start_time.elapsed() >= cap) {
            self.finished = true;
            return false;
        }
        let cfg = &self.config;
        let chunk = if cfg.trace_every > 0 { cfg.trace_every } else { 64 };
        let n = chunk.min(cfg.samples - self.drawn) as usize;
        let candidates: Vec<P::Solution> =
            (0..n).map(|_| self.problem.random_solution(rng)).collect();
        let batch = self.evaluator.evaluate(self.problem, &candidates);
        self.evaluations += batch.attempts;
        if self.evaluator.poisoned() {
            self.finished = true;
            return false;
        }
        {
            let _archive = self.obs.span("archive_update");
            for (s, o) in candidates.into_iter().zip(batch.objectives) {
                let Some(o) = o else { continue };
                if is_quarantined(&o) {
                    continue;
                }
                self.recorder.observe(&o);
                self.archive.insert(s, o);
            }
            self.drawn += n as u64;
            if cfg.trace_every > 0 && self.drawn.is_multiple_of(cfg.trace_every) {
                self.recorder.record(
                    ((self.drawn - 1) / cfg.trace_every) as usize,
                    self.evaluations,
                    self.start_time.elapsed(),
                    &self.archive.objectives(),
                );
            }
        }
        self.chunks += 1;
        self.obs.counter("generations", 1);
        self.obs.gauge("archive_size", self.archive.len() as f64);
        if let Some(point) = self.recorder.points().last() {
            self.obs.gauge("phv", point.phv);
        }
        true
    }

    /// Consumes the state, recording the final trace point and producing
    /// the result.
    pub fn finish(mut self) -> RunResult<P::Solution> {
        self.recorder.record(
            self.config.samples as usize,
            self.evaluations,
            self.start_time.elapsed(),
            &self.archive.objectives(),
        );
        RunResult {
            population: self.archive.into_entries(),
            trace: self.recorder.into_points(),
            evaluations: self.evaluations,
            elapsed: self.start_time.elapsed(),
        }
    }

    /// Captures the complete optimizer state (the RNG is checkpointed by
    /// the driver alongside).
    pub fn snapshot_state<C: SolutionCodec<P::Solution>>(&self, codec: &C) -> Value {
        use moela_persist::Snapshot;
        Value::object(vec![
            ("drawn", Value::U64(self.drawn)),
            ("chunks", Value::U64(self.chunks)),
            ("finished", Value::Bool(self.finished)),
            ("evaluations", Value::U64(self.evaluations)),
            ("recorder", self.recorder.snapshot()),
            ("archive", archive_to_value(&self.archive, codec)),
            ("faults", self.evaluator.log().snapshot()),
        ])
    }

    /// Fault counters accumulated by the guarded evaluator.
    pub fn fault_log(&self) -> &FaultLog {
        self.evaluator.log()
    }

    /// The latched `Fail`-policy fault, if one stopped the run.
    pub fn fault_error(&self) -> Option<&EvalFault> {
        self.evaluator.error()
    }
}

impl<'p, P, C> Resumable<C> for RandomSearchState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    type Solution = P::Solution;

    fn completed(&self) -> u64 {
        RandomSearchState::completed(self)
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        RandomSearchState::step(self, rng)
    }

    fn snapshot_state(&self, codec: &C) -> Value {
        RandomSearchState::snapshot_state(self, codec)
    }

    fn finish(self) -> RunResult<P::Solution> {
        RandomSearchState::finish(self)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        Some(RandomSearchState::fault_log(self))
    }

    fn fault_error(&self) -> Option<&EvalFault> {
        RandomSearchState::fault_error(self)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        RandomSearchState::set_cancel(self, token);
    }

    fn set_obs(&mut self, obs: Obs) {
        RandomSearchState::set_obs(self, obs);
    }

    fn evaluations(&self) -> u64 {
        RandomSearchState::evaluations(self)
    }

    fn latest_phv(&self) -> Option<f64> {
        self.recorder.points().last().map(|p| p.phv)
    }
}

/// Multi-start local search: repeatedly descend a weighted sum from a
/// random design, cycling through a fan of directions (MOO-LS — the
/// pre-learning baseline the MOO-STAGE paper improved on).
#[derive(Clone, Debug, PartialEq)]
pub struct MultiStartConfig {
    /// Number of restarts.
    pub restarts: usize,
    /// Number of scalarization directions in the fan.
    pub directions: usize,
    /// Descent step limit per restart.
    pub ls_max_steps: usize,
    /// Neighbors sampled per descent step.
    pub ls_neighbors_per_step: usize,
    /// Archive capacity.
    pub archive_cap: usize,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online.
    pub trace_normalizer: Option<Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Fault-containment policy for evaluation (see
    /// [`moela_moo::GuardedEvaluator`]).
    pub fault: FaultConfig,
}

impl Default for MultiStartConfig {
    fn default() -> Self {
        Self {
            restarts: 40,
            directions: 10,
            ls_max_steps: 25,
            ls_neighbors_per_step: 4,
            archive_cap: 50,
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
            fault: FaultConfig::default(),
        }
    }
}

/// Runs multi-start weighted-sum local search.
pub fn multi_start_local_search<P>(
    config: &MultiStartConfig,
    problem: &P,
    rng: &mut impl RngCore,
) -> RunResult<P::Solution>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let rng: &mut dyn RngCore = rng;
    let m = problem.objective_count();
    let start_time = Instant::now();
    let mut evaluator = GuardedEvaluator::new(config.threads, config.fault);
    let mut recorder = match &config.trace_normalizer {
        Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
        None => TraceRecorder::new(m),
    };
    let mut archive: ParetoArchive<P::Solution> = ParetoArchive::bounded(config.archive_cap);
    let mut z = ReferencePoint::new(m);
    let mut normalizer = Normalizer::new(m);
    let directions = uniform_weights(config.directions.max(1), m);
    let mut evaluations = 0u64;

    for restart in 0..config.restarts {
        if config.max_evaluations.is_some_and(|cap| evaluations >= cap)
            || config.time_budget.is_some_and(|cap| start_time.elapsed() >= cap)
        {
            break;
        }
        let start = problem.random_solution(rng);
        let (start_objs, attempts) = evaluator.evaluate_one(problem, &start);
        evaluations += attempts;
        if evaluator.poisoned() {
            break; // a Fail-policy fault latched; stop restarting
        }
        // A quarantined start (faulted under Skip/PenalizeWorst) has no
        // trustworthy objectives to descend from: skip this restart but
        // keep the trace cadence so resume bookkeeping stays aligned.
        let usable = start_objs.as_ref().is_some_and(|o| !is_quarantined(o));
        if let Some(start_objs) = start_objs.filter(|_| usable) {
            z.update(&start_objs);
            normalizer.observe(&start_objs);
            recorder.observe(&start_objs);
            archive.insert(start.clone(), start_objs.clone());

            let weight = &directions[restart % directions.len()];
            let (accepted, spent) = weighted_descent(
                problem,
                &start,
                &start_objs,
                weight,
                z.values(),
                &normalizer,
                config.ls_max_steps,
                config.ls_neighbors_per_step,
                &mut evaluator,
                rng,
            );
            evaluations += spent;
            if evaluator.poisoned() {
                recorder.record(
                    restart + 1,
                    evaluations,
                    start_time.elapsed(),
                    &archive.objectives(),
                );
                break;
            }
            for (s, o) in accepted {
                z.update(&o);
                normalizer.observe(&o);
                recorder.observe(&o);
                archive.insert(s, o);
            }
        }
        recorder.record(restart + 1, evaluations, start_time.elapsed(), &archive.objectives());
    }

    RunResult {
        population: archive.into_entries(),
        trace: recorder.into_points(),
        evaluations,
        elapsed: start_time.elapsed(),
    }
}

/// Draws `k` distinct indices in `0..n` (used by tests and the harness).
pub fn sample_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::problems::Zdt;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_search_counts_exactly() {
        let problem = Zdt::zdt1(6);
        let cfg = RandomSearchConfig { samples: 123, ..Default::default() };
        let out = random_search(&cfg, &problem, &mut rng(1));
        assert_eq!(out.evaluations, 123);
        assert!(!out.population.is_empty());
    }

    #[test]
    fn local_search_beats_random_search_at_equal_budget() {
        // Any single seed pair is a coin with an edge, not a certainty, so
        // compare mean IGD across a few independent runs.
        let problem = Zdt::zdt1(8);
        let reference = problem.true_front(100);
        let mut igd_ls_total = 0.0;
        let mut igd_rs_total = 0.0;
        for seed in [2u64, 12, 22] {
            let ls_cfg = MultiStartConfig { restarts: 25, ls_max_steps: 60, ..Default::default() };
            let ls = multi_start_local_search(&ls_cfg, &problem, &mut rng(seed));
            let rs_cfg = RandomSearchConfig { samples: ls.evaluations, ..Default::default() };
            let rs = random_search(&rs_cfg, &problem, &mut rng(seed + 1));
            igd_ls_total += moela_moo::metrics::igd(&ls.front_objectives(), &reference);
            igd_rs_total += moela_moo::metrics::igd(&rs.front_objectives(), &reference);
        }
        assert!(igd_ls_total < igd_rs_total, "LS {igd_ls_total} vs RS {igd_rs_total}");
    }

    #[test]
    fn multi_start_respects_evaluation_cap() {
        let problem = Zdt::zdt1(6);
        let cfg =
            MultiStartConfig { restarts: 10_000, max_evaluations: Some(250), ..Default::default() };
        let out = multi_start_local_search(&cfg, &problem, &mut rng(4));
        assert!(out.evaluations <= 250 + 110);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt3(8);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };

        let rs = |threads: usize| {
            let cfg = RandomSearchConfig { samples: 230, threads, ..Default::default() };
            random_search(&cfg, &problem, &mut rng(8))
        };
        let (rs_seq, rs_par) = (rs(1), rs(4));
        assert_eq!(rs_par.evaluations, rs_seq.evaluations);
        assert_eq!(objs(&rs_par), objs(&rs_seq));
        assert_eq!(rs_par.trace.len(), rs_seq.trace.len());

        let ms = |threads: usize| {
            let cfg = MultiStartConfig { restarts: 12, threads, ..Default::default() };
            multi_start_local_search(&cfg, &problem, &mut rng(9))
        };
        let (ms_seq, ms_par) = (ms(1), ms(4));
        assert_eq!(ms_par.evaluations, ms_seq.evaluations);
        assert_eq!(objs(&ms_par), objs(&ms_seq));
    }

    #[test]
    fn snapshot_resume_is_bit_identical_at_every_boundary() {
        use moela_persist::VecF64Codec;
        let problem = Zdt::zdt1(6);
        let cfg = RandomSearchConfig { samples: 230, trace_every: 50, ..Default::default() };
        let baseline = random_search(&cfg, &problem, &mut rng(71));

        // 230 samples at trace_every=50 is 5 chunks (the last partial).
        for boundary in [0u64, 1, 3, 5] {
            let mut r = rng(71);
            let mut state = random_search_start(&cfg, &problem);
            while state.completed() < boundary && state.step(&mut r) {}
            let snap = state.snapshot_state(&VecF64Codec);
            let mut r2 = rand::rngs::StdRng::from_state(r.state());
            let mut resumed =
                random_search_restore(&cfg, &problem, &VecF64Codec, &snap, Duration::ZERO)
                    .expect("restore");
            while resumed.step(&mut r2) {}
            let out = resumed.finish();
            assert_eq!(out.evaluations, baseline.evaluations, "boundary {boundary}");
            let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
                r.population.iter().map(|(_, o)| o.clone()).collect()
            };
            assert_eq!(objs(&out), objs(&baseline), "boundary {boundary}");
            let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
                r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
            };
            assert_eq!(trace(&out), trace(&baseline), "boundary {boundary}");
        }
    }

    /// Under injected chaos with a containment policy, random search
    /// completes, its archive stays clean, and results are bit-identical
    /// at any thread count.
    #[test]
    fn chaotic_random_search_is_finite_and_thread_invariant() {
        use moela_moo::fault::{is_penalty, FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.05,nan=0.05,inf=0.03,arity=0.03").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 31);
            let cfg = RandomSearchConfig {
                samples: 200,
                trace_every: 50,
                threads,
                fault: FaultConfig { policy: FaultPolicy::Skip, retries: 1 },
                ..Default::default()
            };
            let mut r = rng(13);
            let mut state = random_search_start(&cfg, &problem);
            while state.step(&mut r) {}
            let log = *state.fault_log();
            (state.finish(), log)
        };
        let (base, base_log) = run(1);
        assert!(base_log.faults() > 0, "the spec must actually inject");
        assert!(base
            .population
            .iter()
            .all(|(_, o)| o.iter().all(|v| v.is_finite()) && !is_penalty(o)));
        for threads in [2, 4] {
            let (out, log) = run(threads);
            assert_eq!(out.evaluations, base.evaluations, "threads = {threads}");
            let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
                r.population.iter().map(|(_, o)| o.clone()).collect()
            };
            assert_eq!(objs(&out), objs(&base), "threads = {threads}");
            assert_eq!(log, base_log, "fault counters must not depend on threads");
        }
    }

    /// The default Fail policy latches the first fault as a structured
    /// error and stops random search instead of aborting the process.
    #[test]
    fn fail_policy_latches_a_structured_error() {
        use moela_moo::checkpoint::Resumable;
        use moela_moo::fault::FaultKind;
        use moela_moo::{ChaosProblem, ChaosSpec};
        use moela_persist::VecF64Codec;
        let problem = ChaosProblem::new(Zdt::zdt1(6), ChaosSpec::parse("panic=1.0").unwrap(), 5);
        let cfg = RandomSearchConfig { samples: 100, ..Default::default() };
        let mut r = rng(1);
        let mut state = random_search_start(&cfg, &problem);
        assert!(!state.step(&mut r), "the poisoned guard must stop the run");
        let err = state.fault_error().expect("a latched error");
        assert_eq!(err.kind, FaultKind::Panic);
        let via_trait = <RandomSearchState<_> as Resumable<VecF64Codec>>::fault_error(&state)
            .expect("surfaced");
        assert_eq!(via_trait, err);
    }

    /// Multi-start local search contains chaos: faulted starts and
    /// neighbors never reach the archive, and a Fail-policy fault stops
    /// the restarts early instead of aborting.
    #[test]
    fn chaotic_multi_start_contains_faults() {
        use moela_moo::fault::{is_penalty, FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.1,nan=0.1,arity=0.05").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 21);
            let cfg = MultiStartConfig {
                restarts: 10,
                threads,
                fault: FaultConfig { policy: FaultPolicy::Skip, retries: 1 },
                ..Default::default()
            };
            multi_start_local_search(&cfg, &problem, &mut rng(3))
        };
        let base = run(1);
        assert!(base
            .population
            .iter()
            .all(|(_, o)| o.iter().all(|v| v.is_finite()) && !is_penalty(o)));
        let par = run(4);
        assert_eq!(par.evaluations, base.evaluations);
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&par), objs(&base));

        // Fail policy: the first faulted start ends the run after one
        // attempted evaluation.
        let problem = ChaosProblem::new(Zdt::zdt1(8), ChaosSpec::parse("panic=1.0").unwrap(), 9);
        let cfg = MultiStartConfig { restarts: 10, ..Default::default() };
        let out = multi_start_local_search(&cfg, &problem, &mut rng(4));
        assert_eq!(out.evaluations, 1);
        assert!(out.population.is_empty());
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let idx = sample_indices(10, 4, &mut rng(5));
        assert_eq!(idx.len(), 4);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(idx.iter().all(|&i| i < 10));
        assert_eq!(sample_indices(3, 9, &mut rng(6)).len(), 3);
    }
}
