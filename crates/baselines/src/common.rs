//! Shared helpers for the archive-based baseline optimizers.

use rand::RngCore;

use moela_moo::fault::is_quarantined;
use moela_moo::normalize::Normalizer;
use moela_moo::scalarize::Scalarizer;
use moela_moo::{GuardedEvaluator, Problem};

pub use moela_moo::run::normalized_phv;

/// A weighted-sum greedy descent (no learning), shared by the plain
/// local-search baseline and MOOS's direction-following step. Returns the
/// accepted states (start excluded) with their objectives, and the number
/// of evaluations spent (counting retried attempts).
///
/// Each step samples its neighbors sequentially from `rng`, then
/// evaluates them as one batch through `evaluator` — results are
/// independent of the evaluator's worker count. Contained faults never
/// abort the descent: quarantined neighbors are simply never accepted,
/// and a latched `Fail`-policy fault stops the descent at that step.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn weighted_descent<P>(
    problem: &P,
    start: &P::Solution,
    start_objectives: &[f64],
    weight: &[f64],
    z_raw: &[f64],
    normalizer: &Normalizer,
    max_steps: usize,
    neighbors_per_step: usize,
    evaluator: &mut GuardedEvaluator,
    rng: &mut dyn RngCore,
) -> (Vec<(P::Solution, Vec<f64>)>, u64)
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let g = |objs: &[f64]| {
        Scalarizer::WeightedSum.value(
            &normalizer.normalize(objs),
            weight,
            &normalizer.normalize(z_raw),
        )
    };
    // Tolerate a few non-improving batches before declaring a local
    // optimum — one unlucky neighbor sample should not end the descent.
    const PATIENCE: usize = 3;
    let mut current = start.clone();
    let mut current_g = g(start_objectives);
    let mut accepted = Vec::new();
    let mut evaluations = 0u64;
    let mut stalls = 0usize;
    for _ in 0..max_steps {
        let candidates: Vec<P::Solution> =
            (0..neighbors_per_step).map(|_| problem.neighbor(&current, rng)).collect();
        // Every candidate is one move from `current`, so delta-capable
        // problems may score the batch incrementally (bit-identically).
        let batch = evaluator.evaluate_neighbors(problem, &current, &candidates);
        evaluations += batch.attempts;
        if evaluator.poisoned() {
            break; // a Fail-policy fault latched; stop descending
        }
        let mut best: Option<(P::Solution, Vec<f64>, f64)> = None;
        for (cand, objs) in candidates.into_iter().zip(batch.objectives) {
            let Some(objs) = objs else { continue };
            if is_quarantined(&objs) {
                continue;
            }
            let v = g(&objs);
            // Strict `<` keeps the first minimum on ties, matching the
            // original one-at-a-time loop.
            if best.as_ref().is_none_or(|(_, _, bv)| v < *bv) {
                best = Some((cand, objs, v));
            }
        }
        match best {
            Some((cand, objs, v)) if v < current_g => {
                current = cand.clone();
                current_g = v;
                accepted.push((cand, objs));
                stalls = 0;
            }
            _ => {
                stalls += 1;
                if stalls >= PATIENCE {
                    break;
                }
            }
        }
    }
    (accepted, evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::problems::Zdt;
    use rand::SeedableRng;

    #[test]
    fn phv_of_empty_set_is_zero() {
        let n = Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(normalized_phv(&[], &n), 0.0);
    }

    #[test]
    fn phv_grows_when_a_dominating_point_appears() {
        let n = Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let weak = vec![vec![0.8, 0.8]];
        let strong = vec![vec![0.8, 0.8], vec![0.2, 0.2]];
        assert!(normalized_phv(&strong, &n) > normalized_phv(&weak, &n));
    }

    #[test]
    fn descent_improves_the_weighted_objective() {
        let p = Zdt::zdt1(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use moela_moo::Problem;
        let start = p.random_solution(&mut rng);
        let objs = p.evaluate(&start);
        let n = Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 10.0]);
        let (accepted, evals) = weighted_descent(
            &p,
            &start,
            &objs,
            &[0.5, 0.5],
            &[0.0, 0.0],
            &n,
            30,
            4,
            &mut GuardedEvaluator::new(1, moela_moo::fault::FaultConfig::default()),
            &mut rng,
        );
        assert!(evals > 0);
        if let Some((_, last)) = accepted.last() {
            let g = |o: &[f64]| 0.5 * o[0] + 0.5 * o[1] / 10.0;
            assert!(g(last) < g(&objs));
        }
    }

    /// Faulted neighbors are contained (counted, never accepted) and the
    /// descent keeps going under a Skip policy.
    #[test]
    fn faulted_neighbors_are_contained_and_never_accepted() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec, GuardedEvaluator, Problem};
        let plain = Zdt::zdt1(8);
        let chaotic = ChaosProblem::new(
            Zdt::zdt1(8),
            ChaosSpec::parse("panic=0.2,nan=0.2,arity=0.1").unwrap(),
            99,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let start = plain.random_solution(&mut rng);
        let objs = plain.evaluate(&start);
        let n = Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 10.0]);
        let mut guard =
            GuardedEvaluator::new(1, FaultConfig { policy: FaultPolicy::Skip, retries: 1 });
        let (accepted, evals) = weighted_descent(
            &chaotic,
            &start,
            &objs,
            &[0.5, 0.5],
            &[0.0, 0.0],
            &n,
            20,
            4,
            &mut guard,
            &mut rng,
        );
        assert!(guard.log().faults() > 0, "the spec must actually inject");
        assert!(evals > 0);
        assert!(accepted.iter().all(|(_, o)| o.iter().all(|v| v.is_finite())));
    }
}
