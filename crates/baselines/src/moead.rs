//! MOEA/D (Zhang & Li, 2007): the decomposition-based evolutionary
//! baseline the paper compares against.
//!
//! The implementation follows the original algorithm: `N` sub-problems
//! defined by uniformly spread weight vectors, Tchebycheff scalarization
//! against a running reference point, mating restricted to weight-space
//! neighborhoods with probability `δ`, and bounded replacement (`n_r`).
//! MOELA's EA step is intentionally the same machinery — the paper's
//! contribution is what it *adds* (the ML-guided local search), so sharing
//! the update semantics makes the comparison fair.

use std::time::{Duration, Instant};

use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::scalarize::{ReferencePoint, Scalarizer};
use moela_moo::weights::{neighborhoods, uniform_weights};
use moela_moo::{ParallelEvaluator, Problem};

/// MOEA/D parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MoeadConfig {
    /// Population size `N` (= number of weight vectors).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Neighborhood size `T`.
    pub neighborhood: usize,
    /// Probability of mating within the neighborhood.
    pub delta: f64,
    /// Maximum replacements per offspring (`n_r`).
    pub max_replacements: usize,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        Self {
            population: 50,
            generations: 100,
            neighborhood: 10,
            delta: 0.9,
            max_replacements: 2,
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
        }
    }
}

/// The MOEA/D optimizer bound to one problem.
///
/// # Example
///
/// ```
/// use moela_baselines::{Moead, MoeadConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let config = MoeadConfig { population: 12, generations: 5, ..Default::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = Moead::new(config, &problem).run(&mut rng);
/// assert_eq!(out.population.len(), 12);
/// ```
#[derive(Debug)]
pub struct Moead<'p, P> {
    config: MoeadConfig,
    problem: &'p P,
}

impl<'p, P: Problem> Moead<'p, P> {
    /// Binds a configuration to a problem.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2` or `neighborhood` is out of range.
    pub fn new(config: MoeadConfig, problem: &'p P) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        assert!(
            (2..=config.population).contains(&config.neighborhood),
            "neighborhood must lie in 2..=population"
        );
        assert!((0.0..=1.0).contains(&config.delta), "delta must lie in [0, 1]");
        Self { config, problem }
    }
}

impl<'p, P> Moead<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs MOEA/D and returns the final population with its trace.
    ///
    /// Each generation's offspring are generated sequentially from `rng`
    /// (parents drawn from the population as it stood at the start of the
    /// generation), evaluated as one batch through a [`ParallelEvaluator`]
    /// sized by [`MoeadConfig::threads`], then applied in sub-problem
    /// order — so results are bit-identical for every thread count.
    pub fn run(&self, rng: &mut impl RngCore) -> RunResult<P::Solution> {
        let rng: &mut dyn RngCore = rng;
        let cfg = &self.config;
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let evaluator = ParallelEvaluator::new(cfg.threads);
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };

        let weights = uniform_weights(cfg.population, m);
        let nbhd = neighborhoods(&weights, cfg.neighborhood);
        let mut z = ReferencePoint::new(m);
        let mut normalizer = Normalizer::new(m);
        let mut solutions: Vec<P::Solution> =
            (0..cfg.population).map(|_| self.problem.random_solution(rng)).collect();
        let mut objectives = evaluator.evaluate(self.problem, &solutions);
        evaluations += solutions.len() as u64;
        for o in &objectives {
            z.update(o);
            normalizer.observe(o);
            recorder.observe(o);
        }
        recorder.record(0, evaluations, start_time.elapsed(), &objectives);

        'outer: for generation in 0..cfg.generations {
            if cfg.time_budget.is_some_and(|cap| start_time.elapsed() >= cap) {
                break 'outer;
            }
            // Cap the generation to the remaining evaluation budget; a
            // short (partial) generation is still evaluated, applied, and
            // recorded before stopping, so the trace accounts for every
            // evaluation.
            let remaining =
                cfg.max_evaluations.map_or(u64::MAX, |cap| cap.saturating_sub(evaluations));
            if remaining == 0 {
                break 'outer;
            }
            let mut order: Vec<usize> = (0..cfg.population).collect();
            order.shuffle(rng);
            order.truncate(remaining.min(cfg.population as u64) as usize);
            let partial = order.len() < cfg.population;

            let mut children: Vec<P::Solution> = Vec::with_capacity(order.len());
            let mut pools: Vec<Vec<usize>> = Vec::with_capacity(order.len());
            for &i in &order {
                let whole: Vec<usize>;
                let pool: &[usize] = if rng.gen_bool(cfg.delta) {
                    &nbhd[i]
                } else {
                    whole = (0..cfg.population).collect();
                    &whole
                };
                let pa = pool[rng.gen_range(0..pool.len())];
                let child = if pool.len() < 2 {
                    // A one-element pool cannot supply a distinct second
                    // parent; mutate instead of self-mating.
                    self.problem.neighbor(&solutions[pa], rng)
                } else {
                    let mut pb = pool[rng.gen_range(0..pool.len())];
                    if pb == pa {
                        pb = pool[(pool.iter().position(|&x| x == pa).expect("pa in pool") + 1)
                            % pool.len()];
                    }
                    self.problem.crossover(&solutions[pa], &solutions[pb], rng)
                };
                children.push(child);
                pools.push(pool.to_vec());
            }

            let child_objs_batch = evaluator.evaluate(self.problem, &children);
            evaluations += children.len() as u64;
            for ((child, child_objs), pool) in children.iter().zip(&child_objs_batch).zip(&pools) {
                z.update(child_objs);
                normalizer.observe(child_objs);
                recorder.observe(child_objs);

                let g = |objs: &[f64], w: &[f64]| {
                    Scalarizer::Tchebycheff.value(
                        &normalizer.normalize(objs),
                        w,
                        &normalizer.normalize(z.values()),
                    )
                };
                let mut replaced = 0;
                for &j in pool {
                    if replaced >= cfg.max_replacements {
                        break;
                    }
                    if g(child_objs, &weights[j]) < g(&objectives[j], &weights[j]) {
                        solutions[j] = child.clone();
                        objectives[j] = child_objs.clone();
                        replaced += 1;
                    }
                }
            }
            recorder.record(generation + 1, evaluations, start_time.elapsed(), &objectives);
            if partial {
                break 'outer;
            }
        }

        RunResult {
            population: solutions.into_iter().zip(objectives).collect(),
            trace: recorder.into_points(),
            evaluations,
            elapsed: start_time.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::Zdt;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn converges_toward_the_zdt1_front() {
        let problem = Zdt::zdt1(8);
        let config = MoeadConfig { population: 20, generations: 60, ..Default::default() };
        let out = Moead::new(config, &problem).run(&mut rng(1));
        let d = igd(&out.front_objectives(), &problem.true_front(100));
        assert!(d < 0.3, "IGD {d}");
    }

    #[test]
    fn trace_improves_over_generations() {
        let problem = Zdt::zdt2(8);
        let config = MoeadConfig { population: 16, generations: 30, ..Default::default() };
        let out = Moead::new(config, &problem).run(&mut rng(2));
        assert!(out.trace.last().expect("non-empty").phv > out.trace[0].phv);
    }

    #[test]
    fn respects_the_evaluation_cap() {
        let problem = Zdt::zdt1(8);
        // 299 does not divide into init + whole generations, forcing a
        // partial final generation.
        let config = MoeadConfig {
            population: 10,
            generations: 10_000,
            max_evaluations: Some(299),
            ..Default::default()
        };
        let out = Moead::new(config, &problem).run(&mut rng(3));
        assert_eq!(out.evaluations, 299, "batches are capped to the remaining budget");
        let last = out.trace.last().expect("non-empty trace");
        assert_eq!(
            last.evaluations, out.evaluations,
            "the partial final generation must still reach the trace"
        );
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt2(8);
        let run = |threads: usize| {
            let config =
                MoeadConfig { population: 12, generations: 8, threads, ..Default::default() };
            Moead::new(config, &problem).run(&mut rng(6))
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.population, sequential.population);
        assert_eq!(parallel.evaluations, sequential.evaluations);
        let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
            r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
        };
        assert_eq!(trace(&parallel), trace(&sequential));
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = Zdt::zdt3(8);
        let config = MoeadConfig { population: 10, generations: 10, ..Default::default() };
        let a = Moead::new(config.clone(), &problem).run(&mut rng(4));
        let b = Moead::new(config, &problem).run(&mut rng(4));
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&a), objs(&b));
    }

    #[test]
    #[should_panic(expected = "neighborhood")]
    fn oversized_neighborhood_is_rejected() {
        let problem = Zdt::zdt1(4);
        Moead::new(MoeadConfig { population: 5, neighborhood: 6, ..Default::default() }, &problem);
    }
}
