//! MOEA/D (Zhang & Li, 2007): the decomposition-based evolutionary
//! baseline the paper compares against.
//!
//! The implementation follows the original algorithm: `N` sub-problems
//! defined by uniformly spread weight vectors, Tchebycheff scalarization
//! against a running reference point, mating restricted to weight-space
//! neighborhoods with probability `δ`, and bounded replacement (`n_r`).
//! MOELA's EA step is intentionally the same machinery — the paper's
//! contribution is what it *adds* (the ML-guided local search), so sharing
//! the update semantics makes the comparison fair.
//!
//! Like every optimizer in the workspace, the run loop is exposed as a
//! checkpointable state machine ([`MoeadState`], one step per generation).

use std::time::{Duration, Instant};

use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{fault_log_from, is_quarantined, EvalFault, FaultConfig, FaultLog};
use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::scalarize::{ReferencePoint, Scalarizer};
use moela_moo::snapshot::{entries_from_value, entries_to_value};
use moela_moo::weights::{neighborhoods, uniform_weights};
use moela_moo::{GuardedEvaluator, Problem};
use moela_obs::Obs;
use moela_persist::{PersistError, Restore, Snapshot, SolutionCodec, Value};

/// MOEA/D parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MoeadConfig {
    /// Population size `N` (= number of weight vectors).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Neighborhood size `T`.
    pub neighborhood: usize,
    /// Probability of mating within the neighborhood.
    pub delta: f64,
    /// Maximum replacements per offspring (`n_r`).
    pub max_replacements: usize,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Fault-containment policy for evaluation (see
    /// [`moela_moo::GuardedEvaluator`]).
    pub fault: FaultConfig,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        Self {
            population: 50,
            generations: 100,
            neighborhood: 10,
            delta: 0.9,
            max_replacements: 2,
            trace_normalizer: None,
            max_evaluations: None,
            time_budget: None,
            threads: 1,
            fault: FaultConfig::default(),
        }
    }
}

/// The MOEA/D optimizer bound to one problem.
///
/// # Example
///
/// ```
/// use moela_baselines::{Moead, MoeadConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// let problem = Zdt::zdt1(10);
/// let config = MoeadConfig { population: 12, generations: 5, ..Default::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = Moead::new(config, &problem).run(&mut rng);
/// assert_eq!(out.population.len(), 12);
/// ```
#[derive(Debug)]
pub struct Moead<'p, P> {
    config: MoeadConfig,
    problem: &'p P,
}

impl<'p, P: Problem> Moead<'p, P> {
    /// Binds a configuration to a problem.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2` or `neighborhood` is out of range.
    pub fn new(config: MoeadConfig, problem: &'p P) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        assert!(
            (2..=config.population).contains(&config.neighborhood),
            "neighborhood must lie in 2..=population"
        );
        assert!((0.0..=1.0).contains(&config.delta), "delta must lie in [0, 1]");
        Self { config, problem }
    }
}

impl<'p, P> Moead<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs MOEA/D and returns the final population with its trace.
    ///
    /// Each generation's offspring are generated sequentially from `rng`
    /// (parents drawn from the population as it stood at the start of the
    /// generation), evaluated as one batch through a [`GuardedEvaluator`]
    /// sized by [`MoeadConfig::threads`], then applied in sub-problem
    /// order — so results are bit-identical for every thread count.
    pub fn run(&self, rng: &mut impl RngCore) -> RunResult<P::Solution> {
        let rng: &mut dyn RngCore = rng;
        let mut state = self.start(rng);
        while state.step(rng) {}
        state.finish()
    }

    /// Initializes a run (random population + generation-0 trace point)
    /// as a steppable state machine.
    pub fn start(&self, rng: &mut dyn RngCore) -> MoeadState<'p, P> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let mut evaluator = GuardedEvaluator::new(cfg.threads, cfg.fault);
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };

        let weights = uniform_weights(cfg.population, m);
        let nbhd = neighborhoods(&weights, cfg.neighborhood);
        let mut z = ReferencePoint::new(m);
        let mut normalizer = Normalizer::new(m);
        let solutions: Vec<P::Solution> =
            (0..cfg.population).map(|_| self.problem.random_solution(rng)).collect();
        let batch = evaluator.evaluate(self.problem, &solutions);
        evaluations += batch.attempts;
        // Dropped initial slots are materialized as penalty vectors — every
        // sub-problem keeps a member, but the quarantined ones never feed
        // the reference point, normalizer, or trace.
        let objectives = batch.materialized(m);
        for o in &objectives {
            if is_quarantined(o) {
                continue;
            }
            z.update(o);
            normalizer.observe(o);
            recorder.observe(o);
        }
        recorder.record(0, evaluations, start_time.elapsed(), &objectives);
        let evaluator_poisoned = evaluator.poisoned();

        MoeadState {
            config: cfg,
            problem: self.problem,
            evaluator,
            start_time,
            evaluations,
            recorder,
            weights,
            nbhd,
            z,
            normalizer,
            solutions,
            objectives,
            generation: 0,
            finished: evaluator_poisoned,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        }
    }

    /// Rebuilds a mid-run state from a [`MoeadState::snapshot_state`]
    /// value, with `elapsed` wall-clock time already consumed.
    pub fn restore<C: SolutionCodec<P::Solution>>(
        &self,
        codec: &C,
        value: &Value,
        elapsed: Duration,
    ) -> Result<MoeadState<'p, P>, PersistError> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let entries = entries_from_value(value.field("population")?, codec)?;
        if entries.len() != cfg.population {
            return Err(PersistError::schema("checkpointed population size mismatch"));
        }
        if entries.iter().any(|(_, o)| o.len() != m) {
            return Err(PersistError::schema("checkpointed objective dimensionality mismatch"));
        }
        let (solutions, objectives): (Vec<_>, Vec<_>) = entries.into_iter().unzip();
        let z = ReferencePoint::restore(value.field("z")?)?;
        let normalizer = Normalizer::restore(value.field("normalizer")?)?;
        if z.len() != m || normalizer.len() != m {
            return Err(PersistError::schema(
                "checkpointed reference/normalizer dimension mismatch",
            ));
        }
        let weights = uniform_weights(cfg.population, m);
        let nbhd = neighborhoods(&weights, cfg.neighborhood);
        Ok(MoeadState {
            evaluator: GuardedEvaluator::from_parts(
                cfg.threads,
                cfg.fault,
                fault_log_from(value, "faults")?,
            ),
            config: cfg,
            problem: self.problem,
            start_time: Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now),
            evaluations: value.field("evaluations")?.as_u64()?,
            recorder: TraceRecorder::restore(value.field("recorder")?)?,
            weights,
            nbhd,
            z,
            normalizer,
            solutions,
            objectives,
            generation: value.field("generation")?.as_usize()?,
            finished: value.field("finished")?.as_bool()?,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        })
    }
}

/// A MOEA/D run in progress, checkpointable between generations.
#[derive(Debug)]
pub struct MoeadState<'p, P: Problem> {
    config: MoeadConfig,
    problem: &'p P,
    evaluator: GuardedEvaluator,
    start_time: Instant,
    evaluations: u64,
    recorder: TraceRecorder,
    weights: Vec<Vec<f64>>,
    nbhd: Vec<Vec<usize>>,
    z: ReferencePoint,
    normalizer: Normalizer,
    solutions: Vec<P::Solution>,
    objectives: Vec<Vec<f64>>,
    generation: usize,
    finished: bool,
    /// Telemetry handle (never checkpointed; disabled by default).
    obs: Obs,
    /// Cooperative cancellation flag (never checkpointed; inert
    /// unless the driver installs a shared token).
    cancel: CancelToken,
}

impl<'p, P> MoeadState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Completed generations.
    pub fn completed(&self) -> u64 {
        self.generation as u64
    }

    /// Objective evaluations paid for so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Installs the observability handle phase spans are reported
    /// through. Telemetry is write-only: it never alters an RNG draw,
    /// an evaluation, or a trace byte.
    /// Installs a cooperative cancellation token checked at step
    /// boundaries (see [`CancelToken`]).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.evaluator.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Executes one generation. Returns `false` — drawing no RNG values —
    /// once the run has finished.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.cancel.is_cancelled() {
            // Cancelled at a step boundary: draw nothing, mutate
            // nothing, stay snapshottable and resumable.
            return false;
        }
        if self.finished || self.generation >= self.config.generations || self.evaluator.poisoned()
        {
            self.finished = true;
            return false;
        }
        let cfg = &self.config;
        let generation = self.generation;
        if cfg.time_budget.is_some_and(|cap| self.start_time.elapsed() >= cap) {
            self.finished = true;
            return false;
        }
        // Cap the generation to the remaining evaluation budget; a short
        // (partial) generation is still evaluated, applied, and recorded
        // before stopping, so the trace accounts for every evaluation.
        let remaining =
            cfg.max_evaluations.map_or(u64::MAX, |cap| cap.saturating_sub(self.evaluations));
        if remaining == 0 {
            self.finished = true;
            return false;
        }
        let mut order: Vec<usize> = (0..cfg.population).collect();
        order.shuffle(rng);
        order.truncate(remaining.min(cfg.population as u64) as usize);
        let partial = order.len() < cfg.population;

        let mut children: Vec<P::Solution> = Vec::with_capacity(order.len());
        let mut pools: Vec<Vec<usize>> = Vec::with_capacity(order.len());
        let mate_span = self.obs.span("mate");
        for &i in &order {
            let whole: Vec<usize>;
            let pool: &[usize] = if rng.gen_bool(cfg.delta) {
                &self.nbhd[i]
            } else {
                whole = (0..cfg.population).collect();
                &whole
            };
            let pa = pool[rng.gen_range(0..pool.len())];
            let child = if pool.len() < 2 {
                // A one-element pool cannot supply a distinct second
                // parent; mutate instead of self-mating.
                self.problem.neighbor(&self.solutions[pa], rng)
            } else {
                let mut pb = pool[rng.gen_range(0..pool.len())];
                if pb == pa {
                    pb = pool[(pool.iter().position(|&x| x == pa).expect("pa in pool") + 1)
                        % pool.len()];
                }
                self.problem.crossover(&self.solutions[pa], &self.solutions[pb], rng)
            };
            children.push(child);
            pools.push(pool.to_vec());
        }
        drop(mate_span);

        let batch = self.evaluator.evaluate(self.problem, &children);
        self.evaluations += batch.attempts;
        if self.evaluator.poisoned() {
            self.finished = true;
            return false;
        }
        let select_span = self.obs.span("select");
        let mut ea_improvements = 0u64;
        for ((child, child_objs), pool) in children.iter().zip(&batch.objectives).zip(&pools) {
            let Some(child_objs) = child_objs else { continue };
            if is_quarantined(child_objs) {
                continue;
            }
            self.z.update(child_objs);
            self.normalizer.observe(child_objs);
            self.recorder.observe(child_objs);

            let g = |objs: &[f64], w: &[f64]| {
                Scalarizer::Tchebycheff.value(
                    &self.normalizer.normalize(objs),
                    w,
                    &self.normalizer.normalize(self.z.values()),
                )
            };
            let mut replaced = 0;
            for &j in pool {
                if replaced >= cfg.max_replacements {
                    break;
                }
                if g(child_objs, &self.weights[j]) < g(&self.objectives[j], &self.weights[j]) {
                    self.solutions[j] = child.clone();
                    self.objectives[j] = child_objs.clone();
                    replaced += 1;
                }
            }
            ea_improvements += replaced as u64;
        }
        if ea_improvements > 0 {
            self.obs.counter(moela_obs::names::EA_IMPROVEMENTS, ea_improvements);
        }
        drop(select_span);
        {
            let _archive = self.obs.span("archive_update");
            self.recorder.record(
                generation + 1,
                self.evaluations,
                self.start_time.elapsed(),
                &self.objectives,
            );
        }
        self.generation = generation + 1;
        self.obs.counter("generations", 1);
        if let Some(point) = self.recorder.points().last() {
            self.obs.gauge("phv", point.phv);
        }
        if partial {
            self.finished = true;
            return false;
        }
        true
    }

    /// Consumes the state, producing the final result.
    pub fn finish(self) -> RunResult<P::Solution> {
        RunResult {
            population: self.solutions.into_iter().zip(self.objectives).collect(),
            trace: self.recorder.into_points(),
            evaluations: self.evaluations,
            elapsed: self.start_time.elapsed(),
        }
    }

    /// Captures the complete optimizer state (the RNG is checkpointed by
    /// the driver alongside).
    pub fn snapshot_state<C: SolutionCodec<P::Solution>>(&self, codec: &C) -> Value {
        let entries: Vec<(P::Solution, Vec<f64>)> =
            self.solutions.iter().cloned().zip(self.objectives.iter().cloned()).collect();
        Value::object(vec![
            ("generation", Value::U64(self.generation as u64)),
            ("finished", Value::Bool(self.finished)),
            ("evaluations", Value::U64(self.evaluations)),
            ("recorder", self.recorder.snapshot()),
            ("population", entries_to_value(&entries, codec)),
            ("z", self.z.snapshot()),
            ("normalizer", self.normalizer.snapshot()),
            ("faults", self.evaluator.log().snapshot()),
        ])
    }

    /// Fault counters accumulated by the guarded evaluator.
    pub fn fault_log(&self) -> &FaultLog {
        self.evaluator.log()
    }

    /// The latched `Fail`-policy fault, if one stopped the run.
    pub fn fault_error(&self) -> Option<&EvalFault> {
        self.evaluator.error()
    }
}

impl<'p, P, C> Resumable<C> for MoeadState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    type Solution = P::Solution;

    fn completed(&self) -> u64 {
        MoeadState::completed(self)
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        MoeadState::step(self, rng)
    }

    fn snapshot_state(&self, codec: &C) -> Value {
        MoeadState::snapshot_state(self, codec)
    }

    fn finish(self) -> RunResult<P::Solution> {
        MoeadState::finish(self)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        Some(MoeadState::fault_log(self))
    }

    fn fault_error(&self) -> Option<&EvalFault> {
        MoeadState::fault_error(self)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        MoeadState::set_cancel(self, token);
    }

    fn set_obs(&mut self, obs: Obs) {
        MoeadState::set_obs(self, obs);
    }

    fn evaluations(&self) -> u64 {
        MoeadState::evaluations(self)
    }

    fn latest_phv(&self) -> Option<f64> {
        self.recorder.points().last().map(|p| p.phv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::Zdt;
    use moela_persist::VecF64Codec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn converges_toward_the_zdt1_front() {
        let problem = Zdt::zdt1(8);
        let config = MoeadConfig { population: 20, generations: 60, ..Default::default() };
        let out = Moead::new(config, &problem).run(&mut rng(1));
        let d = igd(&out.front_objectives(), &problem.true_front(100));
        assert!(d < 0.3, "IGD {d}");
    }

    #[test]
    fn trace_improves_over_generations() {
        let problem = Zdt::zdt2(8);
        let config = MoeadConfig { population: 16, generations: 30, ..Default::default() };
        let out = Moead::new(config, &problem).run(&mut rng(2));
        assert!(out.trace.last().expect("non-empty").phv > out.trace[0].phv);
    }

    #[test]
    fn respects_the_evaluation_cap() {
        let problem = Zdt::zdt1(8);
        // 299 does not divide into init + whole generations, forcing a
        // partial final generation.
        let config = MoeadConfig {
            population: 10,
            generations: 10_000,
            max_evaluations: Some(299),
            ..Default::default()
        };
        let out = Moead::new(config, &problem).run(&mut rng(3));
        assert_eq!(out.evaluations, 299, "batches are capped to the remaining budget");
        let last = out.trace.last().expect("non-empty trace");
        assert_eq!(
            last.evaluations, out.evaluations,
            "the partial final generation must still reach the trace"
        );
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let problem = Zdt::zdt2(8);
        let run = |threads: usize| {
            let config =
                MoeadConfig { population: 12, generations: 8, threads, ..Default::default() };
            Moead::new(config, &problem).run(&mut rng(6))
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.population, sequential.population);
        assert_eq!(parallel.evaluations, sequential.evaluations);
        let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
            r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
        };
        assert_eq!(trace(&parallel), trace(&sequential));
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = Zdt::zdt3(8);
        let config = MoeadConfig { population: 10, generations: 10, ..Default::default() };
        let a = Moead::new(config.clone(), &problem).run(&mut rng(4));
        let b = Moead::new(config, &problem).run(&mut rng(4));
        let objs = |r: &RunResult<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&a), objs(&b));
    }

    #[test]
    #[should_panic(expected = "neighborhood")]
    fn oversized_neighborhood_is_rejected() {
        let problem = Zdt::zdt1(4);
        Moead::new(MoeadConfig { population: 5, neighborhood: 6, ..Default::default() }, &problem);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_at_every_boundary() {
        let problem = Zdt::zdt2(8);
        let config = MoeadConfig { population: 10, generations: 6, ..Default::default() };
        let moead = Moead::new(config.clone(), &problem);
        let baseline = Moead::new(config, &problem).run(&mut rng(31));

        for boundary in 0..6u64 {
            let mut r = rng(31);
            let mut state = moead.start(&mut r);
            while state.completed() < boundary && state.step(&mut r) {}
            let snap = state.snapshot_state(&VecF64Codec);
            let mut r2 = rand::rngs::StdRng::from_state(r.state());
            let mut resumed = moead.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
            while resumed.step(&mut r2) {}
            let out = resumed.finish();
            assert_eq!(out.population, baseline.population, "boundary {boundary}");
            assert_eq!(out.evaluations, baseline.evaluations);
            let trace = |r: &RunResult<Vec<f64>>| -> Vec<(usize, u64, f64)> {
                r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
            };
            assert_eq!(trace(&out), trace(&baseline), "boundary {boundary}");
        }
    }

    /// Under injected chaos with a containment policy, a full MOEA/D run
    /// completes, stays finite, and is bit-identical at any thread count.
    #[test]
    fn chaotic_runs_are_finite_and_thread_invariant() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.05,nan=0.05,inf=0.03,arity=0.03").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 31);
            let config = MoeadConfig {
                population: 10,
                generations: 6,
                threads,
                fault: FaultConfig { policy: FaultPolicy::PenalizeWorst, retries: 1 },
                ..Default::default()
            };
            let mut r = rng(13);
            let mut state = Moead::new(config, &problem).start(&mut r);
            while state.step(&mut r) {}
            let log = *state.fault_log();
            (state.finish(), log)
        };
        let (base, base_log) = run(1);
        assert!(base_log.faults() > 0, "the spec must actually inject");
        assert!(base.population.iter().all(|(_, o)| o.iter().all(|v| v.is_finite())));
        for threads in [2, 4] {
            let (out, log) = run(threads);
            assert_eq!(out.population, base.population, "threads = {threads}");
            assert_eq!(out.evaluations, base.evaluations);
            assert_eq!(log, base_log, "fault counters must not depend on threads");
        }
    }

    /// The default Fail policy latches the first fault as a structured
    /// error and stops the run instead of aborting the process.
    #[test]
    fn fail_policy_latches_a_structured_error() {
        use moela_moo::fault::FaultKind;
        use moela_moo::{ChaosProblem, ChaosSpec};
        let problem = ChaosProblem::new(Zdt::zdt1(6), ChaosSpec::parse("panic=1.0").unwrap(), 5);
        let config =
            MoeadConfig { population: 6, neighborhood: 3, generations: 10, ..Default::default() };
        let mut r = rng(1);
        let mut state = Moead::new(config, &problem).start(&mut r);
        assert!(!state.step(&mut r), "the poisoned guard must stop the run");
        let err = state.fault_error().expect("a latched error");
        assert_eq!(err.kind, FaultKind::Panic);
        let via_trait =
            <MoeadState<_> as Resumable<VecF64Codec>>::fault_error(&state).expect("surfaced");
        assert_eq!(via_trait, err);
    }

    /// Interrupting a chaotic run and resuming (restoring the fault log
    /// and the chaos ordinal) reproduces the uninterrupted run.
    #[test]
    fn chaos_resume_round_trips_fault_counters_bit_identically() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("nan=0.1,arity=0.05").unwrap();
        let config = MoeadConfig {
            population: 10,
            generations: 5,
            fault: FaultConfig { policy: FaultPolicy::Skip, retries: 1 },
            ..Default::default()
        };

        let baseline_problem = ChaosProblem::new(Zdt::zdt3(8), spec, 77);
        let mut r = rng(17);
        let mut state = Moead::new(config.clone(), &baseline_problem).start(&mut r);
        while state.step(&mut r) {}
        let base_log = *state.fault_log();
        let baseline = state.finish();
        assert!(base_log.faults() > 0, "the spec must actually inject");

        let interrupted_problem = ChaosProblem::new(Zdt::zdt3(8), spec, 77);
        let moead2 = Moead::new(config.clone(), &interrupted_problem);
        let mut r = rng(17);
        let mut state = moead2.start(&mut r);
        while state.completed() < 2 && state.step(&mut r) {}
        let snap = state.snapshot_state(&VecF64Codec);
        let ordinal = interrupted_problem.ordinal();
        let rng_state = r.state();

        let resumed_problem = ChaosProblem::new(Zdt::zdt3(8), spec, 77);
        resumed_problem.set_ordinal(ordinal);
        let moead3 = Moead::new(config, &resumed_problem);
        let mut r2 = rand::rngs::StdRng::from_state(rng_state);
        let mut resumed = moead3.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
        while resumed.step(&mut r2) {}
        assert_eq!(*resumed.fault_log(), base_log, "health counters must round-trip");
        let out = resumed.finish();
        assert_eq!(out.population, baseline.population);
        assert_eq!(out.evaluations, baseline.evaluations);
    }

    #[test]
    fn restore_rejects_population_size_mismatch() {
        let problem = Zdt::zdt1(6);
        let config =
            MoeadConfig { population: 8, neighborhood: 4, generations: 3, ..Default::default() };
        let moead = Moead::new(config, &problem);
        let mut r = rng(1);
        let state = moead.start(&mut r);
        let snap = state.snapshot_state(&VecF64Codec);
        let other = Moead::new(
            MoeadConfig { population: 12, neighborhood: 4, generations: 3, ..Default::default() },
            &problem,
        );
        assert!(other.restore(&VecF64Codec, &snap, Duration::ZERO).is_err());
    }
}
