//! Baseline multi-objective optimizers for the MOELA comparison study.
//!
//! Every algorithm the paper evaluates against (plus two naive brackets)
//! is implemented here over the same [`moela_moo::Problem`] trait MOELA
//! uses, and returns the same [`moela_moo::run::RunResult`], so the
//! benchmark harness compares them on identical footing:
//!
//! * [`Moead`] — MOEA/D (Zhang & Li 2007), the decomposition EA;
//! * [`Moos`] — MOOS (Deshwal et al. 2019), ML-guided direction-adaptive
//!   local search;
//! * [`MooStage`] — MOO-STAGE (Joardar et al. 2019), STAGE-style learned
//!   restart policy;
//! * [`Nsga2`] — NSGA-II (Deb et al. 2002);
//! * [`random_search`] and [`multi_start_local_search`] — naive brackets.

pub mod common;
pub mod moead;
pub mod moo_stage;
pub mod moos;
pub mod nsga2;
pub mod simple;

pub use moead::{Moead, MoeadConfig, MoeadState};
pub use moo_stage::{MooStage, MooStageConfig, MooStageState};
pub use moos::{Moos, MoosConfig, MoosState};
pub use nsga2::{Nsga2, Nsga2Config, Nsga2State};
pub use simple::{
    multi_start_local_search, random_search, random_search_restore, random_search_start,
    MultiStartConfig, RandomSearchConfig, RandomSearchState,
};
