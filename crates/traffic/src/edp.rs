//! Analytic energy-delay-product model (gem5-gpu re-simulation substitute).
//!
//! The paper feeds each final design back through gem5-gpu + GPUWattch to
//! obtain an EDP figure (Fig. 3). We substitute a closed-form composition
//! that captures the first-order effects a cycle simulator would report:
//!
//! * **Delay** — a compute-bound baseline stretched by memory/network
//!   stalls: average packet latency raises stall time, and the most
//!   saturated link throttles throughput with an M/M/1-style factor.
//! * **Energy** — PE power integrated over the run, plus network energy
//!   proportional to flit·hop work.
//!
//! The absolute numbers are arbitrary-unit; Fig. 3 only uses EDP *ratios*
//! between algorithms on the same workload, which this model preserves:
//! designs with lower latency, lower congestion, and lower network energy
//! get a lower EDP, with app-dependent weights (memory-bound apps are more
//! latency-sensitive).

use crate::benchmark::Benchmark;

/// Network-level summary statistics of one design under one workload.
/// Produced by the platform model (`moela-manycore`); consumed here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkStats {
    /// Traffic-weighted average end-to-end packet latency, cycles.
    pub avg_packet_latency: f64,
    /// Utilization of the most loaded link, normalized to link capacity
    /// (may exceed 1 for infeasible demand; the model saturates).
    pub max_link_utilization: f64,
    /// Total network energy per kilo-cycle (links + routers), arbitrary
    /// energy units.
    pub network_energy_rate: f64,
    /// Total PE power, watts.
    pub total_pe_power: f64,
}

/// The analytic EDP evaluator.
///
/// # Example
///
/// ```
/// use moela_traffic::{edp::{EdpModel, NetworkStats}, Benchmark};
///
/// let model = EdpModel::new(Benchmark::Bfs);
/// let good = NetworkStats {
///     avg_packet_latency: 20.0,
///     max_link_utilization: 0.3,
///     network_energy_rate: 5.0,
///     total_pe_power: 120.0,
/// };
/// let bad = NetworkStats { avg_packet_latency: 60.0, ..good };
/// assert!(model.edp(&good) < model.edp(&bad));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdpModel {
    benchmark: Benchmark,
    /// Baseline compute time in kilo-cycles for the modeled phase.
    base_time: f64,
    /// Fraction of baseline time that is memory-stall-able.
    memory_sensitivity: f64,
}

impl EdpModel {
    /// An EDP model for `benchmark`, deriving its latency sensitivity from
    /// the benchmark's arithmetic intensity (memory-bound apps stall more).
    pub fn new(benchmark: Benchmark) -> Self {
        let profile = benchmark.profile();
        Self { benchmark, base_time: 1000.0, memory_sensitivity: 1.0 - profile.compute_intensity }
    }

    /// The benchmark this model is tuned for.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Estimated execution time in kilo-cycles.
    ///
    /// `time = base · (compute + mem_sens · latency/REF) · congestion`
    /// where congestion is an M/M/1-style stretch `1/(1 − u)` saturated at
    /// 10× for `u → 1`.
    pub fn execution_time(&self, stats: &NetworkStats) -> f64 {
        const REFERENCE_LATENCY: f64 = 30.0; // cycles: an uncongested trip
        let compute = 1.0 - self.memory_sensitivity;
        let stall =
            self.memory_sensitivity * (stats.avg_packet_latency / REFERENCE_LATENCY).max(0.0);
        let u = stats.max_link_utilization.clamp(0.0, 0.999);
        let congestion = (1.0 / (1.0 - u)).min(10.0);
        self.base_time * (compute + stall) * congestion
    }

    /// Estimated total energy (arbitrary units).
    pub fn energy(&self, stats: &NetworkStats) -> f64 {
        let time = self.execution_time(stats);
        (stats.total_pe_power + stats.network_energy_rate) * time
    }

    /// Energy-delay product: `energy × time`.
    pub fn edp(&self, stats: &NetworkStats) -> f64 {
        self.energy(stats) * self.execution_time(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> NetworkStats {
        NetworkStats {
            avg_packet_latency: 25.0,
            max_link_utilization: 0.4,
            network_energy_rate: 8.0,
            total_pe_power: 150.0,
        }
    }

    #[test]
    fn edp_increases_with_latency() {
        let m = EdpModel::new(Benchmark::Bfs);
        let slow = NetworkStats { avg_packet_latency: 80.0, ..baseline() };
        assert!(m.edp(&slow) > m.edp(&baseline()));
    }

    #[test]
    fn edp_increases_with_congestion() {
        let m = EdpModel::new(Benchmark::Hot);
        let congested = NetworkStats { max_link_utilization: 0.95, ..baseline() };
        assert!(m.edp(&congested) > m.edp(&baseline()));
    }

    #[test]
    fn edp_increases_with_network_energy() {
        let m = EdpModel::new(Benchmark::Gau);
        let hungry = NetworkStats { network_energy_rate: 30.0, ..baseline() };
        assert!(m.edp(&hungry) > m.edp(&baseline()));
    }

    #[test]
    fn memory_bound_apps_are_more_latency_sensitive() {
        let bfs = EdpModel::new(Benchmark::Bfs); // intensity 0.35
        let hot = EdpModel::new(Benchmark::Hot); // intensity 0.9
        let fast = baseline();
        let slow = NetworkStats { avg_packet_latency: 75.0, ..baseline() };
        let bfs_ratio = bfs.execution_time(&slow) / bfs.execution_time(&fast);
        let hot_ratio = hot.execution_time(&slow) / hot.execution_time(&fast);
        assert!(
            bfs_ratio > hot_ratio,
            "BFS must stretch more under latency (bfs {bfs_ratio:.2} vs hot {hot_ratio:.2})"
        );
    }

    #[test]
    fn congestion_stretch_saturates() {
        let m = EdpModel::new(Benchmark::Pf);
        let melted = NetworkStats { max_link_utilization: 5.0, ..baseline() };
        let nearly = NetworkStats { max_link_utilization: 0.999, ..baseline() };
        assert_eq!(m.execution_time(&melted), m.execution_time(&nearly));
        assert!(m.execution_time(&melted).is_finite());
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let m = EdpModel::new(Benchmark::Srad);
        let s = baseline();
        let expected = m.energy(&s) * m.execution_time(&s);
        assert!((m.edp(&s) - expected).abs() < 1e-9);
    }
}
