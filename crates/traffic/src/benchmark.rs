//! The seven Rodinia benchmarks and their communication/compute profiles.
//!
//! Each application is characterized by a [`TrafficProfile`] — the knobs of
//! the statistical synthesizer in [`crate::synth`]. The shapes follow the
//! published characterizations of the Rodinia suite (Che et al., IISWC
//! 2009) and the CPU–GPU traffic analyses in the MOO-STAGE/MOOS line of
//! work: stencil kernels exchange with spatial neighbors, graph traversal
//! is irregular and heavy-tailed, elimination kernels broadcast pivots, and
//! clustering gathers around hot centers.

/// One of the seven Rodinia applications the paper evaluates.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Back Propagation — layered neural-network training.
    Bp,
    /// Breadth-First Search — irregular graph traversal.
    Bfs,
    /// Gaussian Elimination — pivot-row broadcast per step.
    Gau,
    /// Hotspot3D — 3D stencil thermal simulation.
    Hot,
    /// PathFinder — row-wise dynamic programming.
    Pf,
    /// Streamcluster — online clustering around hot centers.
    Sc,
    /// SRAD — speckle-reducing anisotropic diffusion (2D stencil + reduce).
    Srad,
}

impl Benchmark {
    /// All seven applications, in the paper's listing order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Bp,
        Benchmark::Bfs,
        Benchmark::Gau,
        Benchmark::Hot,
        Benchmark::Pf,
        Benchmark::Sc,
        Benchmark::Srad,
    ];

    /// The six applications the paper's result tables report (Streamcluster
    /// is profiled but not tabulated).
    pub const TABLED: [Benchmark; 6] = [
        Benchmark::Bfs,
        Benchmark::Bp,
        Benchmark::Gau,
        Benchmark::Hot,
        Benchmark::Pf,
        Benchmark::Srad,
    ];

    /// The short name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Bp => "BP",
            Benchmark::Bfs => "BFS",
            Benchmark::Gau => "GAU",
            Benchmark::Hot => "HOT",
            Benchmark::Pf => "PF",
            Benchmark::Sc => "SC",
            Benchmark::Srad => "SRAD",
        }
    }

    /// The synthesizer profile of this application.
    pub fn profile(&self) -> TrafficProfile {
        match self {
            // Layered NN: heavy GPU↔LLC weight traffic, moderate GPU↔GPU
            // between adjacent layers, modest skew.
            Benchmark::Bp => TrafficProfile {
                cpu_llc: 0.6,
                gpu_llc: 2.2,
                gpu_gpu: 0.9,
                cpu_cpu: 0.08,
                llc_skew: 0.6,
                gpu_pattern: GpuPattern::NeighborChain,
                active_fraction: 0.95,
                compute_intensity: 0.75,
                burstiness: 0.3,
            },
            // Graph traversal: irregular, strongly skewed LLC demand, little
            // GPU↔GPU, low arithmetic intensity.
            Benchmark::Bfs => TrafficProfile {
                cpu_llc: 0.8,
                gpu_llc: 3.0,
                gpu_gpu: 0.25,
                cpu_cpu: 0.1,
                llc_skew: 1.4,
                gpu_pattern: GpuPattern::Random,
                active_fraction: 0.7,
                compute_intensity: 0.35,
                burstiness: 0.8,
            },
            // Elimination: pivot-row broadcast dominates, streaming LLC.
            Benchmark::Gau => TrafficProfile {
                cpu_llc: 0.4,
                gpu_llc: 1.6,
                gpu_gpu: 1.8,
                cpu_cpu: 0.05,
                llc_skew: 0.4,
                gpu_pattern: GpuPattern::Broadcast,
                active_fraction: 1.0,
                compute_intensity: 0.8,
                burstiness: 0.25,
            },
            // 3D stencil: regular neighbor exchange is the dominant class.
            Benchmark::Hot => TrafficProfile {
                cpu_llc: 0.3,
                gpu_llc: 1.2,
                gpu_gpu: 2.6,
                cpu_cpu: 0.04,
                llc_skew: 0.25,
                gpu_pattern: GpuPattern::Stencil2d,
                active_fraction: 1.0,
                compute_intensity: 0.9,
                burstiness: 0.15,
            },
            // Row-wise DP: 1-D neighbor chain plus streaming reads.
            Benchmark::Pf => TrafficProfile {
                cpu_llc: 0.5,
                gpu_llc: 1.8,
                gpu_gpu: 1.3,
                cpu_cpu: 0.06,
                llc_skew: 0.5,
                gpu_pattern: GpuPattern::NeighborChain,
                active_fraction: 0.9,
                compute_intensity: 0.6,
                burstiness: 0.4,
            },
            // Clustering: gather/scatter around hot centers, CPUs busy.
            Benchmark::Sc => TrafficProfile {
                cpu_llc: 1.4,
                gpu_llc: 2.0,
                gpu_gpu: 0.5,
                cpu_cpu: 0.25,
                llc_skew: 1.1,
                gpu_pattern: GpuPattern::Random,
                active_fraction: 0.85,
                compute_intensity: 0.55,
                burstiness: 0.6,
            },
            // 2-D stencil with a global reduction phase.
            Benchmark::Srad => TrafficProfile {
                cpu_llc: 0.45,
                gpu_llc: 1.5,
                gpu_gpu: 2.1,
                cpu_cpu: 0.05,
                llc_skew: 0.35,
                gpu_pattern: GpuPattern::Stencil2d,
                active_fraction: 1.0,
                compute_intensity: 0.7,
                burstiness: 0.2,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The spatial structure of GPU↔GPU communication.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum GpuPattern {
    /// Each GPU exchanges with its logical 2-D grid neighbors (stencils).
    Stencil2d,
    /// Each GPU exchanges with its predecessor/successor (pipelines, DP).
    NeighborChain,
    /// One (rotating) source sends to all others (pivot broadcast).
    Broadcast,
    /// Uniformly random pairs (irregular kernels).
    Random,
}

/// Synthesizer knobs for one application.
///
/// All class weights are *relative flit-rate intensities*; the synthesizer
/// normalizes total injected traffic so applications are comparable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficProfile {
    /// CPU↔LLC request/reply intensity (latency-critical class).
    pub cpu_llc: f64,
    /// GPU↔LLC bulk transfer intensity (throughput class).
    pub gpu_llc: f64,
    /// GPU↔GPU exchange intensity.
    pub gpu_gpu: f64,
    /// CPU↔CPU coherence chatter intensity.
    pub cpu_cpu: f64,
    /// Zipf exponent of LLC home-slice popularity (0 = uniform; larger =
    /// more hot-slice concentration).
    pub llc_skew: f64,
    /// Spatial structure of the GPU↔GPU class.
    pub gpu_pattern: GpuPattern,
    /// Fraction of GPUs that are active in the phase being modeled.
    pub active_fraction: f64,
    /// Arithmetic intensity in `[0,1]`: scales dynamic power and compute
    /// time in the EDP model.
    pub compute_intensity: f64,
    /// Multiplicative log-normal jitter applied per pair (0 = none).
    pub burstiness: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_positive_class_weights() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.cpu_llc > 0.0 && p.gpu_llc > 0.0 && p.gpu_gpu > 0.0 && p.cpu_cpu > 0.0);
            assert!((0.0..=1.0).contains(&p.active_fraction), "{b}");
            assert!((0.0..=1.0).contains(&p.compute_intensity), "{b}");
            assert!(p.llc_skew >= 0.0 && p.burstiness >= 0.0);
        }
    }

    #[test]
    fn profiles_differentiate_the_applications() {
        // The structural claims the synthesizer encodes: BFS is the most
        // LLC-skewed; HOT is the most stencil-dominated; SC has the most
        // CPU involvement.
        let most_skewed = Benchmark::ALL
            .into_iter()
            .max_by(|a, b| a.profile().llc_skew.total_cmp(&b.profile().llc_skew))
            .expect("non-empty");
        assert_eq!(most_skewed, Benchmark::Bfs);
        let most_stencil = Benchmark::ALL
            .into_iter()
            .max_by(|a, b| a.profile().gpu_gpu.total_cmp(&b.profile().gpu_gpu))
            .expect("non-empty");
        assert_eq!(most_stencil, Benchmark::Hot);
        let most_cpu = Benchmark::ALL
            .into_iter()
            .max_by(|a, b| a.profile().cpu_llc.total_cmp(&b.profile().cpu_llc))
            .expect("non-empty");
        assert_eq!(most_cpu, Benchmark::Sc);
    }

    #[test]
    fn names_match_the_paper_tables() {
        let names: Vec<&str> = Benchmark::TABLED.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["BFS", "BP", "GAU", "HOT", "PF", "SRAD"]);
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(Benchmark::Srad.to_string(), "SRAD");
    }
}
