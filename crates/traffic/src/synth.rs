//! The traffic synthesizer: benchmark profile → `f_ij` matrix + power.

use rand::{Rng, SeedableRng};

use crate::benchmark::{Benchmark, GpuPattern};
use crate::power;
use crate::{PeKind, PeMix};

/// Total injected traffic every synthesized workload is normalized to, in
/// flits per kilo-cycle. Normalizing makes objective values comparable
/// across applications; only the *distribution* differs per benchmark.
pub const NORMALIZED_TOTAL_TRAFFIC: f64 = 1000.0;

/// A synthesized workload: the communication frequency matrix `f_ij` over
/// logical PEs and the average power of each PE.
///
/// # Example
///
/// ```
/// use moela_traffic::{Benchmark, PeMix, Workload};
///
/// let w = Workload::synthesize(Benchmark::Hot, PeMix::new(2, 9, 4), 1);
/// // Stencil app: GPU↔GPU traffic must exist.
/// let gpu0 = 2; // first GPU id
/// let any_gpu_pair: f64 = (2..11).map(|j| w.traffic(gpu0, j)).sum();
/// assert!(any_gpu_pair > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    benchmark: Benchmark,
    mix: PeMix,
    /// Row-major `f[i * n + j]`, flits per kilo-cycle from PE i to PE j.
    traffic: Vec<f64>,
    /// Average power per logical PE, watts.
    power: Vec<f64>,
}

impl Workload {
    /// Synthesizes the workload of `benchmark` on a `mix` population.
    /// Deterministic for a given `(benchmark, mix, seed)` triple.
    pub fn synthesize(benchmark: Benchmark, mix: PeMix, seed: u64) -> Self {
        let profile = benchmark.profile();
        let n = mix.total();
        // Distinct, deterministic stream per (benchmark, seed).
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (benchmark as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut f = vec![0.0f64; n * n];

        // LLC home-slice popularity: Zipf(llc_skew) over a randomly
        // permuted ranking, so the hot slice differs per seed.
        let llc_ids: Vec<usize> = mix.ids_of(PeKind::Llc).collect();
        let mut llc_rank: Vec<usize> = (0..llc_ids.len()).collect();
        for i in (1..llc_rank.len()).rev() {
            let j = rng.gen_range(0..=i);
            llc_rank.swap(i, j);
        }
        let zipf: Vec<f64> = {
            let raw: Vec<f64> =
                (0..llc_ids.len()).map(|r| 1.0 / ((r + 1) as f64).powf(profile.llc_skew)).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / total).collect()
        };
        // popularity[k] = probability mass of LLC llc_ids[k].
        let mut popularity = vec![0.0; llc_ids.len()];
        for (rank, &slot) in llc_rank.iter().enumerate() {
            popularity[slot] = zipf[rank];
        }

        let jitter = |rng: &mut rand::rngs::StdRng| -> f64 {
            if profile.burstiness == 0.0 {
                1.0
            } else {
                // Log-normal-ish multiplicative jitter.
                let u: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum();
                (u * profile.burstiness).exp()
            }
        };

        // CPU↔LLC: requests (1 flit) out, replies (4-flit cache lines) back.
        for c in mix.ids_of(PeKind::Cpu) {
            let activity = jitter(&mut rng);
            for (k, &l) in llc_ids.iter().enumerate() {
                let demand = profile.cpu_llc * popularity[k] * activity;
                f[c * n + l] += demand; // request
                f[l * n + c] += 4.0 * demand; // reply
            }
        }

        // GPU↔LLC: bulk transfers, mostly replies (reads dominate).
        let gpu_ids: Vec<usize> = mix.ids_of(PeKind::Gpu).collect();
        let active_gpus = ((gpu_ids.len() as f64 * profile.active_fraction).ceil() as usize)
            .clamp(1, gpu_ids.len());
        for &g in gpu_ids.iter().take(active_gpus) {
            let activity = jitter(&mut rng);
            for (k, &l) in llc_ids.iter().enumerate() {
                let demand = profile.gpu_llc * popularity[k] * activity;
                f[g * n + l] += demand;
                f[l * n + g] += 4.0 * demand;
            }
        }

        // GPU↔GPU: pattern-dependent.
        let per_gpu = profile.gpu_gpu;
        match profile.gpu_pattern {
            GpuPattern::Stencil2d => {
                // Arrange active GPUs on a logical √A × √A grid; exchange
                // with up to 4 neighbors.
                let side = (active_gpus as f64).sqrt().ceil() as usize;
                for (idx, &g) in gpu_ids.iter().take(active_gpus).enumerate() {
                    let (x, y) = (idx % side, idx / side);
                    let mut neighbors = Vec::new();
                    if x > 0 {
                        neighbors.push(idx - 1);
                    }
                    if x + 1 < side && idx + 1 < active_gpus {
                        neighbors.push(idx + 1);
                    }
                    if y > 0 {
                        neighbors.push(idx - side);
                    }
                    if idx + side < active_gpus {
                        neighbors.push(idx + side);
                    }
                    for nb in neighbors {
                        f[g * n + gpu_ids[nb]] += per_gpu * jitter(&mut rng);
                    }
                }
            }
            GpuPattern::NeighborChain => {
                for idx in 0..active_gpus.saturating_sub(1) {
                    let a = gpu_ids[idx];
                    let b = gpu_ids[idx + 1];
                    let v = per_gpu * jitter(&mut rng);
                    f[a * n + b] += v;
                    f[b * n + a] += v;
                }
            }
            GpuPattern::Broadcast => {
                // Rotating pivot: model as every GPU broadcasting a share.
                for (idx, &src) in gpu_ids.iter().take(active_gpus).enumerate() {
                    let share = per_gpu / active_gpus as f64;
                    for (jdx, &dst) in gpu_ids.iter().take(active_gpus).enumerate() {
                        if idx != jdx {
                            f[src * n + dst] += share * jitter(&mut rng);
                        }
                    }
                }
            }
            GpuPattern::Random => {
                // Sparse random pairs: each active GPU talks to ~3 partners.
                for &src in gpu_ids.iter().take(active_gpus) {
                    for _ in 0..3 {
                        let dst = gpu_ids[rng.gen_range(0..active_gpus)];
                        if dst != src {
                            f[src * n + dst] += per_gpu / 3.0 * jitter(&mut rng);
                        }
                    }
                }
            }
        }

        // CPU↔CPU coherence chatter: all-to-all light traffic.
        let cpu_ids: Vec<usize> = mix.ids_of(PeKind::Cpu).collect();
        for &a in &cpu_ids {
            for &b in &cpu_ids {
                if a != b {
                    f[a * n + b] += profile.cpu_cpu / cpu_ids.len() as f64 * jitter(&mut rng);
                }
            }
        }

        // Normalize total injected traffic.
        let total: f64 = f.iter().sum();
        debug_assert!(total > 0.0);
        let scale = NORMALIZED_TOTAL_TRAFFIC / total;
        for v in &mut f {
            *v *= scale;
        }

        let power = power::pe_powers(&profile, mix, &f, &mut rng);
        Self::assemble(benchmark, mix, f, power)
    }

    /// Internal constructor shared by the synthesizer and the importer
    /// ([`crate::import`]); inputs must already be validated.
    pub(crate) fn assemble(
        benchmark: Benchmark,
        mix: PeMix,
        traffic: Vec<f64>,
        power: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(traffic.len(), mix.total() * mix.total());
        debug_assert_eq!(power.len(), mix.total());
        Self { benchmark, mix, traffic, power }
    }

    /// The application this workload models.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The PE population.
    pub fn mix(&self) -> PeMix {
        self.mix
    }

    /// Number of logical PEs.
    pub fn pe_count(&self) -> usize {
        self.mix.total()
    }

    /// Communication frequency `f_ij` from PE `i` to PE `j`
    /// (flits per kilo-cycle).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn traffic(&self, i: usize, j: usize) -> f64 {
        let n = self.pe_count();
        assert!(i < n && j < n, "PE id out of range");
        self.traffic[i * n + j]
    }

    /// The whole traffic matrix, row-major.
    pub fn traffic_matrix(&self) -> &[f64] {
        &self.traffic
    }

    /// Sum of all `f_ij`.
    pub fn total_traffic(&self) -> f64 {
        self.traffic.iter().sum()
    }

    /// Average power of PE `i` in watts.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pe_power(&self, i: usize) -> f64 {
        self.power[i]
    }

    /// All PE powers, indexed by logical PE id.
    pub fn pe_powers(&self) -> &[f64] {
        &self.power
    }

    /// All `(i, j, f_ij)` triples with non-zero traffic.
    pub fn flows(&self) -> Vec<(usize, usize, f64)> {
        let n = self.pe_count();
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = self.traffic[i * n + j];
                if v > 0.0 {
                    out.push((i, j, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> PeMix {
        PeMix::new(4, 16, 8)
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let a = Workload::synthesize(Benchmark::Bfs, mix(), 3);
        let b = Workload::synthesize(Benchmark::Bfs, mix(), 3);
        assert_eq!(a, b);
        let c = Workload::synthesize(Benchmark::Bfs, mix(), 4);
        assert_ne!(a.traffic_matrix(), c.traffic_matrix());
    }

    #[test]
    fn different_benchmarks_produce_different_matrices() {
        let a = Workload::synthesize(Benchmark::Bfs, mix(), 3);
        let b = Workload::synthesize(Benchmark::Hot, mix(), 3);
        assert_ne!(a.traffic_matrix(), b.traffic_matrix());
    }

    #[test]
    fn total_traffic_is_normalized() {
        for b in Benchmark::ALL {
            let w = Workload::synthesize(b, mix(), 11);
            assert!(
                (w.total_traffic() - NORMALIZED_TOTAL_TRAFFIC).abs() < 1e-6,
                "{b}: {}",
                w.total_traffic()
            );
        }
    }

    #[test]
    fn traffic_is_nonnegative_and_diagonal_free() {
        let w = Workload::synthesize(Benchmark::Sc, mix(), 5);
        let n = w.pe_count();
        for i in 0..n {
            assert_eq!(w.traffic(i, i), 0.0, "self-traffic at {i}");
            for j in 0..n {
                assert!(w.traffic(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn replies_outweigh_requests_for_cpu_llc() {
        let w = Workload::synthesize(Benchmark::Sc, mix(), 5);
        let m = w.mix();
        let cpu = 0;
        let req: f64 = m.ids_of(PeKind::Llc).map(|l| w.traffic(cpu, l)).sum();
        let rep: f64 = m.ids_of(PeKind::Llc).map(|l| w.traffic(l, cpu)).sum();
        assert!(rep > req, "cache-line replies must dominate requests");
    }

    #[test]
    fn bfs_llc_demand_is_more_skewed_than_hot() {
        let skew = |b: Benchmark| {
            let w = Workload::synthesize(b, mix(), 7);
            let m = w.mix();
            let mut per_llc: Vec<f64> = m
                .ids_of(PeKind::Llc)
                .map(|l| (0..m.total()).map(|src| w.traffic(src, l)).sum::<f64>())
                .collect();
            per_llc.sort_by(|a, b| b.total_cmp(a));
            let total: f64 = per_llc.iter().sum();
            per_llc[0] / total // share of the hottest slice
        };
        assert!(skew(Benchmark::Bfs) > skew(Benchmark::Hot));
    }

    #[test]
    fn stencil_apps_have_dominant_gpu_gpu_class() {
        let class_share = |b: Benchmark| {
            let w = Workload::synthesize(b, mix(), 7);
            let m = w.mix();
            let gg: f64 = m
                .ids_of(PeKind::Gpu)
                .flat_map(|i| m.ids_of(PeKind::Gpu).map(move |j| (i, j)))
                .map(|(i, j)| w.traffic(i, j))
                .sum();
            gg / w.total_traffic()
        };
        assert!(class_share(Benchmark::Hot) > class_share(Benchmark::Bfs));
    }

    #[test]
    fn flows_enumerates_exactly_the_nonzero_entries() {
        let w = Workload::synthesize(Benchmark::Gau, mix(), 2);
        let flows = w.flows();
        let total: f64 = flows.iter().map(|&(_, _, v)| v).sum();
        assert!((total - w.total_traffic()).abs() < 1e-9);
        assert!(flows.iter().all(|&(i, j, v)| v > 0.0 && i != j));
    }

    #[test]
    fn every_pe_has_positive_power() {
        for b in Benchmark::ALL {
            let w = Workload::synthesize(b, mix(), 13);
            assert!(w.pe_powers().iter().all(|&p| p > 0.0), "{b}");
        }
    }

    #[test]
    fn gpus_draw_more_power_than_llcs() {
        let w = Workload::synthesize(Benchmark::Hot, mix(), 13);
        let m = w.mix();
        let avg = |k: PeKind| {
            let ids: Vec<usize> = m.ids_of(k).collect();
            ids.iter().map(|&i| w.pe_power(i)).sum::<f64>() / ids.len() as f64
        };
        assert!(avg(PeKind::Gpu) > avg(PeKind::Llc));
    }
}
