//! Importing externally profiled workloads.
//!
//! The synthesizer in [`crate::synth`] replaces the paper's gem5-gpu
//! profiling step, but users with access to real traces should be able to
//! feed them in: [`Workload::from_parts`] builds a workload from raw
//! `f_ij`/power data, and [`Workload::from_csv`] parses the simple CSV
//! formats a profiling script would emit.

use crate::{Benchmark, PeMix, Workload};

/// Errors from workload import.
#[derive(Clone, Debug, PartialEq)]
pub enum ImportError {
    /// The traffic matrix is not `n × n` for the mix's `n` PEs.
    TrafficShape {
        /// Elements provided.
        got: usize,
        /// Elements expected (`n²`).
        expected: usize,
    },
    /// The power vector length differs from the PE count.
    PowerShape {
        /// Elements provided.
        got: usize,
        /// Elements expected.
        expected: usize,
    },
    /// A value is negative, NaN, or infinite; the message locates it.
    InvalidValue(String),
    /// A CSV cell failed to parse; the message locates it.
    Parse(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::TrafficShape { got, expected } => {
                write!(f, "traffic matrix has {got} elements, expected {expected}")
            }
            ImportError::PowerShape { got, expected } => {
                write!(f, "power vector has {got} elements, expected {expected}")
            }
            ImportError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            ImportError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl Workload {
    /// Builds a workload from raw parts: a row-major `n × n` traffic
    /// matrix (`f_ij`, any non-negative unit) and per-PE average powers in
    /// watts. `benchmark` is a label used by reporting and the EDP model's
    /// latency-sensitivity lookup.
    ///
    /// # Errors
    ///
    /// Rejects shape mismatches, negative/non-finite entries, non-zero
    /// diagonal traffic, and non-positive powers.
    pub fn from_parts(
        benchmark: Benchmark,
        mix: PeMix,
        traffic: Vec<f64>,
        power: Vec<f64>,
    ) -> Result<Self, ImportError> {
        let n = mix.total();
        if traffic.len() != n * n {
            return Err(ImportError::TrafficShape { got: traffic.len(), expected: n * n });
        }
        if power.len() != n {
            return Err(ImportError::PowerShape { got: power.len(), expected: n });
        }
        for (idx, &v) in traffic.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(ImportError::InvalidValue(format!(
                    "traffic[{}, {}] = {v}",
                    idx / n,
                    idx % n
                )));
            }
            if idx / n == idx % n && v != 0.0 {
                return Err(ImportError::InvalidValue(format!(
                    "self-traffic at PE {} must be zero",
                    idx / n
                )));
            }
        }
        for (pe, &p) in power.iter().enumerate() {
            if !p.is_finite() || p <= 0.0 {
                return Err(ImportError::InvalidValue(format!("power[{pe}] = {p}")));
            }
        }
        Ok(Self::assemble(benchmark, mix, traffic, power))
    }

    /// Parses a workload from CSV text: `traffic_csv` holds `n` rows of
    /// `n` comma-separated `f_ij` values; `power_csv` holds one value per
    /// line (or one comma-separated row).
    ///
    /// # Errors
    ///
    /// Propagates [`ImportError::Parse`] with the offending row/column,
    /// plus every validation of [`Workload::from_parts`].
    pub fn from_csv(
        benchmark: Benchmark,
        mix: PeMix,
        traffic_csv: &str,
        power_csv: &str,
    ) -> Result<Self, ImportError> {
        let mut traffic = Vec::with_capacity(mix.total() * mix.total());
        for (row, line) in non_empty_lines(traffic_csv).enumerate() {
            for (col, cell) in line.split(',').enumerate() {
                let v: f64 = cell.trim().parse().map_err(|_| {
                    ImportError::Parse(format!("traffic row {row}, column {col}: '{cell}'"))
                })?;
                traffic.push(v);
            }
        }
        let mut power = Vec::with_capacity(mix.total());
        for (row, line) in non_empty_lines(power_csv).enumerate() {
            for (col, cell) in line.split(',').enumerate() {
                let v: f64 = cell.trim().parse().map_err(|_| {
                    ImportError::Parse(format!("power row {row}, column {col}: '{cell}'"))
                })?;
                power.push(v);
            }
        }
        Self::from_parts(benchmark, mix, traffic, power)
    }
}

fn non_empty_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines().map(str::trim).filter(|l| !l.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> PeMix {
        PeMix::new(1, 1, 1)
    }

    #[test]
    fn from_parts_round_trips() {
        let traffic = vec![0.0, 5.0, 1.0, 0.0, 0.0, 2.0, 3.0, 0.0, 0.0];
        let power = vec![2.0, 3.0, 0.5];
        let w = Workload::from_parts(Benchmark::Bp, mix(), traffic.clone(), power.clone())
            .expect("valid");
        assert_eq!(w.traffic(0, 1), 5.0);
        assert_eq!(w.traffic(2, 0), 3.0);
        assert_eq!(w.pe_power(1), 3.0);
        assert_eq!(w.traffic_matrix(), traffic.as_slice());
        assert_eq!(w.benchmark(), Benchmark::Bp);
    }

    #[test]
    fn shape_errors_are_specific() {
        let err = Workload::from_parts(Benchmark::Bp, mix(), vec![0.0; 4], vec![1.0; 3])
            .expect_err("bad shape");
        assert_eq!(err, ImportError::TrafficShape { got: 4, expected: 9 });
        let err = Workload::from_parts(Benchmark::Bp, mix(), vec![0.0; 9], vec![1.0; 2])
            .expect_err("bad power");
        assert_eq!(err, ImportError::PowerShape { got: 2, expected: 3 });
    }

    #[test]
    fn invalid_values_are_rejected() {
        let mut traffic = vec![0.0; 9];
        traffic[1] = -1.0;
        let err = Workload::from_parts(Benchmark::Bp, mix(), traffic, vec![1.0; 3])
            .expect_err("negative traffic");
        assert!(matches!(err, ImportError::InvalidValue(_)));

        let mut diag = vec![0.0; 9];
        diag[4] = 2.0; // self-traffic at PE 1
        let err = Workload::from_parts(Benchmark::Bp, mix(), diag, vec![1.0; 3])
            .expect_err("self traffic");
        assert!(err.to_string().contains("self-traffic"));

        let err = Workload::from_parts(Benchmark::Bp, mix(), vec![0.0; 9], vec![1.0, 0.0, 1.0])
            .expect_err("zero power");
        assert!(err.to_string().contains("power[1]"));
    }

    #[test]
    fn csv_parses_and_locates_errors() {
        let traffic = "0, 1, 2\n3, 0, 4\n5, 6, 0\n";
        let power = "1.5\n2.5\n0.5\n";
        let w = Workload::from_csv(Benchmark::Sc, mix(), traffic, power).expect("valid");
        assert_eq!(w.traffic(1, 2), 4.0);
        assert_eq!(w.pe_power(2), 0.5);

        let err =
            Workload::from_csv(Benchmark::Sc, mix(), "0, x, 2\n", power).expect_err("bad cell");
        assert!(err.to_string().contains("row 0, column 1"));
    }

    #[test]
    fn imported_workloads_drive_flows() {
        let traffic = vec![0.0, 7.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let w = Workload::from_parts(Benchmark::Gau, mix(), traffic, vec![1.0; 3]).expect("valid");
        assert_eq!(w.flows(), vec![(0, 1, 7.0)]);
        assert_eq!(w.total_traffic(), 7.0);
    }
}
