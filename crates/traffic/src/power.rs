//! Per-PE average power synthesis (McPAT/GPUWattch substitute).
//!
//! Power of a PE is a leakage/idle base plus a dynamic component scaled by
//! the application's arithmetic intensity (for compute PEs) or by the
//! traffic it serves (for LLC slices). Magnitudes follow published
//! McPAT/GPUWattch figures for small cores at the paper's clocks
//! (2.5 GHz x86 cores ≈ 2–4 W, 0.7 GHz Maxwell SMs ≈ 1.5–3.5 W,
//! 256 KB LLC slices ≈ 0.3–0.9 W).

use rand::Rng;

use crate::benchmark::TrafficProfile;
use crate::{PeKind, PeMix};

/// Idle/leakage power per kind, watts.
pub fn base_power(kind: PeKind) -> f64 {
    match kind {
        PeKind::Cpu => 1.2,
        PeKind::Gpu => 0.9,
        PeKind::Llc => 0.25,
    }
}

/// Peak dynamic power per kind, watts.
pub fn dynamic_power(kind: PeKind) -> f64 {
    match kind {
        PeKind::Cpu => 2.8,
        PeKind::Gpu => 2.6,
        PeKind::Llc => 0.65,
    }
}

/// Synthesizes the average power of every logical PE for a profile.
///
/// `traffic` is the already-synthesized row-major `f_ij` matrix; LLC slice
/// power scales with the traffic it serves relative to the busiest slice.
/// A ±10 % per-PE jitter models process/workload variation.
pub(crate) fn pe_powers(
    profile: &TrafficProfile,
    mix: PeMix,
    traffic: &[f64],
    rng: &mut impl Rng,
) -> Vec<f64> {
    let n = mix.total();
    let served: Vec<f64> = (0..n)
        .map(|pe| (0..n).map(|src| traffic[src * n + pe] + traffic[pe * n + src]).sum())
        .collect();
    let max_llc_served =
        mix.ids_of(PeKind::Llc).map(|l| served[l]).fold(0.0f64, f64::max).max(1e-12);
    (0..n)
        .map(|pe| {
            let kind = mix.kind(pe);
            let activity = match kind {
                PeKind::Cpu | PeKind::Gpu => profile.compute_intensity,
                PeKind::Llc => served[pe] / max_llc_served,
            };
            let jitter = rng.gen_range(0.9..1.1);
            (base_power(kind) + dynamic_power(kind) * activity) * jitter
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, Workload};

    #[test]
    fn base_and_dynamic_orderings_are_physical() {
        // Compute PEs dominate cache slices in both components.
        assert!(base_power(PeKind::Cpu) > base_power(PeKind::Llc));
        assert!(base_power(PeKind::Gpu) > base_power(PeKind::Llc));
        assert!(dynamic_power(PeKind::Cpu) > dynamic_power(PeKind::Llc));
        assert!(dynamic_power(PeKind::Gpu) > dynamic_power(PeKind::Llc));
    }

    #[test]
    fn compute_heavy_apps_draw_more_gpu_power() {
        let mix = PeMix::new(2, 8, 4);
        let hot = Workload::synthesize(Benchmark::Hot, mix, 1); // intensity 0.9
        let bfs = Workload::synthesize(Benchmark::Bfs, mix, 1); // intensity 0.35
        let avg_gpu = |w: &Workload| {
            let ids: Vec<usize> = mix.ids_of(PeKind::Gpu).collect();
            ids.iter().map(|&i| w.pe_power(i)).sum::<f64>() / ids.len() as f64
        };
        assert!(avg_gpu(&hot) > avg_gpu(&bfs));
    }

    #[test]
    fn hot_llc_slices_draw_more_power_than_cold_ones() {
        let mix = PeMix::new(2, 8, 6);
        // BFS: strongly skewed slice popularity.
        let w = Workload::synthesize(Benchmark::Bfs, mix, 3);
        let n = mix.total();
        let served = |l: usize| -> f64 { (0..n).map(|s| w.traffic(s, l) + w.traffic(l, s)).sum() };
        let llcs: Vec<usize> = mix.ids_of(PeKind::Llc).collect();
        let hottest =
            *llcs.iter().max_by(|&&a, &&b| served(a).total_cmp(&served(b))).expect("nonempty");
        let coldest =
            *llcs.iter().min_by(|&&a, &&b| served(a).total_cmp(&served(b))).expect("nonempty");
        // Jitter is ±10 %, skew dominates it for BFS.
        assert!(w.pe_power(hottest) > w.pe_power(coldest));
    }

    #[test]
    fn powers_stay_within_physical_envelopes() {
        let mix = PeMix::paper();
        for b in Benchmark::ALL {
            let w = Workload::synthesize(b, mix, 17);
            for pe in 0..mix.total() {
                let p = w.pe_power(pe);
                let kind = mix.kind(pe);
                let lo = base_power(kind) * 0.85;
                let hi = (base_power(kind) + dynamic_power(kind)) * 1.15;
                assert!((lo..=hi).contains(&p), "{b} {kind} {p}");
            }
        }
    }
}
