//! Workload substrate: synthetic Rodinia-like traffic and power profiles,
//! plus an analytic energy-delay-product (EDP) model.
//!
//! The paper profiles seven Rodinia applications with gem5-gpu/GPGPU-Sim
//! (traffic frequencies `f_ij`) and McPAT/GPUWattch (per-PE power), then
//! treats those profiles as *fixed inputs* to the design-space exploration.
//! This crate substitutes the cycle-accurate tool-chain with statistical
//! synthesizers that reproduce the communication *structure* of each
//! application — which PE pairs talk, how heavy-tailed the destination
//! distribution is, and how the pattern differs per app — which is what the
//! optimizers actually react to.
//!
//! * [`Benchmark`] — the seven Rodinia applications and their
//!   communication/compute profiles;
//! * [`PeMix`] / [`PeKind`] — the logical processing-element population
//!   (CPUs, GPUs, LLCs) independent of physical placement;
//! * [`Workload`] — a synthesized `(traffic matrix, power vector)` pair;
//! * [`edp`] — the analytic performance/energy composition used to score
//!   final designs (the gem5-gpu re-simulation substitute).
//!
//! # Example
//!
//! ```
//! use moela_traffic::{Benchmark, PeMix, Workload};
//!
//! let mix = PeMix::new(8, 40, 16);
//! let w = Workload::synthesize(Benchmark::Bfs, mix, 7);
//! assert_eq!(w.pe_count(), 64);
//! assert!(w.total_traffic() > 0.0);
//! ```

pub mod benchmark;
pub mod edp;
pub mod import;
pub mod power;
pub mod synth;

pub use benchmark::Benchmark;
pub use import::ImportError;
pub use synth::Workload;

/// The kind of a logical processing element.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, PartialOrd, Ord)]
pub enum PeKind {
    /// An x86-class latency-sensitive core.
    Cpu,
    /// A throughput-oriented GPU streaming multiprocessor.
    Gpu,
    /// A last-level-cache slice with its memory controller.
    Llc,
}

impl std::fmt::Display for PeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeKind::Cpu => write!(f, "CPU"),
            PeKind::Gpu => write!(f, "GPU"),
            PeKind::Llc => write!(f, "LLC"),
        }
    }
}

/// The logical PE population: how many CPUs, GPUs, and LLC slices exist.
///
/// Logical PE ids are assigned contiguously: CPUs first, then GPUs, then
/// LLCs. The paper's platform is `PeMix::new(8, 40, 16)`.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct PeMix {
    cpus: usize,
    gpus: usize,
    llcs: usize,
}

impl PeMix {
    /// The paper's 4×4×4 platform population: 8 CPUs, 40 GPUs, 16 LLCs.
    pub fn paper() -> Self {
        Self::new(8, 40, 16)
    }

    /// A population with the given counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero — every objective needs at least one PE
    /// of each kind (CPU latency needs CPUs and LLCs; throughput needs
    /// GPUs).
    pub fn new(cpus: usize, gpus: usize, llcs: usize) -> Self {
        assert!(cpus > 0 && gpus > 0 && llcs > 0, "each PE kind needs at least one instance");
        Self { cpus, gpus, llcs }
    }

    /// A population that tolerates zero-count kinds — degenerate research
    /// scenarios such as a GPU-only die with no CPUs or no LLC slices.
    /// Objectives over the missing kind are defined as 0 (the CPU–LLC
    /// latency of a CPU-less platform is 0, not NaN).
    ///
    /// # Panics
    ///
    /// Panics if the population is entirely empty.
    pub fn with_counts(cpus: usize, gpus: usize, llcs: usize) -> Self {
        assert!(cpus + gpus + llcs > 0, "the population cannot be empty");
        Self { cpus, gpus, llcs }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Number of LLC slices.
    pub fn llcs(&self) -> usize {
        self.llcs
    }

    /// Total PE count.
    pub fn total(&self) -> usize {
        self.cpus + self.gpus + self.llcs
    }

    /// The kind of logical PE `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= total()`.
    pub fn kind(&self, id: usize) -> PeKind {
        assert!(id < self.total(), "PE id {id} out of range");
        if id < self.cpus {
            PeKind::Cpu
        } else if id < self.cpus + self.gpus {
            PeKind::Gpu
        } else {
            PeKind::Llc
        }
    }

    /// The id range of a given kind.
    pub fn ids_of(&self, kind: PeKind) -> std::ops::Range<usize> {
        match kind {
            PeKind::Cpu => 0..self.cpus,
            PeKind::Gpu => self.cpus..self.cpus + self.gpus,
            PeKind::Llc => self.cpus + self.gpus..self.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_ids_partition_by_kind() {
        let mix = PeMix::new(2, 3, 4);
        assert_eq!(mix.total(), 9);
        assert_eq!(mix.kind(0), PeKind::Cpu);
        assert_eq!(mix.kind(1), PeKind::Cpu);
        assert_eq!(mix.kind(2), PeKind::Gpu);
        assert_eq!(mix.kind(4), PeKind::Gpu);
        assert_eq!(mix.kind(5), PeKind::Llc);
        assert_eq!(mix.kind(8), PeKind::Llc);
    }

    #[test]
    fn ids_of_covers_every_pe_once() {
        let mix = PeMix::new(3, 5, 2);
        let mut all: Vec<usize> = Vec::new();
        for k in [PeKind::Cpu, PeKind::Gpu, PeKind::Llc] {
            all.extend(mix.ids_of(k));
        }
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn paper_mix_matches_section_v() {
        let mix = PeMix::paper();
        assert_eq!((mix.cpus(), mix.gpus(), mix.llcs()), (8, 40, 16));
        assert_eq!(mix.total(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        PeMix::new(1, 1, 1).kind(3);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_kind_count_panics() {
        PeMix::new(0, 1, 1);
    }
}
