//! Simulation statistics and their conversion to the EDP model's inputs.

use moela_traffic::edp::NetworkStats;

/// Measured statistics of one simulation window.
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Measured cycles (warm-up excluded).
    pub cycles: u64,
    /// Flits delivered within the window.
    pub delivered: u64,
    /// Flits injected in the window but still in the network at its end —
    /// a growing backlog indicates saturation.
    pub in_flight: u64,
    /// Mean end-to-end flit latency in cycles (queueing included).
    pub avg_latency: f64,
    /// Per-link utilization in flits/cycle (both directions summed),
    /// indexed like the design's link list.
    pub link_utilization: Vec<f64>,
    /// The busiest link's utilization.
    pub max_link_utilization: f64,
}

impl SimStats {
    /// Fraction of injected-and-measured flits that were delivered within
    /// the window (1.0 = the network keeps up with injection).
    pub fn delivery_ratio(&self) -> f64 {
        let injected = self.delivered + self.in_flight;
        if injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / injected as f64
    }

    /// Mean link utilization (the simulated counterpart of eq. (1), in
    /// flits/cycle rather than flits/kilo-cycle).
    pub fn mean_utilization(&self) -> f64 {
        if self.link_utilization.is_empty() {
            return 0.0;
        }
        self.link_utilization.iter().sum::<f64>() / self.link_utilization.len() as f64
    }

    /// Converts the measurement into the analytic EDP model's inputs,
    /// making the simulator a drop-in higher-fidelity backend for the
    /// Fig.-3 pipeline. `network_energy_rate` and `total_pe_power` are not
    /// observable by the network simulator and must come from the analytic
    /// evaluation (they are routing-static quantities anyway).
    pub fn to_network_stats(&self, network_energy_rate: f64, total_pe_power: f64) -> NetworkStats {
        NetworkStats {
            avg_packet_latency: self.avg_latency,
            max_link_utilization: self.max_link_utilization,
            network_energy_rate,
            total_pe_power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            cycles: 1000,
            delivered: 90,
            in_flight: 10,
            avg_latency: 25.0,
            link_utilization: vec![0.1, 0.3, 0.2],
            max_link_utilization: 0.3,
        }
    }

    #[test]
    fn delivery_ratio_counts_backlog() {
        assert!((stats().delivery_ratio() - 0.9).abs() < 1e-12);
        let empty = SimStats { delivered: 0, in_flight: 0, ..stats() };
        assert_eq!(empty.delivery_ratio(), 1.0);
    }

    #[test]
    fn mean_utilization_averages_links() {
        assert!((stats().mean_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn conversion_preserves_the_measured_fields() {
        let n = stats().to_network_stats(5.0, 120.0);
        assert_eq!(n.avg_packet_latency, 25.0);
        assert_eq!(n.max_link_utilization, 0.3);
        assert_eq!(n.network_energy_rate, 5.0);
        assert_eq!(n.total_pe_power, 120.0);
    }
}
