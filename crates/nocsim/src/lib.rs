//! A cycle-stepped flit-level NoC simulator.
//!
//! The analytic objectives of `moela_manycore::objectives` treat link
//! utilization and latency as static quantities derived from routing
//! indicator functions — exactly eqs. (1)–(4) of the paper. Real networks
//! also queue: when flows contend for a link, packets wait. This crate
//! provides the dynamic counterpart the paper obtains from gem5-gpu's
//! network model, at a fidelity between the analytic equations and a full
//! cycle-accurate simulator:
//!
//! * **topology & routing** come straight from the design under test (the
//!   same deterministic minimal paths the analytic evaluator charges, so
//!   `p_ijk` agrees between the two views);
//! * **links** move one flit per cycle per direction and take
//!   `length × delay` cycles to traverse;
//! * **routers** impose an `r`-cycle pipeline per hop; each directed link
//!   serves its output queue FIFO (an output-queued router model — flits
//!   that have not yet physically arrived block the queue head, the
//!   standard head-of-line simplification);
//! * **traffic** is injected per flow by deterministic token buckets
//!   matching the workload's `f_ij` rates (flits per kilo-cycle), so runs
//!   are reproducible without randomness.
//!
//! The validation tests assert the two views agree where they must: at low
//! load, simulated latency equals the analytic `r·h + d` and per-link
//! utilization converges to the analytic `u_k`; under overload, the
//! simulator exposes the queueing the closed-form model cannot.
//!
//! # Example
//!
//! ```
//! use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
//! use moela_moo::Problem;
//! use moela_nocsim::{SimConfig, Simulator};
//! use moela_traffic::{Benchmark, Workload};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = PlatformConfig::builder()
//!     .dims(3, 3, 2).cpus(2).llcs(4).planar_links(24).tsvs(6).build()?;
//! let workload = Workload::synthesize(Benchmark::Bp, platform.pe_mix(), 3);
//! let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let design = problem.random_solution(&mut rng);
//!
//! let sim = Simulator::new(&problem, &design, SimConfig::default());
//! let stats = sim.run(10_000);
//! assert!(stats.delivered > 0);
//! # Ok(())
//! # }
//! ```

pub mod stats;

pub use stats::SimStats;

use std::collections::VecDeque;
use std::rc::Rc;

use moela_manycore::routing::RoutingTable;
use moela_manycore::{Design, ManycoreProblem, TileId};

/// Simulator knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Multiplier on the workload's injection rates (1.0 = the profiled
    /// rates; raise it to probe saturation).
    pub load_factor: f64,
    /// Cycles to discard before measuring (queue warm-up).
    pub warmup_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { load_factor: 1.0, warmup_cycles: 1_000 }
    }
}

/// A flit in flight.
#[derive(Clone, Debug)]
struct Flit {
    /// Injection cycle, for latency accounting.
    injected_at: u64,
    /// Cycle at which the flit has physically reached its current router
    /// and cleared its pipeline; it may not be forwarded earlier.
    ready_at: u64,
    /// The full route, forwarding order (indices into the design's links).
    path: Rc<[usize]>,
    /// Next hop index within `path`.
    next: usize,
    /// Router the flit currently occupies.
    at: TileId,
    /// Whether it was injected after warm-up (counted in statistics).
    measured: bool,
}

/// Per-directed-link state.
#[derive(Clone, Debug, Default)]
struct DirectedLink {
    queue: VecDeque<Flit>,
    /// Cycle at which the link finishes its current transmission.
    busy_until: u64,
    /// Measured flits forwarded.
    flits_forwarded: u64,
}

/// One injected traffic flow.
struct Flow {
    rate: f64,
    tokens: f64,
    src: TileId,
    path: Rc<[usize]>,
}

/// The simulator, bound to one design under one problem's workload.
#[derive(Debug)]
pub struct Simulator<'a> {
    problem: &'a ManycoreProblem,
    design: &'a Design,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Binds the simulator to a design.
    pub fn new(problem: &'a ManycoreProblem, design: &'a Design, config: SimConfig) -> Self {
        Self { problem, design, config }
    }

    /// Runs for `cycles` measured cycles after warm-up and returns the
    /// statistics. Fully deterministic.
    pub fn run(&self, cycles: u64) -> SimStats {
        let dims = self.problem.config().dims();
        let params = self.problem.config().noc();
        let workload = self.problem.workload();
        let table = RoutingTable::build(dims, &self.design.topology, params);
        let links = self.design.topology.links();
        let router_delay = params.router_stages.round().max(1.0) as u64;
        let link_latency: Vec<u64> = links
            .iter()
            .map(|l| (l.length(dims) * params.link_delay_per_unit).round().max(1.0) as u64)
            .collect();

        let mut flows: Vec<Flow> = workload
            .flows()
            .into_iter()
            .filter_map(|(i, j, f)| {
                let src = self.design.placement.tile_of(i);
                let dst = self.design.placement.tile_of(j);
                if src == dst {
                    return None;
                }
                Some(Flow {
                    rate: f / 1000.0 * self.config.load_factor,
                    tokens: 0.0,
                    src,
                    path: table.path_links_forward(src, dst).into(),
                })
            })
            .collect();

        // Directed queues: 2k serves a()→b(), 2k+1 serves b()→a().
        let mut directed: Vec<DirectedLink> = vec![DirectedLink::default(); links.len() * 2];
        let direction = |k: usize, from: TileId| -> usize {
            if links[k].a() == from {
                2 * k
            } else {
                debug_assert_eq!(links[k].b(), from, "flit left from a non-endpoint");
                2 * k + 1
            }
        };

        let total_cycles = self.config.warmup_cycles + cycles;
        let mut delivered = 0u64;
        let mut latency_sum = 0.0f64;
        let mut in_flight = 0u64;

        for cycle in 0..total_cycles {
            let measuring = cycle >= self.config.warmup_cycles;

            // 1. Injection via token buckets.
            for flow in &mut flows {
                flow.tokens += flow.rate;
                while flow.tokens >= 1.0 {
                    flow.tokens -= 1.0;
                    let q = direction(flow.path[0], flow.src);
                    directed[q].queue.push_back(Flit {
                        injected_at: cycle,
                        ready_at: cycle,
                        path: flow.path.clone(),
                        next: 0,
                        at: flow.src,
                        measured: measuring,
                    });
                    if measuring {
                        in_flight += 1;
                    }
                }
            }

            // 2. Each directed link forwards at most one ready flit.
            for k in 0..links.len() {
                for dir in [2 * k, 2 * k + 1] {
                    let dl = &mut directed[dir];
                    if dl.busy_until > cycle {
                        continue;
                    }
                    let ready = dl.queue.front().is_some_and(|f| f.ready_at <= cycle);
                    if !ready {
                        continue;
                    }
                    let mut flit = dl.queue.pop_front().expect("front checked above");
                    dl.busy_until = cycle + link_latency[k];
                    if flit.measured {
                        dl.flits_forwarded += 1;
                    }
                    let arrive = cycle + link_latency[k] + router_delay;
                    let to = links[k].other(flit.at);
                    flit.at = to;
                    flit.ready_at = arrive;
                    flit.next += 1;
                    if flit.next == flit.path.len() {
                        if flit.measured {
                            delivered += 1;
                            in_flight -= 1;
                            latency_sum += (arrive - flit.injected_at) as f64;
                        }
                    } else {
                        let q = direction(flit.path[flit.next], to);
                        directed[q].queue.push_back(flit);
                    }
                }
            }
        }

        let measured_window = cycles.max(1) as f64;
        let link_utilization: Vec<f64> = (0..links.len())
            .map(|k| {
                (directed[2 * k].flits_forwarded + directed[2 * k + 1].flits_forwarded) as f64
                    / measured_window
            })
            .collect();
        let max_link_utilization = link_utilization.iter().fold(0.0f64, |a, &b| a.max(b));
        SimStats {
            cycles,
            delivered,
            in_flight,
            avg_latency: if delivered > 0 { latency_sum / delivered as f64 } else { 0.0 },
            link_utilization,
            max_link_utilization,
        }
    }
}
