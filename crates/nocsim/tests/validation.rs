//! Validation of the simulator against the analytic evaluator: the two
//! views must agree where queueing is negligible and diverge in the
//! direction queueing predicts when it is not.

use moela_manycore::routing::RoutingTable;
use moela_manycore::{Design, ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::Problem;
use moela_nocsim::{SimConfig, Simulator};
use moela_traffic::{Benchmark, Workload};
use rand::SeedableRng;

fn problem(bench: Benchmark) -> ManycoreProblem {
    let platform = PlatformConfig::builder()
        .dims(3, 3, 2)
        .cpus(2)
        .llcs(4)
        .planar_links(24)
        .tsvs(6)
        .build()
        .expect("valid platform");
    let workload = Workload::synthesize(bench, platform.pe_mix(), 9);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Three).expect("consistent")
}

fn design(problem: &ManycoreProblem, seed: u64) -> Design {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    problem.random_solution(&mut rng)
}

#[test]
fn zero_load_latency_matches_the_analytic_route_latency() {
    // At a vanishing load factor no queueing occurs, so every delivered
    // flit's latency equals the routing table's r·h + d for its route.
    let p = problem(Benchmark::Bp);
    let d = design(&p, 1);
    let sim = Simulator::new(&p, &d, SimConfig { load_factor: 0.02, warmup_cycles: 0 });
    let stats = sim.run(60_000);
    assert!(stats.delivered > 50, "need traffic to compare ({})", stats.delivered);

    // Traffic-weighted analytic latency over the same flows.
    let table = RoutingTable::build(p.config().dims(), &d.topology, p.config().noc());
    let mut weighted = 0.0;
    let mut total = 0.0;
    for (i, j, f) in p.workload().flows() {
        let (src, dst) = (d.placement.tile_of(i), d.placement.tile_of(j));
        if src != dst {
            weighted += f * table.latency(src, dst);
            total += f;
        }
    }
    let analytic = weighted / total;
    let rel = (stats.avg_latency - analytic).abs() / analytic;
    assert!(
        rel < 0.25,
        "zero-load sim latency {} vs analytic {analytic} (rel {rel:.3})",
        stats.avg_latency
    );
    // And never *below* the analytic bound: queueing can only add delay.
    assert!(stats.avg_latency >= analytic * 0.99);
}

#[test]
fn low_load_utilization_matches_equation_one() {
    let p = problem(Benchmark::Hot);
    let d = design(&p, 2);
    let sim = Simulator::new(&p, &d, SimConfig { load_factor: 1.0, warmup_cycles: 2_000 });
    let stats = sim.run(50_000);
    assert!(stats.delivery_ratio() > 0.95, "network must keep up at profiled load");

    // The analytic u_k of eq. (1) in flits/kilo-cycle; the simulator
    // reports flits/cycle.
    let eval = p.evaluate_full(&d);
    let analytic_mean = eval.mean_traffic / 1000.0;
    let sim_mean = stats.mean_utilization();
    let rel = (sim_mean - analytic_mean).abs() / analytic_mean;
    assert!(
        rel < 0.15,
        "sim mean utilization {sim_mean:.5} vs analytic {analytic_mean:.5} (rel {rel:.3})"
    );
}

#[test]
fn overload_exposes_queueing_the_analytic_model_cannot_see() {
    let p = problem(Benchmark::Bfs);
    let d = design(&p, 3);
    let calm =
        Simulator::new(&p, &d, SimConfig { load_factor: 0.2, warmup_cycles: 1_000 }).run(20_000);
    let slammed =
        Simulator::new(&p, &d, SimConfig { load_factor: 12.0, warmup_cycles: 1_000 }).run(20_000);
    assert!(
        slammed.avg_latency > calm.avg_latency * 1.5,
        "overload must raise latency ({} vs {})",
        slammed.avg_latency,
        calm.avg_latency
    );
    assert!(slammed.delivery_ratio() < calm.delivery_ratio(), "overload must leave a backlog");
}

#[test]
fn no_link_exceeds_capacity() {
    let p = problem(Benchmark::Gau);
    let d = design(&p, 4);
    let stats =
        Simulator::new(&p, &d, SimConfig { load_factor: 20.0, warmup_cycles: 500 }).run(10_000);
    // One flit per cycle per direction ⇒ a (bidirectionally summed)
    // utilization of at most 2.
    for (k, &u) in stats.link_utilization.iter().enumerate() {
        assert!(u <= 2.0 + 1e-9, "link {k} over capacity: {u}");
    }
}

#[test]
fn simulation_is_deterministic() {
    let p = problem(Benchmark::Srad);
    let d = design(&p, 5);
    let cfg = SimConfig { load_factor: 1.0, warmup_cycles: 500 };
    let a = Simulator::new(&p, &d, cfg).run(15_000);
    let b = Simulator::new(&p, &d, cfg).run(15_000);
    assert_eq!(a, b);
}

#[test]
fn better_designs_simulate_better_too() {
    // The analytic evaluator and the simulator must rank a good design
    // (optimized placement) above an adversarial one on latency.
    let p = problem(Benchmark::Sc);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let candidates: Vec<Design> = (0..8).map(|_| p.random_solution(&mut rng)).collect();
    let analytic: Vec<f64> =
        candidates.iter().map(|d| p.evaluate_full(d).network.avg_packet_latency).collect();
    let best = analytic
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    let worst = analytic
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    let cfg = SimConfig { load_factor: 0.5, warmup_cycles: 1_000 };
    let sim_best = Simulator::new(&p, &candidates[best], cfg).run(30_000);
    let sim_worst = Simulator::new(&p, &candidates[worst], cfg).run(30_000);
    assert!(
        sim_best.avg_latency < sim_worst.avg_latency,
        "simulator must agree with the analytic ranking ({} vs {})",
        sim_best.avg_latency,
        sim_worst.avg_latency
    );
}
