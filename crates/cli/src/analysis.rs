//! Offline run analysis: the `moela-dse report` and two-directory
//! `moela-dse compare` subcommands.
//!
//! `report` replays a finished run directory's `events.jsonl` (see
//! [`moela_obs::replay`]) and joins it with the deterministic artifacts
//! (`trace.json`, `front.json`, the manifest's fitted normalizer) into
//! `report.json` — convergence telemetry, exact per-phase quantiles,
//! operator-improvement attribution, cache/fault summaries — plus
//! `trace.chrome.json`, a Perfetto-viewable Chrome trace-event export.
//! Both artifacts are additive: the analysis only ever reads the run
//! store, so byte-identity guarantees on the deterministic artifacts
//! are untouched.
//!
//! `compare <baseline> <candidate>` loads each side from a run
//! directory (its `metrics.json`) or a benchmark snapshot
//! (`BENCH_*.json`), prints per-algorithm deltas, and exits with code
//! [`REGRESSION_EXIT_CODE`] when the candidate regresses past the
//! configured thresholds — the CI bench gate.

use std::path::Path;
use std::time::Duration;

use moela_moo::run::{convergence_point, evaluations_to_reach, normalized_phv, TracePoint};
use moela_obs::{chrome_trace, names, replay_run_dir, LogLevel, Reporter, RunReplay};
use moela_persist::{decode, RunStore, Value};

use crate::engine::{fail, options_from_manifest, CliError, ErrorClass};

/// Exit code for a compare-detected regression, distinct from 1
/// (operational failure) and 2 (configuration error) so CI can tell
/// "the candidate is worse" from "the tool broke".
pub(crate) const REGRESSION_EXIT_CODE: u8 = 3;

/// Relative-PHV slack inside which the terminal plateau counts as
/// converged (the paper's §V.C criterion: 0.5%).
const CONVERGENCE_TOLERANCE: f64 = 0.005;

/// Regression thresholds for `compare <baseline> <candidate>`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct CompareThresholds {
    /// Maximum tolerated relative final-PHV drop (e.g. 0.01 = 1%).
    pub(crate) max_phv_regression: f64,
    /// Maximum tolerated relative evals/s drop (e.g. 0.2 = 20%).
    pub(crate) max_rate_regression: f64,
}

impl Default for CompareThresholds {
    fn default() -> Self {
        // PHV is deterministic per seed, so even small drops are real;
        // throughput is wall-clock and needs generous slack for noisy
        // CI machines.
        Self { max_phv_regression: 0.01, max_rate_regression: 0.2 }
    }
}

fn read_json(path: &Path) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read {}: {e}", path.display())))?;
    decode::from_str(&text).map_err(|e| fail(format!("{} is not valid JSON: {e}", path.display())))
}

fn trace_points(trace: &Value) -> Result<Vec<TracePoint>, CliError> {
    trace
        .field("points")?
        .as_array()?
        .iter()
        .map(|p| {
            Ok(TracePoint {
                generation: p.field("generation")?.as_usize()?,
                evaluations: p.field("evaluations")?.as_u64()?,
                elapsed: Duration::ZERO,
                phv: p.field("phv")?.as_f64()?,
            })
        })
        .collect()
}

fn front_objectives(front: &Value) -> Result<Vec<Vec<f64>>, CliError> {
    front
        .field("objectives")?
        .as_array()?
        .iter()
        .map(|row| row.to_f64_vec().map_err(CliError::from))
        .collect()
}

fn phases_value(replay: &RunReplay) -> Value {
    Value::Object(
        replay
            .phases
            .iter()
            .map(|(name, stat)| {
                (
                    name.clone(),
                    Value::object(vec![
                        ("count", Value::U64(stat.count)),
                        ("total_us", Value::U64(stat.total_us)),
                        ("self_us", Value::U64(stat.self_us)),
                        ("max_us", Value::U64(stat.max_us)),
                        ("p50_us", Value::U64(stat.quantile_us(0.50))),
                        ("p90_us", Value::U64(stat.quantile_us(0.90))),
                        ("p99_us", Value::U64(stat.quantile_us(0.99))),
                    ]),
                )
            })
            .collect(),
    )
}

/// Per-gauge and per-counter time series on the stitched global
/// timeline, for plotting convergence and cache behavior over the run.
fn trends_value(replay: &RunReplay) -> Value {
    let mut gauges: Vec<(String, Value)> = Vec::new();
    for (name, t_us, value) in &replay.gauge_events {
        let point = Value::object(vec![("t_us", Value::U64(*t_us)), ("value", Value::F64(*value))]);
        match gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, Value::Array(points))) => points.push(point),
            _ => gauges.push((name.clone(), Value::Array(vec![point]))),
        }
    }
    let mut counters: Vec<(String, Value)> = Vec::new();
    for (name, t_us, delta) in &replay.counter_events {
        let point = Value::object(vec![("t_us", Value::U64(*t_us)), ("delta", Value::U64(*delta))]);
        match counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, Value::Array(points))) => points.push(point),
            _ => counters.push((name.clone(), Value::Array(vec![point]))),
        }
    }
    Value::object(vec![("gauges", Value::Object(gauges)), ("counters", Value::Object(counters))])
}

/// Builds the analysis artifacts for a finished run directory: the
/// `report.json` document and the Chrome trace-event export. Read-only
/// over the store.
pub(crate) fn build_report(dir: &Path) -> Result<(Value, Value), CliError> {
    let store = RunStore::open(dir)?;
    let manifest = store.read_manifest()?;
    let (opts, normalizer) = options_from_manifest(&manifest)?;
    if !store.trace_json_path().is_file() {
        return Err(fail(format!(
            "{} has no trace.json — the run has not finished (resume it first)",
            dir.display()
        )));
    }
    let trace = trace_points(&read_json(&store.trace_json_path())?)?;
    let front = front_objectives(&read_json(&store.front_json_path())?)?;
    let replay = replay_run_dir(dir).map_err(|e| fail(e.to_string()))?;

    // Convergence telemetry (§V.C): the deterministic trace carries PHV
    // per generation; the front is re-scored through the manifest's
    // fitted normalizer as an end-to-end recomputation check on the
    // persisted artifacts.
    let final_phv = trace.last().map_or(0.0, |p| p.phv);
    let front_phv = normalized_phv(&front, &normalizer);
    let evaluations = trace.last().map_or(0, |p| p.evaluations);
    let to_99 = evaluations_to_reach(&trace, 0.99 * final_phv);
    let converged_at = convergence_point(&trace, CONVERGENCE_TOLERANCE)
        .and_then(|idx| trace.get(idx))
        .map(|p| p.evaluations);
    let phv_series = trace
        .iter()
        .map(|p| {
            Value::object(vec![
                ("evaluations", Value::U64(p.evaluations)),
                ("phv", Value::F64(p.phv)),
            ])
        })
        .collect();
    let mut convergence = vec![
        ("final_phv", Value::F64(final_phv)),
        ("front_phv_recomputed", Value::F64(front_phv)),
        ("evaluations", Value::U64(evaluations)),
    ];
    if let Some(evals) = to_99 {
        convergence.push(("evaluations_to_99pct", Value::U64(evals)));
    }
    if let Some(evals) = converged_at {
        convergence.push(("convergence_evaluations", Value::U64(evals)));
    }
    convergence.push(("phv_over_evaluations", Value::Array(phv_series)));

    let wall_s = replay.wall_us as f64 / 1e6;
    let replay_evals = replay.counter("evaluations");
    let evals_per_sec = if wall_s > 0.0 { replay_evals as f64 / wall_s } else { 0.0 };

    let cache_hits = replay.counter("cache_hits");
    let cache_misses = replay.counter("cache_misses");
    let cache_lookups = cache_hits + cache_misses;
    let hit_rate = if cache_lookups > 0 { cache_hits as f64 / cache_lookups as f64 } else { 0.0 };

    let mut fields = vec![
        (
            "run",
            Value::object(vec![
                ("algorithm", Value::Str(opts.algorithm.name().to_owned())),
                ("app", Value::Str(opts.app.name().to_owned())),
                ("seed", Value::U64(opts.seed)),
                ("budget", Value::U64(opts.budget)),
                ("population", Value::U64(opts.population as u64)),
                ("threads", Value::U64(opts.threads as u64)),
            ]),
        ),
        ("convergence", Value::object(convergence)),
        (
            // MOEADr-style attribution: which operator family actually
            // produced the archive/population improvements.
            "operators",
            Value::object(vec![
                ("ls_improvements", Value::U64(replay.counter(names::LS_IMPROVEMENTS))),
                ("ea_improvements", Value::U64(replay.counter(names::EA_IMPROVEMENTS))),
            ]),
        ),
        (
            "throughput",
            Value::object(vec![
                ("evaluations", Value::U64(replay_evals)),
                ("wall_us", Value::U64(replay.wall_us)),
                ("evals_per_sec", Value::F64(evals_per_sec)),
            ]),
        ),
        ("phases", phases_value(&replay)),
        (
            "counters",
            Value::Object(
                replay.counters.iter().map(|(n, v)| (n.clone(), Value::U64(*v))).collect(),
            ),
        ),
        (
            "cache",
            Value::object(vec![
                ("hits", Value::U64(cache_hits)),
                ("misses", Value::U64(cache_misses)),
                ("evictions", Value::U64(replay.counter("cache_evictions"))),
                ("routing_rebuilds", Value::U64(replay.counter("routing_rebuilds"))),
                ("routing_hits", Value::U64(replay.counter("routing_hits"))),
                ("hit_rate", Value::F64(hit_rate)),
            ]),
        ),
        (
            "delta",
            Value::object(vec![
                ("hits", Value::U64(replay.counter("delta_hits"))),
                ("fallbacks", Value::U64(replay.counter("delta_fallbacks"))),
            ]),
        ),
        ("trends", trends_value(&replay)),
        (
            "events",
            Value::object(vec![
                ("lines", Value::U64(replay.lines)),
                ("legs", Value::U64(replay.legs as u64)),
                ("torn_tail", Value::Bool(replay.torn_tail)),
                ("unclosed_spans", Value::U64(replay.unclosed_spans)),
                ("nesting_violations", Value::U64(replay.nesting_violations)),
                ("wall_us", Value::U64(replay.wall_us)),
            ]),
        ),
    ];
    // Fault counters live in metrics.json (written at finish); carry
    // them through verbatim when present so the report is one-stop.
    if let Ok(metrics) = read_json(&store.metrics_path()) {
        if let Some(faults) = metrics.field_opt("faults") {
            fields.push(("faults", faults.clone()));
        }
        if let Some(resume) = metrics.field_opt("resume") {
            fields.push(("resume", resume.clone()));
        }
    }
    let report = Value::object(fields);
    let chrome = chrome_trace(&replay, opts.threads.max(1));
    Ok((report, chrome))
}

/// The `moela-dse report <DIR>` body: builds and writes `report.json`
/// and `trace.chrome.json`, then prints a human summary.
pub(crate) fn report(dir: &str, log_level: LogLevel) -> Result<(), CliError> {
    let reporter = Reporter::new(log_level);
    let store = RunStore::open(dir)?;
    let (report, chrome) = build_report(store.root())?;
    store.write_report(&report)?;
    store.write_chrome_trace(&chrome)?;

    let run = report.field("run")?;
    let conv = report.field("convergence")?;
    let events = report.field("events")?;
    reporter.info(&format!(
        "{} on {} (seed {}): PHV {:.4} over {} evaluations",
        run.field("algorithm")?.as_str()?,
        run.field("app")?.as_str()?,
        run.field("seed")?.as_u64()?,
        conv.field("final_phv")?.as_f64()?,
        conv.field("evaluations")?.as_u64()?,
    ));
    reporter.info(&format!(
        "  front re-scored through the manifest normalizer: PHV {:.4}",
        conv.field("front_phv_recomputed")?.as_f64()?
    ));
    if let Some(evals) = conv.field_opt("evaluations_to_99pct") {
        reporter.info(&format!("  reached 99% of final PHV after {} evaluations", evals.as_u64()?));
    }
    if let Some(evals) = conv.field_opt("convergence_evaluations") {
        reporter.info(&format!(
            "  converged (plateau within {:.1}%) at {} evaluations",
            CONVERGENCE_TOLERANCE * 100.0,
            evals.as_u64()?
        ));
    }
    let ops = report.field("operators")?;
    reporter.info(&format!(
        "  improvements: {} from local search, {} from evolutionary variation",
        ops.field("ls_improvements")?.as_u64()?,
        ops.field("ea_improvements")?.as_u64()?
    ));
    let throughput = report.field("throughput")?;
    reporter.info(&format!(
        "  throughput: {:.1} evals/s over {:.2}s of traced wall clock",
        throughput.field("evals_per_sec")?.as_f64()?,
        throughput.field("wall_us")?.as_u64()? as f64 / 1e6
    ));
    let delta = report.field("delta")?;
    let (delta_hits, delta_fallbacks) =
        (delta.field("hits")?.as_u64()?, delta.field("fallbacks")?.as_u64()?);
    if delta_hits + delta_fallbacks > 0 {
        reporter.info(&format!(
            "  delta evaluation: {delta_hits} incremental, {delta_fallbacks} full fallbacks"
        ));
    }
    if let Value::Object(phases) = report.field("phases")? {
        for (name, stat) in phases {
            reporter.info(&format!(
                "  phase {:<18} count {:>6}  total {:>9}us  p50 {:>7}us  p90 {:>7}us  p99 {:>7}us",
                name,
                stat.field("count")?.as_u64()?,
                stat.field("total_us")?.as_u64()?,
                stat.field("p50_us")?.as_u64()?,
                stat.field("p90_us")?.as_u64()?,
                stat.field("p99_us")?.as_u64()?,
            ));
        }
    }
    let legs = events.field("legs")?.as_u64()?;
    if legs > 1 {
        reporter.info(&format!("  event log spans {legs} process legs (resumed run)"));
    }
    if events.field("torn_tail")?.as_bool()? {
        reporter.warn(
            "events.jsonl ends in a truncated line (the writer was killed mid-flush); \
             the torn tail was skipped",
        );
    }
    let unclosed = events.field("unclosed_spans")?.as_u64()?;
    if unclosed > 0 {
        reporter.warn(&format!("{unclosed} spans never closed (events lost to a crash)"));
    }
    reporter.info(&format!(
        "report written to {} (open {} at https://ui.perfetto.dev)",
        store.report_path().display(),
        store.chrome_trace_path().display()
    ));
    Ok(())
}

/// One side of a comparison: `(algorithm, metrics.json-shaped value)`
/// rows loaded from a run directory or a `BENCH_*.json` snapshot.
fn load_side(path: &str) -> Result<Vec<(String, Value)>, CliError> {
    let p = Path::new(path);
    if p.is_dir() {
        let store = RunStore::open(p)?;
        if !store.metrics_path().is_file() {
            return Err(fail(format!(
                "{} has no metrics.json — the run has not finished (resume it first)",
                p.display()
            )));
        }
        let metrics = read_json(&store.metrics_path())?;
        let algorithm = metrics.field("algorithm")?.as_str()?.to_owned();
        return Ok(vec![(algorithm, metrics)]);
    }
    let bench = read_json(p)?;
    let runs = bench.field_opt("runs").ok_or_else(|| {
        fail(format!(
            "{} is neither a run directory nor a benchmark snapshot with a \"runs\" map",
            p.display()
        ))
    })?;
    let Value::Object(entries) = runs else {
        return Err(fail(format!("{}: \"runs\" must be an object", p.display())));
    };
    Ok(entries.clone())
}

/// Final PHV and evaluation throughput for one `metrics.json`-shaped
/// value. Either may be absent (e.g. a pre-telemetry snapshot).
fn run_stats(metrics: &Value) -> (Option<f64>, Option<f64>) {
    let Some(telemetry) = metrics.field_opt("telemetry") else { return (None, None) };
    let phv = telemetry
        .field_opt("phv_per_generation")
        .and_then(|s| s.as_array().ok())
        .and_then(|s| s.last())
        .and_then(|v| v.as_f64().ok());
    let rate = telemetry.field_opt("evals_per_sec").and_then(|v| v.as_f64().ok());
    (phv, rate)
}

fn pct(delta: f64) -> String {
    format!("{:+.2}%", delta * 100.0)
}

/// The `moela-dse compare <baseline> <candidate>` body: prints
/// per-algorithm deltas and fails with [`REGRESSION_EXIT_CODE`] when
/// the candidate regresses past `thresholds`.
pub(crate) fn compare_runs(
    baseline: &str,
    candidate: &str,
    thresholds: &CompareThresholds,
) -> Result<(), CliError> {
    let base = load_side(baseline)?;
    let cand = load_side(candidate)?;
    println!("comparing {candidate} against baseline {baseline}");
    println!(
        "{:<12} {:>12} {:>12} {:>9}   {:>12} {:>12} {:>9}",
        "algorithm", "base PHV", "cand PHV", "ΔPHV", "base ev/s", "cand ev/s", "Δrate"
    );
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for (algorithm, base_metrics) in &base {
        let Some((_, cand_metrics)) = cand.iter().find(|(a, _)| a == algorithm) else {
            println!("{algorithm:<12} missing from candidate — skipped");
            continue;
        };
        let (base_phv, base_rate) = run_stats(base_metrics);
        let (cand_phv, cand_rate) = run_stats(cand_metrics);
        let phv_delta = match (base_phv, cand_phv) {
            (Some(b), Some(c)) if b > 0.0 => Some((c - b) / b),
            _ => None,
        };
        let rate_delta = match (base_rate, cand_rate) {
            (Some(b), Some(c)) if b > 0.0 => Some((c - b) / b),
            _ => None,
        };
        println!(
            "{:<12} {:>12} {:>12} {:>9}   {:>12} {:>12} {:>9}",
            algorithm,
            base_phv.map_or("-".into(), |v| format!("{v:.4}")),
            cand_phv.map_or("-".into(), |v| format!("{v:.4}")),
            phv_delta.map_or("-".into(), pct),
            base_rate.map_or("-".into(), |v| format!("{v:.1}")),
            cand_rate.map_or("-".into(), |v| format!("{v:.1}")),
            rate_delta.map_or("-".into(), pct),
        );
        compared += 1;
        if let Some(d) = phv_delta {
            if d < -thresholds.max_phv_regression {
                regressions.push(format!(
                    "{algorithm}: PHV regressed {} (threshold {})",
                    pct(d),
                    pct(-thresholds.max_phv_regression)
                ));
            }
        }
        if let Some(d) = rate_delta {
            if d < -thresholds.max_rate_regression {
                regressions.push(format!(
                    "{algorithm}: throughput regressed {} (threshold {})",
                    pct(d),
                    pct(-thresholds.max_rate_regression)
                ));
            }
        }
    }
    if compared == 0 {
        return Err(fail("no algorithm appears in both the baseline and the candidate"));
    }
    if !regressions.is_empty() {
        return Err(CliError {
            message: format!("regression detected:\n  {}", regressions.join("\n  ")),
            code: REGRESSION_EXIT_CODE,
            class: ErrorClass::Fatal,
        });
    }
    println!(
        "no regression past thresholds (PHV {:.1}%, rate {:.1}%)",
        thresholds.max_phv_regression * 100.0,
        thresholds.max_rate_regression * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(phv: f64, rate: f64) -> Value {
        Value::object(vec![
            ("algorithm", Value::Str("moela".into())),
            (
                "telemetry",
                Value::object(vec![
                    ("evals_per_sec", Value::F64(rate)),
                    ("phv_per_generation", Value::Array(vec![Value::F64(0.1), Value::F64(phv)])),
                ]),
            ),
        ])
    }

    #[test]
    fn run_stats_reads_the_last_phv_and_the_rate() {
        let (phv, rate) = run_stats(&metrics(0.75, 123.5));
        assert_eq!(phv, Some(0.75));
        assert_eq!(rate, Some(123.5));
        assert_eq!(run_stats(&Value::object(vec![])), (None, None));
    }

    #[test]
    fn compare_detects_regressions_with_exit_code_3() {
        let dir = std::env::temp_dir().join(format!("moela-compare-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, runs: Value| {
            let doc = Value::object(vec![("runs", runs)]);
            std::fs::write(dir.join(name), moela_persist::encode::to_string(&doc)).unwrap();
        };
        write("base.json", Value::Object(vec![("moela".into(), metrics(0.80, 100.0))]));
        write("same.json", Value::Object(vec![("moela".into(), metrics(0.80, 100.0))]));
        write("slow.json", Value::Object(vec![("moela".into(), metrics(0.80, 10.0))]));
        write("worse.json", Value::Object(vec![("moela".into(), metrics(0.50, 100.0))]));
        let base = dir.join("base.json");
        let thresholds = CompareThresholds::default();
        let path = |n: &str| dir.join(n).to_string_lossy().into_owned();
        assert!(compare_runs(&path("base.json"), &path("same.json"), &thresholds).is_ok());
        let err = compare_runs(&path("base.json"), &path("slow.json"), &thresholds)
            .expect_err("rate regression");
        assert_eq!(err.code, REGRESSION_EXIT_CODE);
        assert!(err.message.contains("throughput"), "{}", err.message);
        let err = compare_runs(&path("base.json"), &path("worse.json"), &thresholds)
            .expect_err("phv regression");
        assert_eq!(err.code, REGRESSION_EXIT_CODE);
        assert!(err.message.contains("PHV"), "{}", err.message);
        let _ = base;
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_bench_file_without_runs_is_rejected() {
        let dir = std::env::temp_dir().join(format!("moela-compare-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-bench.json");
        std::fs::write(&path, "{\"date\":\"2026-08-08\"}").unwrap();
        let err = load_side(&path.to_string_lossy()).expect_err("no runs map");
        assert!(err.message.contains("runs"), "{}", err.message);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
