//! `moela-dse`: command-line design-space exploration with the MOELA
//! framework. See `moela-dse help` for usage.
//!
//! With `run --run-dir DIR` every run becomes a structured, crash-safe
//! store (manifest + rotating checkpoints + result CSVs) that
//! `moela-dse resume DIR` continues from its newest intact checkpoint —
//! producing byte-identical `trace.csv`/`front.csv` to an uninterrupted
//! run, at any thread count.

mod args;

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use moela_baselines::{
    random_search_restore, random_search_start, Moead, MoeadConfig, MooStage, MooStageConfig, Moos,
    MoosConfig, Nsga2, Nsga2Config, RandomSearchConfig,
};
use moela_core::{Moela, MoelaConfig};
use moela_manycore::{viz, Design, ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::checkpoint::Resumable;
use moela_moo::fault::{FaultLog, FaultPolicy};
use moela_moo::normalize::Normalizer;
use moela_moo::run::RunResult;
use moela_moo::{CachedProblem, ChaosProblem, ChaosSpec, EvalCache, Problem};
use moela_nocsim::{SimConfig, Simulator};
use moela_obs::{JsonlSink, MetricsAggregator, Obs, ProgressReporter, Reporter, SharedSink, Sink};
use moela_persist::{
    CheckpointStore, PersistError, Restore, RunStore, Snapshot, Value, FORMAT_VERSION,
};
use moela_traffic::{Benchmark, PeKind, Workload};

use args::{Algorithm, Command, RunOptions};

/// The build version stamped into manifests and checkpoints.
const VERSION: &str = env!("CARGO_PKG_VERSION");

/// A user-facing failure: printed to stderr, exits with code 1.
#[derive(Debug)]
struct CliError(String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        CliError(e.to_string())
    }
}

fn fail(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            // Malformed syntax exits 1; contradictory flag combinations
            // exit 2 (see `args::ArgsError`).
            return ExitCode::from(e.code);
        }
    };
    let outcome = match command {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Version => {
            println!("moela-dse {VERSION}");
            Ok(())
        }
        Command::Run(opts) => run(&opts),
        Command::Resume {
            dir,
            threads,
            checkpoint_every,
            crash_after_checkpoints,
            progress,
            log_level,
        } => resume(&dir, threads, checkpoint_every, crash_after_checkpoints, progress, log_level),
        Command::Compare(opts) => compare(&opts),
        Command::Info { app, seed } => {
            info(app, seed);
            Ok(())
        }
        Command::Simulate { options, load_factor, cycles } => {
            simulate(&options, load_factor, cycles)
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_problem(opts: &RunOptions) -> Result<ManycoreProblem, CliError> {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(opts.app, platform.pe_mix(), opts.seed);
    let mut problem = ManycoreProblem::new(platform, workload, opts.set)
        .map_err(|e| fail(format!("cannot build the paper platform: {e}")))?;
    if opts.eval_cache == 0 {
        // `--eval-cache off` disables both layers: the design-keyed memo
        // and the topology-keyed routing-table reuse.
        problem.set_routing_cache_capacity(0);
    }
    Ok(problem)
}

fn corpus_normalizer(problem: &ManycoreProblem, seed: u64) -> Normalizer {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let objs: Vec<Vec<f64>> =
        (0..200).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
    Normalizer::fit(&objs)
}

/// Checkpointing context threaded through [`drive`].
struct Persistence {
    store: CheckpointStore,
    every: u64,
    crash_after: Option<u64>,
    algorithm: Algorithm,
}

/// A checkpoint to continue from: the optimizer state plus the wall-clock
/// time the interrupted run had already consumed and, for chaotic runs,
/// the chaos ordinal counter captured at the same safe point.
struct ResumePoint {
    state: Value,
    elapsed: Duration,
    chaos_ordinal: Option<u64>,
}

/// Live telemetry threaded through [`drive`]: the obs handle every
/// optimizer reports phase spans through, the in-memory aggregator the
/// end-of-run `metrics.json` is rendered from, and the optional live
/// progress line. All of it is write-only wall-clock instrumentation —
/// none of it feeds back into the optimizer, so the deterministic
/// artifacts (trace.csv, front.csv, checkpoints) are byte-identical
/// with telemetry on or off.
struct Telemetry {
    obs: Obs,
    aggregator: Option<std::sync::Arc<std::sync::Mutex<MetricsAggregator>>>,
    progress: Option<ProgressReporter>,
    reporter: Reporter,
}

impl Telemetry {
    /// Builds the run telemetry: a JSONL event sink plus the metrics
    /// aggregator when a run store exists (both are cheap), and the
    /// progress reporter when `--progress` was given. `base_evals` seeds
    /// resume-aware throughput accounting.
    fn new(opts: &RunOptions, store: Option<&RunStore>, base_evals: u64) -> Self {
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        let mut aggregator = None;
        if let Some(store) = store {
            if let Ok(jsonl) = JsonlSink::append(&store.events_path()) {
                sinks.push(Box::new(jsonl));
            }
            let shared = SharedSink::new(MetricsAggregator::new());
            aggregator = Some(shared.handle());
            sinks.push(Box::new(shared));
        }
        let obs = if sinks.is_empty() { Obs::disabled() } else { Obs::with_sinks(sinks) };
        let progress = opts.progress.then(|| ProgressReporter::new(base_evals, Some(opts.budget)));
        Telemetry { obs, aggregator, progress, reporter: Reporter::new(opts.log_level) }
    }

    /// Renders `metrics.json` from the aggregated events, folding in the
    /// identity and fault counters the retired `health.json` used to
    /// carry alone, plus the evaluation-cache hit rates.
    fn metrics_value(
        &self,
        opts: &RunOptions,
        log: &FaultLog,
        resumed: bool,
        base_evals: u64,
    ) -> Option<Value> {
        let aggregator = self.aggregator.as_ref()?;
        let (rendered, cache) = aggregator
            .lock()
            .map(|agg| {
                let counters = [
                    "cache_hits",
                    "cache_misses",
                    "cache_evictions",
                    "routing_rebuilds",
                    "routing_hits",
                ]
                .map(|name| agg.counter(name));
                (agg.render(), counters)
            })
            .ok()?;
        let [cache_hits, cache_misses, cache_evictions, routing_rebuilds, routing_hits] = cache;
        let mut fields = vec![
            ("algorithm", Value::Str(opts.algorithm.name().to_owned())),
            ("app", Value::Str(opts.app.name().to_owned())),
            ("seed", Value::U64(opts.seed)),
            ("budget", Value::U64(opts.budget)),
            ("threads", Value::U64(opts.threads as u64)),
            (
                "resume",
                Value::object(vec![
                    ("resumed", Value::Bool(resumed)),
                    ("prior_evaluations", Value::U64(base_evals)),
                ]),
            ),
            (
                "faults",
                Value::object(vec![
                    ("fault_policy", Value::Str(opts.fault_policy.name().to_owned())),
                    ("total", Value::U64(log.faults())),
                    ("panics", Value::U64(log.panics)),
                    ("non_finite", Value::U64(log.non_finite)),
                    ("wrong_arity", Value::U64(log.wrong_arity)),
                    ("retries", Value::U64(log.retries)),
                    ("recovered", Value::U64(log.recovered)),
                    ("penalized", Value::U64(log.penalized)),
                    ("skipped", Value::U64(log.skipped)),
                ]),
            ),
            (
                "cache",
                Value::object(vec![
                    ("enabled", Value::Bool(opts.eval_cache > 0)),
                    ("capacity", Value::U64(opts.eval_cache as u64)),
                    ("hits", Value::U64(cache_hits)),
                    ("misses", Value::U64(cache_misses)),
                    ("evictions", Value::U64(cache_evictions)),
                    ("routing_rebuilds", Value::U64(routing_rebuilds)),
                    ("routing_hits", Value::U64(routing_hits)),
                ]),
            ),
            ("telemetry", rendered),
        ];
        if let Some(spec) = &opts.chaos {
            fields.push(("chaos", Value::Str(spec.to_string())));
        }
        Some(Value::object(fields))
    }
}

/// Steps any resumable optimizer to completion, checkpointing every
/// `persistence.every` completed steps. The envelope carries everything
/// the optimizer state does not: format/build versions, the RNG state,
/// accumulated wall-clock time, and (for chaotic runs) the chaos ordinal
/// counter so resume replays the identical fault stream.
///
/// A latched [`moela_moo::fault::FaultPolicy::Fail`] error surfaces as a
/// [`CliError`] instead of a completed result. On success, the
/// optimizer's fault counters are returned alongside the result for the
/// end-of-run health report.
fn drive<S>(
    mut state: S,
    rng: &mut StdRng,
    codec: &ManycoreProblem,
    persistence: Option<&Persistence>,
    base_elapsed: Duration,
    chaos_ordinal: Option<&dyn Fn() -> u64>,
    telemetry: &mut Telemetry,
) -> Result<(RunResult<Design>, FaultLog), CliError>
where
    S: Resumable<ManycoreProblem, Solution = Design>,
{
    state.set_obs(telemetry.obs.clone());
    let t0 = Instant::now();
    let mut written = 0u64;
    while state.step(rng) {
        if let Some(progress) = telemetry.progress.as_mut() {
            progress.update(state.completed(), state.evaluations(), state.latest_phv());
        }
        let Some(p) = persistence else { continue };
        if !state.completed().is_multiple_of(p.every) {
            continue;
        }
        let elapsed = base_elapsed + t0.elapsed();
        let mut fields = vec![
            ("format", Value::U64(u64::from(FORMAT_VERSION))),
            ("version", Value::Str(VERSION.to_owned())),
            ("algorithm", Value::Str(p.algorithm.name().to_owned())),
            ("completed", Value::U64(state.completed())),
            ("rng", Value::u64_array(&rng.state())),
            ("elapsed_nanos", Value::U64(elapsed.as_nanos() as u64)),
        ];
        if let Some(ordinal) = chaos_ordinal {
            fields.push(("chaos_ordinal", Value::U64(ordinal())));
        }
        fields.push(("state", state.snapshot_state(codec)));
        let envelope = Value::object(fields);
        {
            let _ckpt = telemetry.obs.span("checkpoint_write");
            p.store.save(state.completed(), &envelope)?;
        }
        // Telemetry is crash-safe at the same cadence as the run itself:
        // everything up to the newest checkpoint survives an abort.
        telemetry.obs.flush();
        written += 1;
        if p.crash_after.is_some_and(|n| written >= n) {
            eprintln!("crash injection: aborting after {written} checkpoints");
            std::process::abort();
        }
    }
    if let Some(progress) = telemetry.progress.as_mut() {
        progress.finish(state.completed(), state.evaluations(), state.latest_phv());
    }
    if let Some(fault) = state.fault_error() {
        return Err(fail(format!(
            "{fault} (policy 'fail' stops on the first fault; rerun with --fault-policy \
             penalize-worst or skip to contain faults and continue)"
        )));
    }
    let log = state.fault_log().copied().unwrap_or_default();
    Ok((state.finish(), log))
}

/// Builds the selected optimizer (fresh, or restored from a checkpoint)
/// and drives it to completion — against the bare manycore problem, a
/// memoizing [`CachedProblem`] wrapper (`--eval-cache`, on by default),
/// and/or a seeded [`ChaosProblem`] wrapper when `--chaos` fault
/// injection is configured. Under chaos the cache sits *below* the
/// injector (`Chaos(Cached(problem))`) so faulted evaluations are never
/// admitted and the fault stream consumes ordinals identically with the
/// cache on or off.
///
/// After the run, cache and routing-reuse counters are emitted through
/// the obs pipeline so `metrics.json` records hit rates — write-only
/// telemetry that never feeds back into the optimizer.
fn execute(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    normalizer: &Normalizer,
    persistence: Option<&Persistence>,
    resume: Option<(ResumePoint, StdRng)>,
    telemetry: &mut Telemetry,
) -> Result<(RunResult<Design>, FaultLog), CliError> {
    let cache = (opts.eval_cache > 0).then(|| std::sync::Arc::new(EvalCache::new(opts.eval_cache)));
    let outcome = match (opts.chaos, &cache) {
        (None, None) => {
            execute_on(opts, problem, problem, normalizer, persistence, resume, None, telemetry)
        }
        (None, Some(cache)) => {
            let cached = CachedProblem::new(problem, std::sync::Arc::clone(cache));
            execute_on(opts, &cached, problem, normalizer, persistence, resume, None, telemetry)
        }
        (Some(spec), cache) => {
            // Argument validation guarantees the seed is present.
            let seed = opts.chaos_seed.expect("--chaos requires --chaos-seed");
            if let Some(cache) = cache {
                let cached = CachedProblem::new(problem, std::sync::Arc::clone(cache));
                let chaotic = ChaosProblem::new(cached, spec, seed);
                if let Some((point, _)) = &resume {
                    // Replay the fault stream from the checkpointed
                    // ordinal; a pre-chaos checkpoint starts at zero.
                    chaotic.set_ordinal(point.chaos_ordinal.unwrap_or(0));
                }
                let ordinal = || chaotic.ordinal();
                execute_on(
                    opts,
                    &chaotic,
                    problem,
                    normalizer,
                    persistence,
                    resume,
                    Some(&ordinal),
                    telemetry,
                )
            } else {
                let chaotic = ChaosProblem::new(problem, spec, seed);
                if let Some((point, _)) = &resume {
                    chaotic.set_ordinal(point.chaos_ordinal.unwrap_or(0));
                }
                let ordinal = || chaotic.ordinal();
                execute_on(
                    opts,
                    &chaotic,
                    problem,
                    normalizer,
                    persistence,
                    resume,
                    Some(&ordinal),
                    telemetry,
                )
            }
        }
    };
    let (rebuilds, routing_hits) = problem.routing_stats();
    telemetry.obs.counter("routing_rebuilds", rebuilds);
    telemetry.obs.counter("routing_hits", routing_hits);
    if let Some(cache) = &cache {
        let stats = cache.stats();
        telemetry.obs.counter("cache_hits", stats.hits);
        telemetry.obs.counter("cache_misses", stats.misses);
        telemetry.obs.counter("cache_evictions", stats.evictions);
    }
    outcome
}

/// Drives one optimizer over `problem` — possibly a chaos wrapper —
/// while `codec` stays the bare [`ManycoreProblem`] that encodes and
/// decodes checkpointed solutions.
#[allow(clippy::too_many_arguments)]
fn execute_on<P>(
    opts: &RunOptions,
    problem: &P,
    codec: &ManycoreProblem,
    normalizer: &Normalizer,
    persistence: Option<&Persistence>,
    resume: Option<(ResumePoint, StdRng)>,
    chaos_ordinal: Option<&dyn Fn() -> u64>,
    telemetry: &mut Telemetry,
) -> Result<(RunResult<Design>, FaultLog), CliError>
where
    P: Problem<Solution = Design> + Sync,
{
    let (point, mut rng) = match resume {
        Some((p, r)) => (Some(p), r),
        None => (None, StdRng::seed_from_u64(opts.seed)),
    };
    let base_elapsed = point.as_ref().map_or(Duration::ZERO, |p| p.elapsed);
    match opts.algorithm {
        Algorithm::Moela => {
            let config = MoelaConfig::builder()
                .population(opts.population)
                .generations(usize::MAX / 2)
                .trace_normalizer(normalizer.clone())
                .max_evaluations(opts.budget)
                .time_budget(opts.time_guard)
                .threads(opts.threads)
                .fault(opts.fault())
                .build()
                .map_err(|e| fail(format!("invalid MOELA configuration: {e}")))?;
            let moela = Moela::new(config, problem);
            let state = match &point {
                Some(p) => moela.restore(codec, &p.state, p.elapsed)?,
                None => moela.start(&mut rng),
            };
            drive(state, &mut rng, codec, persistence, base_elapsed, chaos_ordinal, telemetry)
        }
        Algorithm::Moead => {
            let config = MoeadConfig {
                population: opts.population,
                neighborhood: (opts.population / 5).max(2).min(opts.population),
                generations: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let moead = Moead::new(config, problem);
            let state = match &point {
                Some(p) => moead.restore(codec, &p.state, p.elapsed)?,
                None => moead.start(&mut rng),
            };
            drive(state, &mut rng, codec, persistence, base_elapsed, chaos_ordinal, telemetry)
        }
        Algorithm::Moos => {
            let config = MoosConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let moos = Moos::new(config, problem);
            let state = match &point {
                Some(p) => moos.restore(codec, &p.state, p.elapsed)?,
                None => moos.start(&mut rng),
            };
            drive(state, &mut rng, codec, persistence, base_elapsed, chaos_ordinal, telemetry)
        }
        Algorithm::MooStage => {
            let config = MooStageConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let stage = MooStage::new(config, problem);
            let state = match &point {
                Some(p) => stage.restore(codec, &p.state, p.elapsed)?,
                None => stage.start(&mut rng),
            };
            drive(state, &mut rng, codec, persistence, base_elapsed, chaos_ordinal, telemetry)
        }
        Algorithm::Nsga2 => {
            let config = Nsga2Config {
                population: opts.population,
                generations: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
            };
            let nsga2 = Nsga2::new(config, problem);
            let state = match &point {
                Some(p) => nsga2.restore(codec, &p.state, p.elapsed)?,
                None => nsga2.start(&mut rng),
            };
            drive(state, &mut rng, codec, persistence, base_elapsed, chaos_ordinal, telemetry)
        }
        Algorithm::Random => {
            let config = RandomSearchConfig {
                samples: opts.budget,
                trace_normalizer: Some(normalizer.clone()),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let state = match &point {
                Some(p) => random_search_restore(&config, problem, codec, &p.state, p.elapsed)?,
                None => random_search_start(&config, problem),
            };
            drive(state, &mut rng, codec, persistence, base_elapsed, chaos_ordinal, telemetry)
        }
    }
}

/// The manifest written into every run directory: enough to rebuild the
/// exact run configuration on resume, plus the fitted normalizer so
/// resume skips the 200-design corpus fit.
fn manifest_value(opts: &RunOptions, normalizer: &Normalizer) -> Value {
    let mut fields = vec![
        ("format", Value::U64(u64::from(FORMAT_VERSION))),
        ("version", Value::Str(VERSION.to_owned())),
        ("algorithm", Value::Str(opts.algorithm.name().to_owned())),
        ("app", Value::Str(opts.app.name().to_owned())),
        ("objectives", Value::U64(opts.set.count() as u64)),
        ("budget", Value::U64(opts.budget)),
        ("population", Value::U64(opts.population as u64)),
        ("seed", Value::U64(opts.seed)),
        ("threads", Value::U64(opts.threads as u64)),
        ("time_guard_secs", Value::U64(opts.time_guard.as_secs())),
        ("checkpoint_every", Value::U64(opts.checkpoint_every)),
        ("fault_policy", Value::Str(opts.fault_policy.name().to_owned())),
        ("eval_retries", Value::U64(u64::from(opts.eval_retries))),
        ("eval_cache", Value::U64(opts.eval_cache as u64)),
    ];
    if let Some(spec) = &opts.chaos {
        fields.push(("chaos", Value::Str(spec.to_string())));
    }
    if let Some(seed) = opts.chaos_seed {
        fields.push(("chaos_seed", Value::U64(seed)));
    }
    fields.push(("normalizer", normalizer.snapshot()));
    Value::object(fields)
}

/// Rebuilds the run configuration (and the fitted normalizer) from a
/// manifest, refusing manifests from an incompatible format version.
fn options_from_manifest(m: &Value) -> Result<(RunOptions, Normalizer), CliError> {
    let format = m.field("format")?.as_u64()?;
    if format != u64::from(FORMAT_VERSION) {
        return Err(fail(format!(
            "run directory uses checkpoint format {format}, but this build supports only \
             format {FORMAT_VERSION}"
        )));
    }
    let app_name = m.field("app")?.as_str()?;
    let app = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(app_name))
        .ok_or_else(|| fail(format!("manifest names unknown app '{app_name}'")))?;
    let set = match m.field("objectives")?.as_u64()? {
        3 => ObjectiveSet::Three,
        4 => ObjectiveSet::Four,
        5 => ObjectiveSet::Five,
        other => return Err(fail(format!("manifest names unknown objective stack '{other}'"))),
    };
    let algorithm = Algorithm::parse(m.field("algorithm")?.as_str()?).map_err(fail)?;
    // Fault/chaos fields are absent from manifests written before fault
    // containment existed; default to the pre-containment behavior.
    let fault_policy = match m.field_opt("fault_policy") {
        Some(v) => FaultPolicy::parse(v.as_str()?).map_err(fail)?,
        None => FaultPolicy::default(),
    };
    let eval_retries = match m.field_opt("eval_retries") {
        Some(v) => v.as_u64()? as u32,
        None => 0,
    };
    // Manifests written before the evaluation cache existed resume with
    // today's default — results are bit-identical at any capacity.
    let eval_cache = match m.field_opt("eval_cache") {
        Some(v) => v.as_usize()?,
        None => RunOptions::default().eval_cache,
    };
    let chaos = match m.field_opt("chaos") {
        Some(v) => Some(ChaosSpec::parse(v.as_str()?).map_err(fail)?),
        None => None,
    };
    let chaos_seed = match m.field_opt("chaos_seed") {
        Some(v) => Some(v.as_u64()?),
        None => None,
    };
    if chaos.is_some() && chaos_seed.is_none() {
        return Err(fail("manifest configures --chaos but records no chaos seed"));
    }
    let opts = RunOptions {
        app,
        set,
        algorithm,
        budget: m.field("budget")?.as_u64()?,
        population: m.field("population")?.as_usize()?,
        seed: m.field("seed")?.as_u64()?,
        threads: m.field("threads")?.as_usize()?,
        time_guard: Duration::from_secs(m.field("time_guard_secs")?.as_u64()?),
        checkpoint_every: m.field("checkpoint_every")?.as_u64()?,
        fault_policy,
        eval_retries,
        eval_cache,
        chaos,
        chaos_seed,
        ..Default::default()
    };
    let normalizer = Normalizer::restore(m.field("normalizer")?)?;
    if normalizer.len() != opts.set.count() {
        return Err(fail("manifest normalizer does not match the objective stack"));
    }
    Ok((opts, normalizer))
}

/// The deterministic convergence trace (no wall-clock column), used for
/// the run-dir `trace.csv` so kill + resume reproduces it byte for byte.
fn deterministic_trace_csv(result: &RunResult<Design>) -> String {
    let mut out = String::from("generation,evaluations,phv\n");
    for p in &result.trace {
        out.push_str(&format!("{},{},{:.9}\n", p.generation, p.evaluations, p.phv));
    }
    out
}

fn write_outputs(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    result: &RunResult<Design>,
    reporter: &Reporter,
) -> Result<(), CliError> {
    if let Some(path) = &opts.trace_csv {
        std::fs::write(path, result.trace_csv())
            .map_err(|e| fail(format!("cannot write trace CSV '{path}': {e}")))?;
        reporter.info(&format!("trace written to {path}"));
    }
    if let Some(path) = &opts.front_csv {
        std::fs::write(path, result.front_csv())
            .map_err(|e| fail(format!("cannot write front CSV '{path}': {e}")))?;
        reporter.info(&format!("front written to {path}"));
    }
    if let Some(path) = &opts.dot {
        // "Best" = lowest first objective on the front.
        if let Some((design, _)) =
            result.front().into_iter().min_by(|a, b| a.1[0].total_cmp(&b.1[0]))
        {
            let dot = viz::to_dot(problem.config().dims(), problem.config().pe_mix(), &design);
            std::fs::write(path, dot)
                .map_err(|e| fail(format!("cannot write DOT file '{path}': {e}")))?;
            reporter.info(&format!("best design written to {path} (render with `neato -Tpng`)"));
        }
    }
    Ok(())
}

/// Prints the fault-containment health line. Stays silent for clean runs
/// without chaos so the happy-path output is unchanged.
fn print_health(opts: &RunOptions, log: &FaultLog, reporter: &Reporter) {
    if log.is_clean() && opts.chaos.is_none() {
        return;
    }
    reporter.info(&format!(
        "evaluation health: {} faults contained ({} panics, {} non-finite, {} wrong-arity); \
         {} retries ({} recovered), {} penalized, {} skipped [policy {}]",
        log.faults(),
        log.panics,
        log.non_finite,
        log.wrong_arity,
        log.retries,
        log.recovered,
        log.penalized,
        log.skipped,
        opts.fault_policy.name(),
    ));
}

/// Prints the result summary and writes every requested artifact (the
/// run-dir CSVs, the metrics report — which carries the fault counters
/// the retired `health.json` used to hold — and the ad-hoc output
/// flags).
#[allow(clippy::too_many_arguments)]
fn finish_run(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    normalizer: &Normalizer,
    run_store: Option<&RunStore>,
    result: &RunResult<Design>,
    log: &FaultLog,
    telemetry: &mut Telemetry,
    resumed: bool,
    base_evals: u64,
) -> Result<(), CliError> {
    let reporter = telemetry.reporter;
    reporter.info(&format!(
        "finished: {} evaluations in {:.2?}; PHV {:.4}; front {} designs",
        result.evaluations,
        result.elapsed,
        result.phv(normalizer),
        result.front().len()
    ));
    print_health(opts, log, &reporter);
    let mut front = result.front_objectives();
    front.sort_by(|a, b| a[0].total_cmp(&b[0]));
    for (i, objs) in front.iter().take(15).enumerate() {
        let cells: Vec<String> = objs.iter().map(|v| format!("{v:>12.3}")).collect();
        reporter.info(&format!("  #{:<3} {}", i, cells.join(" ")));
    }
    if front.len() > 15 {
        reporter.info(&format!("  … {} more", front.len() - 15));
    }
    if let Some(store) = run_store {
        store.write_trace(&deterministic_trace_csv(result))?;
        store.write_front(&result.front_csv())?;
        telemetry.obs.flush();
        if let Some(metrics) = telemetry.metrics_value(opts, log, resumed, base_evals) {
            store.write_metrics(&metrics)?;
        }
        reporter.info(&format!("run artifacts written to {}", store.root().display()));
    }
    write_outputs(opts, problem, result, &reporter)
}

fn run(opts: &RunOptions) -> Result<(), CliError> {
    let reporter = Reporter::new(opts.log_level);
    let problem = build_problem(opts)?;
    let normalizer = corpus_normalizer(&problem, opts.seed);
    reporter.info(&format!(
        "{} on {} ({}), budget {} evaluations, seed {}",
        opts.algorithm.name(),
        opts.app,
        opts.set,
        opts.budget,
        opts.seed
    ));
    if let Some(spec) = &opts.chaos {
        reporter.info(&format!(
            "chaos injection: {spec} (chaos seed {}), fault policy {}, {} retries",
            opts.chaos_seed.expect("--chaos requires --chaos-seed"),
            opts.fault_policy.name(),
            opts.eval_retries
        ));
    }
    let run_store = match &opts.run_dir {
        Some(dir) => {
            let store = RunStore::create(dir)?;
            store.write_manifest(&manifest_value(opts, &normalizer))?;
            Some(store)
        }
        None => None,
    };
    let persistence = match &run_store {
        Some(store) => Some(Persistence {
            store: store.checkpoints()?,
            every: opts.checkpoint_every,
            crash_after: opts.crash_after_checkpoints,
            algorithm: opts.algorithm,
        }),
        None => None,
    };
    let mut telemetry = Telemetry::new(opts, run_store.as_ref(), 0);
    telemetry.obs.marker("run_start", opts.algorithm.name());
    let (result, log) =
        execute(opts, &problem, &normalizer, persistence.as_ref(), None, &mut telemetry)?;
    finish_run(
        opts,
        &problem,
        &normalizer,
        run_store.as_ref(),
        &result,
        &log,
        &mut telemetry,
        false,
        0,
    )
}

fn resume(
    dir: &str,
    threads: Option<usize>,
    checkpoint_every: Option<u64>,
    crash_after_checkpoints: Option<u64>,
    progress: bool,
    log_level: moela_obs::LogLevel,
) -> Result<(), CliError> {
    let store = RunStore::open(dir)?;
    let manifest = store.read_manifest()?;
    let (mut opts, normalizer) = options_from_manifest(&manifest)?;
    if let Some(t) = threads {
        opts.threads = t;
    }
    if let Some(e) = checkpoint_every {
        if e == 0 {
            return Err(fail("--checkpoint-every must be positive"));
        }
        opts.checkpoint_every = e;
    }
    opts.crash_after_checkpoints = crash_after_checkpoints;
    opts.run_dir = Some(dir.to_owned());
    opts.progress = progress;
    opts.log_level = log_level;
    let reporter = Reporter::new(opts.log_level);

    let checkpoints = store.checkpoints()?;
    let Some((seq, envelope, warnings)) = checkpoints.load_latest()? else {
        return Err(fail(format!(
            "{} holds no checkpoints to resume (was the run started with --checkpoint-every?)",
            store.root().display()
        )));
    };
    for w in warnings {
        eprintln!("warning: skipped corrupt checkpoint: {w}");
    }
    let format = envelope.field("format")?.as_u64()?;
    if format != u64::from(FORMAT_VERSION) {
        return Err(fail(format!(
            "checkpoint {seq} uses format {format}, but this build supports only format \
             {FORMAT_VERSION}"
        )));
    }
    let algorithm = envelope.field("algorithm")?.as_str()?;
    if algorithm != opts.algorithm.name() {
        return Err(fail(format!(
            "checkpoint {seq} was written by '{algorithm}' but the manifest configures '{}'",
            opts.algorithm.name()
        )));
    }
    let rng_words: [u64; 4] = envelope
        .field("rng")?
        .to_u64_vec()?
        .try_into()
        .map_err(|_| fail(format!("checkpoint {seq} has a malformed RNG state")))?;
    let rng = StdRng::from_state(rng_words);
    let elapsed = Duration::from_nanos(envelope.field("elapsed_nanos")?.as_u64()?);
    let chaos_ordinal = match envelope.field_opt("chaos_ordinal") {
        Some(v) => Some(v.as_u64()?),
        None => None,
    };
    let point = ResumePoint { state: envelope.field("state")?.clone(), elapsed, chaos_ordinal };

    let problem = build_problem(&opts)?;
    reporter.info(&format!(
        "resuming {} on {} ({}) from checkpoint {} in {}",
        opts.algorithm.name(),
        opts.app,
        opts.set,
        seq,
        store.root().display()
    ));
    let persistence = Persistence {
        store: checkpoints,
        every: opts.checkpoint_every,
        crash_after: opts.crash_after_checkpoints,
        algorithm: opts.algorithm,
    };
    // Progress rates and the metrics throughput window count only the
    // work done after this resume; events.jsonl appends to the prior
    // process's log rather than truncating it.
    let base_evals =
        point.state.field_opt("evaluations").and_then(|v| v.as_u64().ok()).unwrap_or_default();
    let mut telemetry = Telemetry::new(&opts, Some(&store), base_evals);
    telemetry.obs.marker("resume", &format!("checkpoint {seq}"));
    let (result, log) = execute(
        &opts,
        &problem,
        &normalizer,
        Some(&persistence),
        Some((point, rng)),
        &mut telemetry,
    )?;
    finish_run(
        &opts,
        &problem,
        &normalizer,
        Some(&store),
        &result,
        &log,
        &mut telemetry,
        true,
        base_evals,
    )
}

fn compare(opts: &RunOptions) -> Result<(), CliError> {
    let reporter = Reporter::new(opts.log_level);
    let problem = build_problem(opts)?;
    let normalizer = corpus_normalizer(&problem, opts.seed);
    reporter.info(&format!(
        "comparing all algorithms on {} ({}), budget {} evaluations\n",
        opts.app, opts.set, opts.budget
    ));
    reporter.info(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>7}",
        "algorithm", "evals", "time", "PHV", "front"
    ));
    for (algorithm, name) in Algorithm::ALL {
        let mut per_algorithm = opts.clone();
        per_algorithm.algorithm = algorithm;
        let mut telemetry = Telemetry::new(&per_algorithm, None, 0);
        let (result, log) =
            execute(&per_algorithm, &problem, &normalizer, None, None, &mut telemetry)?;
        let health = if log.is_clean() {
            String::new()
        } else {
            format!("  ({} faults contained)", log.faults())
        };
        reporter.info(&format!(
            "{:<12} {:>10} {:>10.2?} {:>10.4} {:>7}{health}",
            name,
            result.evaluations,
            result.elapsed,
            result.phv(&normalizer),
            result.front().len()
        ));
    }
    Ok(())
}

fn info(app: Benchmark, seed: u64) {
    let platform = PlatformConfig::paper();
    let mix = platform.pe_mix();
    let w = Workload::synthesize(app, mix, seed);
    println!("{app} on the paper platform (seed {seed})");
    println!("  PEs: {} CPUs, {} GPUs, {} LLCs", mix.cpus(), mix.gpus(), mix.llcs());
    println!(
        "  total traffic: {:.1} flits/kilo-cycle over {} flows",
        w.total_traffic(),
        w.flows().len()
    );
    let class_total = |a: PeKind, b: PeKind| -> f64 {
        let total: f64 = mix
            .ids_of(a)
            .flat_map(|i| mix.ids_of(b).map(move |j| (i, j)))
            .map(|(i, j)| w.traffic(i, j) + w.traffic(j, i))
            .sum();
        // Same-kind classes enumerate every unordered pair twice.
        if a == b {
            total / 2.0
        } else {
            total
        }
    };
    let pairs = [
        ("CPU<->LLC", class_total(PeKind::Cpu, PeKind::Llc)),
        ("GPU<->LLC", class_total(PeKind::Gpu, PeKind::Llc)),
        ("GPU<->GPU", class_total(PeKind::Gpu, PeKind::Gpu)),
        ("CPU<->CPU", class_total(PeKind::Cpu, PeKind::Cpu)),
    ];
    for (name, v) in pairs {
        println!("  {name:<10} {:>6.1}%", v / w.total_traffic() * 100.0);
    }
    let total_power: f64 = w.pe_powers().iter().sum();
    println!("  total PE power: {total_power:.1} W");
}

fn simulate(opts: &RunOptions, load_factor: f64, cycles: u64) -> Result<(), CliError> {
    let problem = build_problem(opts)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let design = problem.random_solution(&mut rng);
    println!(
        "simulating a random design: {} workload, load x{load_factor}, {cycles} cycles",
        opts.app
    );
    let sim = Simulator::new(&problem, &design, SimConfig { load_factor, warmup_cycles: 2_000 });
    let stats = sim.run(cycles);
    println!("  delivered flits:    {}", stats.delivered);
    println!("  delivery ratio:     {:.3}", stats.delivery_ratio());
    println!("  avg flit latency:   {:.1} cycles", stats.avg_latency);
    println!("  mean link util:     {:.4} flits/cycle", stats.mean_utilization());
    println!("  max link util:      {:.4} flits/cycle", stats.max_link_utilization);
    let analytic = problem.evaluate_full(&design);
    println!(
        "  analytic reference: latency {:.1} cycles, mean util {:.4} flits/cycle",
        analytic.network.avg_packet_latency,
        analytic.mean_traffic / 1000.0
    );
    Ok(())
}
