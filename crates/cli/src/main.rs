//! `moela-dse`: command-line design-space exploration with the MOELA
//! framework. See `moela-dse help` for usage.
//!
//! With `run --run-dir DIR` every run becomes a structured, crash-safe
//! store (manifest + rotating checkpoints + result CSVs and their JSON
//! twins) that `moela-dse resume DIR` continues from its newest intact
//! checkpoint — producing byte-identical `trace.csv`/`front.csv` to an
//! uninterrupted run, at any thread count. `moela-dse serve` exposes
//! the same engine as an HTTP job server with bounded queueing,
//! cooperative cancellation, and graceful drain.

mod analysis;
mod args;
mod engine;
mod serve_cmd;

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use moela_manycore::PlatformConfig;
use moela_moo::Problem;
use moela_nocsim::{SimConfig, Simulator};
use moela_obs::Reporter;
use moela_traffic::{Benchmark, PeKind, Workload};

use args::{Algorithm, Command, RunOptions};
use engine::{CliError, ExecHooks, ResumeOverrides, Telemetry, VERSION};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            // Malformed syntax exits 1; contradictory flag combinations
            // exit 2 (see `args::ArgsError`).
            return ExitCode::from(e.code);
        }
    };
    let outcome = match command {
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
        Command::Version => {
            println!("moela-dse {VERSION}");
            Ok(())
        }
        Command::Run(opts) => engine::run(&opts, &ExecHooks::none()).map(|_| ()),
        Command::Resume {
            dir,
            threads,
            checkpoint_every,
            crash_after_checkpoints,
            progress,
            log_level,
        } => {
            let overrides = ResumeOverrides {
                threads,
                checkpoint_every,
                crash_after_checkpoints,
                progress,
                log_level: Some(log_level),
            };
            engine::resume(&dir, &overrides, &ExecHooks::none()).map(|_| ())
        }
        Command::Serve(opts) => serve_cmd::serve(&opts),
        Command::Report { dir, log_level } => analysis::report(&dir, log_level),
        Command::CompareRuns { baseline, candidate, max_phv_regression, max_rate_regression } => {
            let thresholds =
                analysis::CompareThresholds { max_phv_regression, max_rate_regression };
            analysis::compare_runs(&baseline, &candidate, &thresholds)
        }
        Command::Compare(opts) => compare(&opts),
        Command::Info { app, seed } => {
            info(app, seed);
            Ok(())
        }
        Command::Simulate { options, load_factor, cycles } => {
            simulate(&options, load_factor, cycles)
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // The same convention as argument parsing: 1 for operational
            // failures, 2 for configurations the user must fix.
            ExitCode::from(e.code)
        }
    }
}

fn compare(opts: &RunOptions) -> Result<(), CliError> {
    let reporter = Reporter::new(opts.log_level);
    let problem = engine::build_problem(opts)?;
    let normalizer = engine::corpus_normalizer(&problem, opts.seed);
    reporter.info(&format!(
        "comparing all algorithms on {} ({}), budget {} evaluations\n",
        opts.app, opts.set, opts.budget
    ));
    reporter.info(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>7}",
        "algorithm", "evals", "time", "PHV", "front"
    ));
    for (algorithm, name) in Algorithm::ALL {
        let mut per_algorithm = opts.clone();
        per_algorithm.algorithm = algorithm;
        let mut telemetry = Telemetry::new(&per_algorithm, None, 0);
        let driven = engine::execute(
            &per_algorithm,
            &problem,
            &normalizer,
            None,
            None,
            &mut telemetry,
            &ExecHooks::none(),
        )?;
        let engine::Driven::Finished(result, log) = driven else {
            unreachable!("compare runs without a cancel hook")
        };
        let health = if log.is_clean() {
            String::new()
        } else {
            format!("  ({} faults contained)", log.faults())
        };
        reporter.info(&format!(
            "{:<12} {:>10} {:>10.2?} {:>10.4} {:>7}{health}",
            name,
            result.evaluations,
            result.elapsed,
            result.phv(&normalizer),
            result.front().len()
        ));
    }
    Ok(())
}

fn info(app: Benchmark, seed: u64) {
    let platform = PlatformConfig::paper();
    let mix = platform.pe_mix();
    let w = Workload::synthesize(app, mix, seed);
    println!("{app} on the paper platform (seed {seed})");
    println!("  PEs: {} CPUs, {} GPUs, {} LLCs", mix.cpus(), mix.gpus(), mix.llcs());
    println!(
        "  total traffic: {:.1} flits/kilo-cycle over {} flows",
        w.total_traffic(),
        w.flows().len()
    );
    let class_total = |a: PeKind, b: PeKind| -> f64 {
        let total: f64 = mix
            .ids_of(a)
            .flat_map(|i| mix.ids_of(b).map(move |j| (i, j)))
            .map(|(i, j)| w.traffic(i, j) + w.traffic(j, i))
            .sum();
        // Same-kind classes enumerate every unordered pair twice.
        if a == b {
            total / 2.0
        } else {
            total
        }
    };
    let pairs = [
        ("CPU<->LLC", class_total(PeKind::Cpu, PeKind::Llc)),
        ("GPU<->LLC", class_total(PeKind::Gpu, PeKind::Llc)),
        ("GPU<->GPU", class_total(PeKind::Gpu, PeKind::Gpu)),
        ("CPU<->CPU", class_total(PeKind::Cpu, PeKind::Cpu)),
    ];
    for (name, v) in pairs {
        println!("  {name:<10} {:>6.1}%", v / w.total_traffic() * 100.0);
    }
    let total_power: f64 = w.pe_powers().iter().sum();
    println!("  total PE power: {total_power:.1} W");
}

fn simulate(opts: &RunOptions, load_factor: f64, cycles: u64) -> Result<(), CliError> {
    let problem = engine::build_problem(opts)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let design = problem.random_solution(&mut rng);
    println!(
        "simulating a random design: {} workload, load x{load_factor}, {cycles} cycles",
        opts.app
    );
    let sim = Simulator::new(&problem, &design, SimConfig { load_factor, warmup_cycles: 2_000 });
    let stats = sim.run(cycles);
    println!("  delivered flits:    {}", stats.delivered);
    println!("  delivery ratio:     {:.3}", stats.delivery_ratio());
    println!("  avg flit latency:   {:.1} cycles", stats.avg_latency);
    println!("  mean link util:     {:.4} flits/cycle", stats.mean_utilization());
    println!("  max link util:      {:.4} flits/cycle", stats.max_link_utilization);
    let analytic = problem.evaluate_full(&design);
    println!(
        "  analytic reference: latency {:.1} cycles, mean util {:.4} flits/cycle",
        analytic.network.avg_packet_latency,
        analytic.mean_traffic / 1000.0
    );
    Ok(())
}
