//! `moela-dse`: command-line design-space exploration with the MOELA
//! framework. See `moela-dse help` for usage.

mod args;

use std::process::ExitCode;

use rand::SeedableRng;

use moela_baselines::{
    random_search, Moead, MoeadConfig, MooStage, MooStageConfig, Moos, MoosConfig, Nsga2,
    Nsga2Config, RandomSearchConfig,
};
use moela_core::{Moela, MoelaConfig};
use moela_manycore::{viz, Design, ManycoreProblem, PlatformConfig};
use moela_moo::normalize::Normalizer;
use moela_moo::run::RunResult;
use moela_moo::Problem;
use moela_nocsim::{SimConfig, Simulator};
use moela_traffic::{Benchmark, PeKind, Workload};

use args::{Algorithm, Command, RunOptions};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match command {
        Command::Help => {
            println!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Command::Run(opts) => run(&opts),
        Command::Compare(opts) => compare(&opts),
        Command::Info { app, seed } => info(app, seed),
        Command::Simulate { options, load_factor, cycles } => {
            simulate(&options, load_factor, cycles)
        }
    }
}

fn build_problem(opts: &RunOptions) -> ManycoreProblem {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(opts.app, platform.pe_mix(), opts.seed);
    ManycoreProblem::new(platform, workload, opts.set).expect("paper platform is consistent")
}

fn corpus_normalizer(problem: &ManycoreProblem, seed: u64) -> Normalizer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let objs: Vec<Vec<f64>> =
        (0..200).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
    Normalizer::fit(&objs)
}

fn run_algorithm(
    algorithm: Algorithm,
    problem: &ManycoreProblem,
    normalizer: &Normalizer,
    opts: &RunOptions,
) -> RunResult<Design> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    match algorithm {
        Algorithm::Moela => {
            let config = MoelaConfig::builder()
                .population(opts.population)
                .generations(usize::MAX / 2)
                .trace_normalizer(normalizer.clone())
                .max_evaluations(opts.budget)
                .time_budget(opts.time_guard)
                .threads(opts.threads)
                .build()
                .expect("validated options");
            Moela::new(config, problem).run(&mut rng)
        }
        Algorithm::Moead => {
            let config = MoeadConfig {
                population: opts.population,
                neighborhood: (opts.population / 5).max(2).min(opts.population),
                generations: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                ..Default::default()
            };
            Moead::new(config, problem).run(&mut rng)
        }
        Algorithm::Moos => {
            let config = MoosConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                ..Default::default()
            };
            Moos::new(config, problem).run(&mut rng)
        }
        Algorithm::MooStage => {
            let config = MooStageConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                ..Default::default()
            };
            MooStage::new(config, problem).run(&mut rng)
        }
        Algorithm::Nsga2 => {
            let config = Nsga2Config {
                population: opts.population,
                generations: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
            };
            Nsga2::new(config, problem).run(&mut rng)
        }
        Algorithm::Random => {
            let config = RandomSearchConfig {
                samples: opts.budget,
                trace_normalizer: Some(normalizer.clone()),
                threads: opts.threads,
                ..Default::default()
            };
            random_search(&config, problem, &mut rng)
        }
    }
}

fn write_outputs(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    result: &RunResult<Design>,
) -> std::io::Result<()> {
    if let Some(path) = &opts.trace_csv {
        std::fs::write(path, result.trace_csv())?;
        println!("trace written to {path}");
    }
    if let Some(path) = &opts.front_csv {
        std::fs::write(path, result.front_csv())?;
        println!("front written to {path}");
    }
    if let Some(path) = &opts.dot {
        // "Best" = lowest first objective on the front.
        if let Some((design, _)) =
            result.front().into_iter().min_by(|a, b| a.1[0].total_cmp(&b.1[0]))
        {
            let dot = viz::to_dot(problem.config().dims(), problem.config().pe_mix(), &design);
            std::fs::write(path, dot)?;
            println!("best design written to {path} (render with `neato -Tpng`)");
        }
    }
    Ok(())
}

fn run(opts: &RunOptions) -> ExitCode {
    let problem = build_problem(opts);
    let normalizer = corpus_normalizer(&problem, opts.seed);
    println!(
        "{} on {} ({}), budget {} evaluations, seed {}",
        opts.algorithm.name(),
        opts.app,
        opts.set,
        opts.budget,
        opts.seed
    );
    let result = run_algorithm(opts.algorithm, &problem, &normalizer, opts);
    println!(
        "finished: {} evaluations in {:.2?}; PHV {:.4}; front {} designs",
        result.evaluations,
        result.elapsed,
        result.phv(&normalizer),
        result.front().len()
    );
    let mut front = result.front_objectives();
    front.sort_by(|a, b| a[0].total_cmp(&b[0]));
    for (i, objs) in front.iter().take(15).enumerate() {
        let cells: Vec<String> = objs.iter().map(|v| format!("{v:>12.3}")).collect();
        println!("  #{:<3} {}", i, cells.join(" "));
    }
    if front.len() > 15 {
        println!("  … {} more", front.len() - 15);
    }
    if let Err(e) = write_outputs(opts, &problem, &result) {
        eprintln!("error writing outputs: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn compare(opts: &RunOptions) -> ExitCode {
    let problem = build_problem(opts);
    let normalizer = corpus_normalizer(&problem, opts.seed);
    println!(
        "comparing all algorithms on {} ({}), budget {} evaluations\n",
        opts.app, opts.set, opts.budget
    );
    println!("{:<12} {:>10} {:>10} {:>10} {:>7}", "algorithm", "evals", "time", "PHV", "front");
    for (algorithm, name) in Algorithm::ALL {
        let result = run_algorithm(algorithm, &problem, &normalizer, opts);
        println!(
            "{:<12} {:>10} {:>10.2?} {:>10.4} {:>7}",
            name,
            result.evaluations,
            result.elapsed,
            result.phv(&normalizer),
            result.front().len()
        );
    }
    ExitCode::SUCCESS
}

fn info(app: Benchmark, seed: u64) -> ExitCode {
    let platform = PlatformConfig::paper();
    let mix = platform.pe_mix();
    let w = Workload::synthesize(app, mix, seed);
    println!("{app} on the paper platform (seed {seed})");
    println!("  PEs: {} CPUs, {} GPUs, {} LLCs", mix.cpus(), mix.gpus(), mix.llcs());
    println!(
        "  total traffic: {:.1} flits/kilo-cycle over {} flows",
        w.total_traffic(),
        w.flows().len()
    );
    let class_total = |a: PeKind, b: PeKind| -> f64 {
        let total: f64 = mix
            .ids_of(a)
            .flat_map(|i| mix.ids_of(b).map(move |j| (i, j)))
            .map(|(i, j)| w.traffic(i, j) + w.traffic(j, i))
            .sum();
        // Same-kind classes enumerate every unordered pair twice.
        if a == b {
            total / 2.0
        } else {
            total
        }
    };
    let pairs = [
        ("CPU<->LLC", class_total(PeKind::Cpu, PeKind::Llc)),
        ("GPU<->LLC", class_total(PeKind::Gpu, PeKind::Llc)),
        ("GPU<->GPU", class_total(PeKind::Gpu, PeKind::Gpu)),
        ("CPU<->CPU", class_total(PeKind::Cpu, PeKind::Cpu)),
    ];
    for (name, v) in pairs {
        println!("  {name:<10} {:>6.1}%", v / w.total_traffic() * 100.0);
    }
    let total_power: f64 = w.pe_powers().iter().sum();
    println!("  total PE power: {total_power:.1} W");
    ExitCode::SUCCESS
}

fn simulate(opts: &RunOptions, load_factor: f64, cycles: u64) -> ExitCode {
    let problem = build_problem(opts);
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let design = problem.random_solution(&mut rng);
    println!(
        "simulating a random design: {} workload, load x{load_factor}, {cycles} cycles",
        opts.app
    );
    let sim = Simulator::new(&problem, &design, SimConfig { load_factor, warmup_cycles: 2_000 });
    let stats = sim.run(cycles);
    println!("  delivered flits:    {}", stats.delivered);
    println!("  delivery ratio:     {:.3}", stats.delivery_ratio());
    println!("  avg flit latency:   {:.1} cycles", stats.avg_latency);
    println!("  mean link util:     {:.4} flits/cycle", stats.mean_utilization());
    println!("  max link util:      {:.4} flits/cycle", stats.max_link_utilization);
    let analytic = problem.evaluate_full(&design);
    println!(
        "  analytic reference: latency {:.1} cycles, mean util {:.4} flits/cycle",
        analytic.network.avg_packet_latency,
        analytic.mean_traffic / 1000.0
    );
    ExitCode::SUCCESS
}
