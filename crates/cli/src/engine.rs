//! The run engine: everything between parsed arguments and finished
//! artifacts, shared verbatim by `run`, `resume`, and the job server.
//!
//! This module is the reason served jobs are byte-identical to CLI
//! runs: there is exactly one code path that builds the problem, drives
//! an optimizer through its start/step/finish loop, checkpoints, and
//! writes `trace.csv` / `front.csv` / `trace.json` / `front.json`. The
//! server adds two hooks — a cooperative [`CancelToken`] checked at
//! step boundaries and a live-metrics slot for in-flight polling — and
//! both are write-only with respect to the deterministic artifacts.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use moela_baselines::{
    random_search_restore, random_search_start, Moead, MoeadConfig, MooStage, MooStageConfig, Moos,
    MoosConfig, Nsga2, Nsga2Config, RandomSearchConfig,
};
use moela_core::{Moela, MoelaConfig};
use moela_manycore::{viz, Design, ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{FaultLog, FaultPolicy};
use moela_moo::normalize::Normalizer;
use moela_moo::run::RunResult;
use moela_moo::{CachedProblem, ChaosProblem, ChaosSpec, EvalCache, Problem};
use moela_obs::{JsonlSink, MetricsAggregator, Obs, ProgressReporter, Reporter, SharedSink, Sink};
use moela_persist::{
    CheckpointStore, PersistError, Restore, RunStore, Snapshot, Value, FORMAT_VERSION,
};
use moela_serve::{Heartbeat, LiveMetrics};
use moela_traffic::{Benchmark, Workload};

use crate::args::{Algorithm, RunOptions};

/// The build version stamped into manifests and checkpoints.
pub(crate) const VERSION: &str = env!("CARGO_PKG_VERSION");

/// How a [`CliError`] should be treated by a supervising caller (the
/// job server). Plain CLI runs ignore this — every class exits nonzero
/// with the same message either way.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub(crate) enum ErrorClass {
    /// Retrying cannot help: bad configuration, logic errors, corrupt
    /// data that will never parse differently.
    Fatal,
    /// Likely to succeed on a retry from the last checkpoint — e.g. an
    /// exhausted evaluation fault budget under `--fault-policy fail`.
    Transient,
    /// An OS-level I/O failure writing run state: retryable, and the
    /// server additionally degrades its readiness probe.
    Disk,
}

/// A user-facing failure: printed to stderr, exits with `code` (1 for
/// operational failures, 2 for contradictory configuration the user
/// must resolve — the same convention `args::ArgsError` uses).
#[derive(Debug)]
pub(crate) struct CliError {
    pub(crate) message: String,
    pub(crate) code: u8,
    /// Retry disposition for supervised (served) executions.
    pub(crate) class: ErrorClass,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        // OS-level I/O failures are worth retrying (and flag disk
        // trouble to the server); corruption is final.
        let class = if e.is_transient_io() { ErrorClass::Disk } else { ErrorClass::Fatal };
        CliError { message: e.to_string(), code: 1, class }
    }
}

/// An operational failure (exit code 1).
pub(crate) fn fail(message: impl Into<String>) -> CliError {
    CliError { message: message.into(), code: 1, class: ErrorClass::Fatal }
}

/// An operational failure a supervisor should retry (exit code 1).
pub(crate) fn transient(message: impl Into<String>) -> CliError {
    CliError { message: message.into(), code: 1, class: ErrorClass::Transient }
}

/// A configuration the user must fix (exit code 2) — e.g. `--chaos`
/// without `--chaos-seed` arriving through a manifest or job spec that
/// bypassed argument parsing.
pub(crate) fn user_error(message: impl Into<String>) -> CliError {
    CliError { message: message.into(), code: 2, class: ErrorClass::Fatal }
}

/// External hooks threaded through a run by the job server. Plain CLI
/// runs use [`ExecHooks::none`].
#[derive(Clone, Copy, Default)]
pub(crate) struct ExecHooks<'a> {
    /// Cooperative cancellation, checked at step boundaries.
    pub(crate) cancel: Option<&'a CancelToken>,
    /// Slot to publish the live metrics aggregator into while running.
    pub(crate) live: Option<&'a LiveMetrics>,
    /// Step-boundary liveness beacon for the server's watchdog.
    pub(crate) heartbeat: Option<&'a Heartbeat>,
    /// 1-based attempt number under supervision; 0 for direct CLI runs.
    pub(crate) attempt: u64,
}

impl ExecHooks<'_> {
    /// No hooks: run to completion, no live polling.
    pub(crate) fn none() -> Self {
        Self::default()
    }

    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|t| t.is_cancelled())
    }

    /// Publishes "still making step progress" to the watchdog.
    fn beat(&self) {
        if let Some(hb) = self.heartbeat {
            hb.beat();
        }
    }
}

/// How a driven run ended.
pub(crate) enum RunStatus {
    /// Ran to completion; all artifacts are on disk.
    Completed {
        /// Small machine-readable report (evaluations, PHV, front size).
        summary: Value,
    },
    /// Parked at a checkpoint by the cancel hook; the run directory is
    /// resumable.
    Interrupted,
}

pub(crate) fn build_problem(opts: &RunOptions) -> Result<ManycoreProblem, CliError> {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(opts.app, platform.pe_mix(), opts.seed);
    let mut problem = ManycoreProblem::new(platform, workload, opts.set)
        .map_err(|e| fail(format!("cannot build the paper platform: {e}")))?;
    if opts.eval_cache == 0 {
        // `--eval-cache off` disables both layers: the design-keyed memo
        // and the topology-keyed routing-table reuse.
        problem.set_routing_cache_capacity(0);
    }
    problem.set_delta_eval(opts.eval_delta);
    Ok(problem)
}

pub(crate) fn corpus_normalizer(problem: &ManycoreProblem, seed: u64) -> Normalizer {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let objs: Vec<Vec<f64>> =
        (0..200).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
    Normalizer::fit(&objs)
}

/// Checkpointing context threaded through [`drive`].
pub(crate) struct Persistence {
    pub(crate) store: CheckpointStore,
    pub(crate) every: u64,
    pub(crate) crash_after: Option<u64>,
    pub(crate) algorithm: Algorithm,
}

/// A checkpoint to continue from: the optimizer state plus the wall-clock
/// time the interrupted run had already consumed and, for chaotic runs,
/// the chaos ordinal counter captured at the same safe point.
pub(crate) struct ResumePoint {
    pub(crate) state: Value,
    pub(crate) elapsed: Duration,
    pub(crate) chaos_ordinal: Option<u64>,
}

/// Live telemetry threaded through [`drive`]: the obs handle every
/// optimizer reports phase spans through, the in-memory aggregator the
/// end-of-run `metrics.json` is rendered from, and the optional live
/// progress line. All of it is write-only wall-clock instrumentation —
/// none of it feeds back into the optimizer, so the deterministic
/// artifacts (trace.csv, front.csv, checkpoints) are byte-identical
/// with telemetry on or off.
pub(crate) struct Telemetry {
    pub(crate) obs: Obs,
    pub(crate) aggregator: Option<Arc<Mutex<MetricsAggregator>>>,
    pub(crate) progress: Option<ProgressReporter>,
    pub(crate) reporter: Reporter,
    /// Supervised attempt number ([`ExecHooks::attempt`]); 0 for direct
    /// CLI runs, which therefore emit no supervision block.
    pub(crate) attempt: u64,
}

impl Telemetry {
    /// Builds the run telemetry: a JSONL event sink plus the metrics
    /// aggregator when a run store exists (both are cheap), and the
    /// progress reporter when `--progress` was given. `base_evals` seeds
    /// resume-aware throughput accounting.
    pub(crate) fn new(opts: &RunOptions, store: Option<&RunStore>, base_evals: u64) -> Self {
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        let mut aggregator = None;
        if let Some(store) = store {
            if let Ok(jsonl) = JsonlSink::append(&store.events_path()) {
                sinks.push(Box::new(jsonl));
            }
            let shared = SharedSink::new(MetricsAggregator::new());
            aggregator = Some(shared.handle());
            sinks.push(Box::new(shared));
        }
        let obs = if sinks.is_empty() { Obs::disabled() } else { Obs::with_sinks(sinks) };
        let progress = opts.progress.then(|| ProgressReporter::new(base_evals, Some(opts.budget)));
        Telemetry { obs, aggregator, progress, reporter: Reporter::new(opts.log_level), attempt: 0 }
    }

    /// Publishes this run's aggregator into the server's live slot so
    /// `GET /jobs/{id}` can report in-flight phase metrics.
    fn publish_live(&self, hooks: &ExecHooks<'_>) {
        if let (Some(slot), Some(agg)) = (hooks.live, &self.aggregator) {
            if let Ok(mut s) = slot.lock() {
                *s = Some(Arc::clone(agg));
            }
        }
    }

    /// Renders `metrics.json` from the aggregated events, folding in the
    /// identity and fault counters the retired `health.json` used to
    /// carry alone, plus the evaluation-cache hit rates.
    fn metrics_value(
        &self,
        opts: &RunOptions,
        log: &FaultLog,
        resumed: bool,
        base_evals: u64,
    ) -> Option<Value> {
        let aggregator = self.aggregator.as_ref()?;
        let (rendered, cache) = aggregator
            .lock()
            .map(|agg| {
                let counters = [
                    "cache_hits",
                    "cache_misses",
                    "cache_evictions",
                    "routing_rebuilds",
                    "routing_hits",
                    "delta_hits",
                    "delta_fallbacks",
                ]
                .map(|name| agg.counter(name));
                (agg.render(), counters)
            })
            .ok()?;
        let [cache_hits, cache_misses, cache_evictions, routing_rebuilds, routing_hits, delta_hits, delta_fallbacks] =
            cache;
        let mut fields = vec![
            ("algorithm", Value::Str(opts.algorithm.name().to_owned())),
            ("app", Value::Str(opts.app.name().to_owned())),
            ("seed", Value::U64(opts.seed)),
            ("budget", Value::U64(opts.budget)),
            ("threads", Value::U64(opts.threads as u64)),
            (
                "resume",
                Value::object(vec![
                    ("resumed", Value::Bool(resumed)),
                    ("prior_evaluations", Value::U64(base_evals)),
                ]),
            ),
            (
                "faults",
                Value::object(vec![
                    ("fault_policy", Value::Str(opts.fault_policy.name().to_owned())),
                    ("total", Value::U64(log.faults())),
                    ("panics", Value::U64(log.panics)),
                    ("non_finite", Value::U64(log.non_finite)),
                    ("wrong_arity", Value::U64(log.wrong_arity)),
                    ("retries", Value::U64(log.retries)),
                    ("recovered", Value::U64(log.recovered)),
                    ("penalized", Value::U64(log.penalized)),
                    ("skipped", Value::U64(log.skipped)),
                ]),
            ),
            (
                "cache",
                Value::object(vec![
                    ("enabled", Value::Bool(opts.eval_cache > 0)),
                    ("capacity", Value::U64(opts.eval_cache as u64)),
                    ("hits", Value::U64(cache_hits)),
                    ("misses", Value::U64(cache_misses)),
                    ("evictions", Value::U64(cache_evictions)),
                    ("routing_rebuilds", Value::U64(routing_rebuilds)),
                    ("routing_hits", Value::U64(routing_hits)),
                ]),
            ),
            (
                "delta",
                Value::object(vec![
                    ("enabled", Value::Bool(opts.eval_delta)),
                    ("hits", Value::U64(delta_hits)),
                    ("fallbacks", Value::U64(delta_fallbacks)),
                ]),
            ),
            ("telemetry", rendered),
        ];
        if let Some(spec) = &opts.chaos {
            fields.push(("chaos", Value::Str(spec.to_string())));
        }
        if self.attempt > 0 {
            // Only supervised (served) executions carry this, so direct
            // CLI runs keep their exact historical metrics.json shape.
            fields.push((
                "supervision",
                Value::object(vec![(moela_obs::names::JOB_ATTEMPT, Value::U64(self.attempt))]),
            ));
        }
        Some(Value::object(fields))
    }
}

/// How [`drive`] ended.
pub(crate) enum Driven {
    /// The optimizer ran out of work; the result is final.
    Finished(RunResult<Design>, FaultLog),
    /// The cancel hook fired; the state was checkpointed at the step
    /// boundary it parked on.
    Interrupted {
        /// Completed steps at the parking checkpoint.
        completed: u64,
    },
}

/// Writes one checkpoint envelope at the current step boundary.
fn write_checkpoint<S>(
    state: &S,
    rng: &StdRng,
    codec: &ManycoreProblem,
    p: &Persistence,
    elapsed: Duration,
    chaos_ordinal: Option<&dyn Fn() -> u64>,
    telemetry: &mut Telemetry,
) -> Result<(), CliError>
where
    S: Resumable<ManycoreProblem, Solution = Design>,
{
    let mut fields = vec![
        ("format", Value::U64(u64::from(FORMAT_VERSION))),
        ("version", Value::Str(VERSION.to_owned())),
        ("algorithm", Value::Str(p.algorithm.name().to_owned())),
        ("completed", Value::U64(state.completed())),
        ("rng", Value::u64_array(&rng.state())),
        ("elapsed_nanos", Value::U64(elapsed.as_nanos() as u64)),
    ];
    if let Some(ordinal) = chaos_ordinal {
        fields.push(("chaos_ordinal", Value::U64(ordinal())));
    }
    fields.push(("state", state.snapshot_state(codec)));
    let envelope = Value::object(fields);
    {
        let _ckpt = telemetry.obs.span("checkpoint_write");
        p.store.save(state.completed(), &envelope)?;
    }
    // Telemetry is crash-safe at the same cadence as the run itself:
    // everything up to the newest checkpoint survives an abort.
    telemetry.obs.flush();
    Ok(())
}

/// Steps any resumable optimizer to completion, checkpointing every
/// `persistence.every` completed steps. The envelope carries everything
/// the optimizer state does not: format/build versions, the RNG state,
/// accumulated wall-clock time, and (for chaotic runs) the chaos ordinal
/// counter so resume replays the identical fault stream.
///
/// When the cancel hook fires, the optimizer parks at the next step
/// boundary (drawing no RNG) and an unconditional checkpoint is written
/// there — cadence only batches checkpoints for running work, never for
/// a parked run — so the directory resumes byte-identically.
///
/// A latched [`moela_moo::fault::FaultPolicy::Fail`] error surfaces as a
/// [`CliError`] instead of a completed result. On success, the
/// optimizer's fault counters are returned alongside the result for the
/// end-of-run health report.
#[allow(clippy::too_many_arguments)]
fn drive<S>(
    mut state: S,
    rng: &mut StdRng,
    codec: &ManycoreProblem,
    persistence: Option<&Persistence>,
    base_elapsed: Duration,
    chaos_ordinal: Option<&dyn Fn() -> u64>,
    telemetry: &mut Telemetry,
    hooks: &ExecHooks<'_>,
) -> Result<Driven, CliError>
where
    S: Resumable<ManycoreProblem, Solution = Design>,
{
    state.set_obs(telemetry.obs.clone());
    if let Some(token) = hooks.cancel {
        state.set_cancel(token.clone());
    }
    let t0 = Instant::now();
    if let Some(progress) = telemetry.progress.as_mut() {
        // The reporter was built before checkpoint decode/restore;
        // restart its rate clock now that stepping actually begins so
        // resume setup time never deflates evals/s or inflates the ETA.
        progress.begin();
    }
    let mut written = 0u64;
    while state.step(rng) {
        hooks.beat();
        if let Some(progress) = telemetry.progress.as_mut() {
            progress.update(state.completed(), state.evaluations(), state.latest_phv());
        }
        let Some(p) = persistence else { continue };
        if !state.completed().is_multiple_of(p.every) {
            continue;
        }
        let elapsed = base_elapsed + t0.elapsed();
        write_checkpoint(&state, rng, codec, p, elapsed, chaos_ordinal, telemetry)?;
        written += 1;
        if p.crash_after.is_some_and(|n| written >= n) {
            eprintln!("crash injection: aborting after {written} checkpoints");
            std::process::abort();
        }
    }
    if let Some(progress) = telemetry.progress.as_mut() {
        progress.finish(state.completed(), state.evaluations(), state.latest_phv());
    }
    if hooks.cancelled() {
        // Parked at a step boundary: the state drew no RNG for the
        // refused step, so this checkpoint resumes byte-identically.
        if let Some(p) = persistence {
            let elapsed = base_elapsed + t0.elapsed();
            write_checkpoint(&state, rng, codec, p, elapsed, chaos_ordinal, telemetry)?;
        }
        return Ok(Driven::Interrupted { completed: state.completed() });
    }
    if let Some(fault) = state.fault_error() {
        // Transient by classification: a different attempt sees a
        // different slice of the fault stream, so a supervisor may
        // legitimately retry from the last checkpoint.
        return Err(transient(format!(
            "{fault} (policy 'fail' stops on the first fault; rerun with --fault-policy \
             penalize-worst or skip to contain faults and continue)"
        )));
    }
    let log = state.fault_log().copied().unwrap_or_default();
    Ok(Driven::Finished(state.finish(), log))
}

/// Builds the selected optimizer (fresh, or restored from a checkpoint)
/// and drives it to completion — against the bare manycore problem, a
/// memoizing [`CachedProblem`] wrapper (`--eval-cache`, on by default),
/// and/or a seeded [`ChaosProblem`] wrapper when `--chaos` fault
/// injection is configured. Under chaos the cache sits *below* the
/// injector (`Chaos(Cached(problem))`) so faulted evaluations are never
/// admitted and the fault stream consumes ordinals identically with the
/// cache on or off.
///
/// After the run, cache and routing-reuse counters are emitted through
/// the obs pipeline so `metrics.json` records hit rates — write-only
/// telemetry that never feeds back into the optimizer.
pub(crate) fn execute(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    normalizer: &Normalizer,
    persistence: Option<&Persistence>,
    resume: Option<(ResumePoint, StdRng)>,
    telemetry: &mut Telemetry,
    hooks: &ExecHooks<'_>,
) -> Result<Driven, CliError> {
    let cache = (opts.eval_cache > 0).then(|| Arc::new(EvalCache::new(opts.eval_cache)));
    // The problem's routing and delta counters are cumulative over the
    // problem's lifetime, which is longer than this run: the corpus
    // normalizer evaluates 200 designs before `execute` is ever called,
    // and `compare` (or a serve worker reusing a problem) drives several
    // executions over one problem. Snapshot at entry and emit only the
    // difference so every run's metrics.json counts its own work alone.
    let (base_rebuilds, base_routing_hits) = problem.routing_stats();
    let (base_delta_hits, base_delta_fallbacks) = problem.delta_stats();
    let outcome = match (opts.chaos, &cache) {
        (None, None) => execute_on(
            opts,
            problem,
            problem,
            normalizer,
            persistence,
            resume,
            None,
            telemetry,
            hooks,
        ),
        (None, Some(cache)) => {
            let cached = CachedProblem::new(problem, Arc::clone(cache));
            execute_on(
                opts,
                &cached,
                problem,
                normalizer,
                persistence,
                resume,
                None,
                telemetry,
                hooks,
            )
        }
        (Some(spec), cache) => {
            // A chaos spec without its seed can only arrive through a
            // manifest or job spec that bypassed argument validation;
            // refuse it as the user error it is instead of panicking.
            let Some(seed) = opts.chaos_seed else {
                return Err(user_error(
                    "--chaos injects a seeded fault stream and needs --chaos-seed <N> so the \
                     injected faults are reproducible",
                ));
            };
            if let Some(cache) = cache {
                let cached = CachedProblem::new(problem, Arc::clone(cache));
                let chaotic = ChaosProblem::new(cached, spec, seed);
                if let Some((point, _)) = &resume {
                    // Replay the fault stream from the checkpointed
                    // ordinal; a pre-chaos checkpoint starts at zero.
                    chaotic.set_ordinal(point.chaos_ordinal.unwrap_or(0));
                }
                let ordinal = || chaotic.ordinal();
                execute_on(
                    opts,
                    &chaotic,
                    problem,
                    normalizer,
                    persistence,
                    resume,
                    Some(&ordinal),
                    telemetry,
                    hooks,
                )
            } else {
                let chaotic = ChaosProblem::new(problem, spec, seed);
                if let Some((point, _)) = &resume {
                    chaotic.set_ordinal(point.chaos_ordinal.unwrap_or(0));
                }
                let ordinal = || chaotic.ordinal();
                execute_on(
                    opts,
                    &chaotic,
                    problem,
                    normalizer,
                    persistence,
                    resume,
                    Some(&ordinal),
                    telemetry,
                    hooks,
                )
            }
        }
    };
    let (rebuilds, routing_hits) = problem.routing_stats();
    telemetry.obs.counter("routing_rebuilds", rebuilds - base_rebuilds);
    telemetry.obs.counter("routing_hits", routing_hits - base_routing_hits);
    let (delta_hits, delta_fallbacks) = problem.delta_stats();
    telemetry.obs.counter("delta_hits", delta_hits - base_delta_hits);
    telemetry.obs.counter("delta_fallbacks", delta_fallbacks - base_delta_fallbacks);
    if let Some(cache) = &cache {
        let stats = cache.stats();
        telemetry.obs.counter("cache_hits", stats.hits);
        telemetry.obs.counter("cache_misses", stats.misses);
        telemetry.obs.counter("cache_evictions", stats.evictions);
    }
    outcome
}

/// Drives one optimizer over `problem` — possibly a chaos wrapper —
/// while `codec` stays the bare [`ManycoreProblem`] that encodes and
/// decodes checkpointed solutions.
#[allow(clippy::too_many_arguments)]
fn execute_on<P>(
    opts: &RunOptions,
    problem: &P,
    codec: &ManycoreProblem,
    normalizer: &Normalizer,
    persistence: Option<&Persistence>,
    resume: Option<(ResumePoint, StdRng)>,
    chaos_ordinal: Option<&dyn Fn() -> u64>,
    telemetry: &mut Telemetry,
    hooks: &ExecHooks<'_>,
) -> Result<Driven, CliError>
where
    P: Problem<Solution = Design> + Sync,
{
    let (point, mut rng) = match resume {
        Some((p, r)) => (Some(p), r),
        None => (None, StdRng::seed_from_u64(opts.seed)),
    };
    let base_elapsed = point.as_ref().map_or(Duration::ZERO, |p| p.elapsed);
    match opts.algorithm {
        Algorithm::Moela => {
            let config = MoelaConfig::builder()
                .population(opts.population)
                .generations(usize::MAX / 2)
                .trace_normalizer(normalizer.clone())
                .max_evaluations(opts.budget)
                .time_budget(opts.time_guard)
                .threads(opts.threads)
                .fault(opts.fault())
                .build()
                .map_err(|e| fail(format!("invalid MOELA configuration: {e}")))?;
            let moela = Moela::new(config, problem);
            let state = match &point {
                Some(p) => moela.restore(codec, &p.state, p.elapsed)?,
                None => moela.start(&mut rng),
            };
            drive(
                state,
                &mut rng,
                codec,
                persistence,
                base_elapsed,
                chaos_ordinal,
                telemetry,
                hooks,
            )
        }
        Algorithm::Moead => {
            let config = MoeadConfig {
                population: opts.population,
                neighborhood: (opts.population / 5).max(2).min(opts.population),
                generations: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let moead = Moead::new(config, problem);
            let state = match &point {
                Some(p) => moead.restore(codec, &p.state, p.elapsed)?,
                None => moead.start(&mut rng),
            };
            drive(
                state,
                &mut rng,
                codec,
                persistence,
                base_elapsed,
                chaos_ordinal,
                telemetry,
                hooks,
            )
        }
        Algorithm::Moos => {
            let config = MoosConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let moos = Moos::new(config, problem);
            let state = match &point {
                Some(p) => moos.restore(codec, &p.state, p.elapsed)?,
                None => moos.start(&mut rng),
            };
            drive(
                state,
                &mut rng,
                codec,
                persistence,
                base_elapsed,
                chaos_ordinal,
                telemetry,
                hooks,
            )
        }
        Algorithm::MooStage => {
            let config = MooStageConfig {
                episodes: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let stage = MooStage::new(config, problem);
            let state = match &point {
                Some(p) => stage.restore(codec, &p.state, p.elapsed)?,
                None => stage.start(&mut rng),
            };
            drive(
                state,
                &mut rng,
                codec,
                persistence,
                base_elapsed,
                chaos_ordinal,
                telemetry,
                hooks,
            )
        }
        Algorithm::Nsga2 => {
            let config = Nsga2Config {
                population: opts.population,
                generations: usize::MAX / 2,
                trace_normalizer: Some(normalizer.clone()),
                max_evaluations: Some(opts.budget),
                time_budget: Some(opts.time_guard),
                threads: opts.threads,
                fault: opts.fault(),
            };
            let nsga2 = Nsga2::new(config, problem);
            let state = match &point {
                Some(p) => nsga2.restore(codec, &p.state, p.elapsed)?,
                None => nsga2.start(&mut rng),
            };
            drive(
                state,
                &mut rng,
                codec,
                persistence,
                base_elapsed,
                chaos_ordinal,
                telemetry,
                hooks,
            )
        }
        Algorithm::Random => {
            let config = RandomSearchConfig {
                samples: opts.budget,
                trace_normalizer: Some(normalizer.clone()),
                threads: opts.threads,
                fault: opts.fault(),
                ..Default::default()
            };
            let state = match &point {
                Some(p) => random_search_restore(&config, problem, codec, &p.state, p.elapsed)?,
                None => random_search_start(&config, problem),
            };
            drive(
                state,
                &mut rng,
                codec,
                persistence,
                base_elapsed,
                chaos_ordinal,
                telemetry,
                hooks,
            )
        }
    }
}

/// The manifest written into every run directory: enough to rebuild the
/// exact run configuration on resume, plus the fitted normalizer so
/// resume skips the 200-design corpus fit.
pub(crate) fn manifest_value(opts: &RunOptions, normalizer: &Normalizer) -> Value {
    let mut fields = vec![
        ("format", Value::U64(u64::from(FORMAT_VERSION))),
        ("version", Value::Str(VERSION.to_owned())),
        ("algorithm", Value::Str(opts.algorithm.name().to_owned())),
        ("app", Value::Str(opts.app.name().to_owned())),
        ("objectives", Value::U64(opts.set.count() as u64)),
        ("budget", Value::U64(opts.budget)),
        ("population", Value::U64(opts.population as u64)),
        ("seed", Value::U64(opts.seed)),
        ("threads", Value::U64(opts.threads as u64)),
        ("time_guard_secs", Value::U64(opts.time_guard.as_secs())),
        ("checkpoint_every", Value::U64(opts.checkpoint_every)),
        ("fault_policy", Value::Str(opts.fault_policy.name().to_owned())),
        ("eval_retries", Value::U64(u64::from(opts.eval_retries))),
        ("eval_cache", Value::U64(opts.eval_cache as u64)),
        ("eval_delta", Value::Bool(opts.eval_delta)),
    ];
    if let Some(spec) = &opts.chaos {
        fields.push(("chaos", Value::Str(spec.to_string())));
    }
    if let Some(seed) = opts.chaos_seed {
        fields.push(("chaos_seed", Value::U64(seed)));
    }
    fields.push(("normalizer", normalizer.snapshot()));
    Value::object(fields)
}

/// Rebuilds the run configuration (and the fitted normalizer) from a
/// manifest, refusing manifests from an incompatible format version.
pub(crate) fn options_from_manifest(m: &Value) -> Result<(RunOptions, Normalizer), CliError> {
    let format = m.field("format")?.as_u64()?;
    if format != u64::from(FORMAT_VERSION) {
        return Err(fail(format!(
            "run directory uses checkpoint format {format}, but this build supports only \
             format {FORMAT_VERSION}"
        )));
    }
    let app_name = m.field("app")?.as_str()?;
    let app = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(app_name))
        .ok_or_else(|| fail(format!("manifest names unknown app '{app_name}'")))?;
    let set = match m.field("objectives")?.as_u64()? {
        3 => ObjectiveSet::Three,
        4 => ObjectiveSet::Four,
        5 => ObjectiveSet::Five,
        other => return Err(fail(format!("manifest names unknown objective stack '{other}'"))),
    };
    let algorithm = Algorithm::parse(m.field("algorithm")?.as_str()?).map_err(fail)?;
    // Fault/chaos fields are absent from manifests written before fault
    // containment existed; default to the pre-containment behavior.
    let fault_policy = match m.field_opt("fault_policy") {
        Some(v) => FaultPolicy::parse(v.as_str()?).map_err(fail)?,
        None => FaultPolicy::default(),
    };
    let eval_retries = match m.field_opt("eval_retries") {
        Some(v) => v.as_u64()? as u32,
        None => 0,
    };
    // Manifests written before the evaluation cache existed resume with
    // today's default — results are bit-identical at any capacity.
    let eval_cache = match m.field_opt("eval_cache") {
        Some(v) => v.as_usize()?,
        None => RunOptions::default().eval_cache,
    };
    // Manifests written before delta evaluation existed resume with
    // today's default — the fast path is bit-identical to full
    // evaluation, so the choice never changes resumed artifacts.
    let eval_delta = match m.field_opt("eval_delta") {
        Some(v) => v.as_bool()?,
        None => RunOptions::default().eval_delta,
    };
    let chaos = match m.field_opt("chaos") {
        Some(v) => Some(ChaosSpec::parse(v.as_str()?).map_err(fail)?),
        None => None,
    };
    let chaos_seed = match m.field_opt("chaos_seed") {
        Some(v) => Some(v.as_u64()?),
        None => None,
    };
    if chaos.is_some() && chaos_seed.is_none() {
        // The same contradiction `--chaos` without `--chaos-seed` is on
        // the command line: a configuration the user must fix (exit 2).
        return Err(user_error("manifest configures --chaos but records no chaos seed"));
    }
    let opts = RunOptions {
        app,
        set,
        algorithm,
        budget: m.field("budget")?.as_u64()?,
        population: m.field("population")?.as_usize()?,
        seed: m.field("seed")?.as_u64()?,
        threads: m.field("threads")?.as_usize()?,
        time_guard: Duration::from_secs(m.field("time_guard_secs")?.as_u64()?),
        checkpoint_every: m.field("checkpoint_every")?.as_u64()?,
        fault_policy,
        eval_retries,
        eval_cache,
        eval_delta,
        chaos,
        chaos_seed,
        ..Default::default()
    };
    let normalizer = Normalizer::restore(m.field("normalizer")?)?;
    if normalizer.len() != opts.set.count() {
        return Err(fail("manifest normalizer does not match the objective stack"));
    }
    Ok((opts, normalizer))
}

/// The deterministic convergence trace (no wall-clock column), used for
/// the run-dir `trace.csv` so kill + resume reproduces it byte for byte.
pub(crate) fn deterministic_trace_csv(result: &RunResult<Design>) -> String {
    let mut out = String::from("generation,evaluations,phv\n");
    for p in &result.trace {
        out.push_str(&format!("{},{},{:.9}\n", p.generation, p.evaluations, p.phv));
    }
    out
}

/// The machine-readable twin of `trace.csv`: the same deterministic
/// points (no wall-clock), so consumers never reparse CSV.
pub(crate) fn trace_json_value(result: &RunResult<Design>) -> Value {
    let points = result
        .trace
        .iter()
        .map(|p| {
            Value::object(vec![
                ("generation", Value::U64(p.generation as u64)),
                ("evaluations", Value::U64(p.evaluations)),
                ("phv", Value::F64(p.phv)),
            ])
        })
        .collect();
    Value::object(vec![("points", Value::Array(points))])
}

/// The machine-readable twin of `front.csv`: objective vectors in the
/// same row order.
pub(crate) fn front_json_value(result: &RunResult<Design>) -> Value {
    let rows = result
        .front_objectives()
        .into_iter()
        .map(|row| Value::Array(row.into_iter().map(Value::F64).collect()))
        .collect();
    Value::object(vec![("objectives", Value::Array(rows))])
}

fn write_outputs(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    result: &RunResult<Design>,
    reporter: &Reporter,
) -> Result<(), CliError> {
    if let Some(path) = &opts.trace_csv {
        std::fs::write(path, result.trace_csv())
            .map_err(|e| fail(format!("cannot write trace CSV '{path}': {e}")))?;
        reporter.info(&format!("trace written to {path}"));
    }
    if let Some(path) = &opts.front_csv {
        std::fs::write(path, result.front_csv())
            .map_err(|e| fail(format!("cannot write front CSV '{path}': {e}")))?;
        reporter.info(&format!("front written to {path}"));
    }
    if let Some(path) = &opts.dot {
        // "Best" = lowest first objective on the front.
        if let Some((design, _)) =
            result.front().into_iter().min_by(|a, b| a.1[0].total_cmp(&b.1[0]))
        {
            let dot = viz::to_dot(problem.config().dims(), problem.config().pe_mix(), &design);
            std::fs::write(path, dot)
                .map_err(|e| fail(format!("cannot write DOT file '{path}': {e}")))?;
            reporter.info(&format!("best design written to {path} (render with `neato -Tpng`)"));
        }
    }
    Ok(())
}

/// Prints the fault-containment health line. Stays silent for clean runs
/// without chaos so the happy-path output is unchanged.
pub(crate) fn print_health(opts: &RunOptions, log: &FaultLog, reporter: &Reporter) {
    if log.is_clean() && opts.chaos.is_none() {
        return;
    }
    reporter.info(&format!(
        "evaluation health: {} faults contained ({} panics, {} non-finite, {} wrong-arity); \
         {} retries ({} recovered), {} penalized, {} skipped [policy {}]",
        log.faults(),
        log.panics,
        log.non_finite,
        log.wrong_arity,
        log.retries,
        log.recovered,
        log.penalized,
        log.skipped,
        opts.fault_policy.name(),
    ));
}

/// The small machine-readable completion report a served job carries in
/// its `job.json` and `GET /jobs/{id}` response.
fn summary_value(result: &RunResult<Design>, normalizer: &Normalizer) -> Value {
    Value::object(vec![
        ("evaluations", Value::U64(result.evaluations)),
        ("phv", Value::F64(result.phv(normalizer))),
        ("front_size", Value::U64(result.front().len() as u64)),
    ])
}

/// Prints the result summary and writes every requested artifact (the
/// run-dir CSVs and their JSON twins, the metrics report — which
/// carries the fault counters the retired `health.json` used to hold —
/// and the ad-hoc output flags).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_run(
    opts: &RunOptions,
    problem: &ManycoreProblem,
    normalizer: &Normalizer,
    run_store: Option<&RunStore>,
    result: &RunResult<Design>,
    log: &FaultLog,
    telemetry: &mut Telemetry,
    resumed: bool,
    base_evals: u64,
) -> Result<(), CliError> {
    let reporter = telemetry.reporter;
    reporter.info(&format!(
        "finished: {} evaluations in {:.2?}; PHV {:.4}; front {} designs",
        result.evaluations,
        result.elapsed,
        result.phv(normalizer),
        result.front().len()
    ));
    print_health(opts, log, &reporter);
    let mut front = result.front_objectives();
    front.sort_by(|a, b| a[0].total_cmp(&b[0]));
    for (i, objs) in front.iter().take(15).enumerate() {
        let cells: Vec<String> = objs.iter().map(|v| format!("{v:>12.3}")).collect();
        reporter.info(&format!("  #{:<3} {}", i, cells.join(" ")));
    }
    if front.len() > 15 {
        reporter.info(&format!("  … {} more", front.len() - 15));
    }
    if let Some(store) = run_store {
        store.write_trace(&deterministic_trace_csv(result))?;
        store.write_front(&result.front_csv())?;
        store.write_trace_json(&trace_json_value(result))?;
        store.write_front_json(&front_json_value(result))?;
        telemetry.obs.flush();
        if let Some(metrics) = telemetry.metrics_value(opts, log, resumed, base_evals) {
            store.write_metrics(&metrics)?;
        }
        reporter.info(&format!("run artifacts written to {}", store.root().display()));
    }
    write_outputs(opts, problem, result, &reporter)
}

/// Runs a fresh optimizer per `opts` (the `moela-dse run` body, also
/// the server's fresh-job path).
pub(crate) fn run(opts: &RunOptions, hooks: &ExecHooks<'_>) -> Result<RunStatus, CliError> {
    let reporter = Reporter::new(opts.log_level);
    let problem = build_problem(opts)?;
    let normalizer = corpus_normalizer(&problem, opts.seed);
    reporter.info(&format!(
        "{} on {} ({}), budget {} evaluations, seed {}",
        opts.algorithm.name(),
        opts.app,
        opts.set,
        opts.budget,
        opts.seed
    ));
    if let Some(spec) = &opts.chaos {
        // The seed may legitimately be absent here (a hand-written job
        // spec); `execute` turns that into the structured exit-2 error,
        // so this log line must not assume it.
        if let Some(chaos_seed) = opts.chaos_seed {
            reporter.info(&format!(
                "chaos injection: {spec} (chaos seed {chaos_seed}), fault policy {}, {} retries",
                opts.fault_policy.name(),
                opts.eval_retries
            ));
        }
    }
    let run_store = match &opts.run_dir {
        Some(dir) => {
            let store = RunStore::create(dir)?;
            store.write_manifest(&manifest_value(opts, &normalizer))?;
            Some(store)
        }
        None => None,
    };
    let persistence = match &run_store {
        Some(store) => Some(Persistence {
            store: store.checkpoints()?,
            every: opts.checkpoint_every,
            crash_after: opts.crash_after_checkpoints,
            algorithm: opts.algorithm,
        }),
        None => None,
    };
    let mut telemetry = Telemetry::new(opts, run_store.as_ref(), 0);
    telemetry.attempt = hooks.attempt;
    telemetry.publish_live(hooks);
    telemetry.obs.marker("run_start", opts.algorithm.name());
    let driven =
        execute(opts, &problem, &normalizer, persistence.as_ref(), None, &mut telemetry, hooks)?;
    match driven {
        Driven::Finished(result, log) => {
            finish_run(
                opts,
                &problem,
                &normalizer,
                run_store.as_ref(),
                &result,
                &log,
                &mut telemetry,
                false,
                0,
            )?;
            Ok(RunStatus::Completed { summary: summary_value(&result, &normalizer) })
        }
        Driven::Interrupted { completed } => {
            reporter.info(&format!("interrupted at step {completed}; checkpoint written"));
            Ok(RunStatus::Interrupted)
        }
    }
}

/// Per-invocation overrides `moela-dse resume` accepts on top of the
/// stored manifest.
#[derive(Clone, Debug, Default)]
pub(crate) struct ResumeOverrides {
    pub(crate) threads: Option<usize>,
    pub(crate) checkpoint_every: Option<u64>,
    pub(crate) crash_after_checkpoints: Option<u64>,
    pub(crate) progress: bool,
    pub(crate) log_level: Option<moela_obs::LogLevel>,
}

/// Resumes an interrupted run directory from its newest intact
/// checkpoint (the `moela-dse resume` body, also the server's
/// rediscovered-job path).
pub(crate) fn resume(
    dir: &str,
    overrides: &ResumeOverrides,
    hooks: &ExecHooks<'_>,
) -> Result<RunStatus, CliError> {
    let store = RunStore::open(dir)?;
    let manifest = store.read_manifest()?;
    let (mut opts, normalizer) = options_from_manifest(&manifest)?;
    if let Some(t) = overrides.threads {
        opts.threads = t;
    }
    if let Some(e) = overrides.checkpoint_every {
        if e == 0 {
            return Err(fail("--checkpoint-every must be positive"));
        }
        opts.checkpoint_every = e;
    }
    opts.crash_after_checkpoints = overrides.crash_after_checkpoints;
    opts.run_dir = Some(dir.to_owned());
    opts.progress = overrides.progress;
    if let Some(level) = overrides.log_level {
        opts.log_level = level;
    }
    let reporter = Reporter::new(opts.log_level);

    let checkpoints = store.checkpoints()?;
    let Some((seq, envelope, warnings)) = checkpoints.load_latest()? else {
        return Err(fail(format!(
            "{} holds no checkpoints to resume (was the run started with --checkpoint-every?)",
            store.root().display()
        )));
    };
    for w in warnings {
        eprintln!("warning: skipped corrupt checkpoint: {w}");
    }
    let format = envelope.field("format")?.as_u64()?;
    if format != u64::from(FORMAT_VERSION) {
        return Err(fail(format!(
            "checkpoint {seq} uses format {format}, but this build supports only format \
             {FORMAT_VERSION}"
        )));
    }
    let algorithm = envelope.field("algorithm")?.as_str()?;
    if algorithm != opts.algorithm.name() {
        return Err(fail(format!(
            "checkpoint {seq} was written by '{algorithm}' but the manifest configures '{}'",
            opts.algorithm.name()
        )));
    }
    let rng_words: [u64; 4] = envelope
        .field("rng")?
        .to_u64_vec()?
        .try_into()
        .map_err(|_| fail(format!("checkpoint {seq} has a malformed RNG state")))?;
    let rng = StdRng::from_state(rng_words);
    let elapsed = Duration::from_nanos(envelope.field("elapsed_nanos")?.as_u64()?);
    let chaos_ordinal = match envelope.field_opt("chaos_ordinal") {
        Some(v) => Some(v.as_u64()?),
        None => None,
    };
    let point = ResumePoint { state: envelope.field("state")?.clone(), elapsed, chaos_ordinal };

    let problem = build_problem(&opts)?;
    reporter.info(&format!(
        "resuming {} on {} ({}) from checkpoint {} in {}",
        opts.algorithm.name(),
        opts.app,
        opts.set,
        seq,
        store.root().display()
    ));
    let persistence = Persistence {
        store: checkpoints,
        every: opts.checkpoint_every,
        crash_after: opts.crash_after_checkpoints,
        algorithm: opts.algorithm,
    };
    // Progress rates and the metrics throughput window count only the
    // work done after this resume; events.jsonl appends to the prior
    // process's log rather than truncating it.
    let base_evals =
        point.state.field_opt("evaluations").and_then(|v| v.as_u64().ok()).unwrap_or_default();
    let mut telemetry = Telemetry::new(&opts, Some(&store), base_evals);
    telemetry.attempt = hooks.attempt;
    telemetry.publish_live(hooks);
    telemetry.obs.marker("resume", &format!("checkpoint {seq}"));
    let driven = execute(
        &opts,
        &problem,
        &normalizer,
        Some(&persistence),
        Some((point, rng)),
        &mut telemetry,
        hooks,
    )?;
    match driven {
        Driven::Finished(result, log) => {
            finish_run(
                &opts,
                &problem,
                &normalizer,
                Some(&store),
                &result,
                &log,
                &mut telemetry,
                true,
                base_evals,
            )?;
            Ok(RunStatus::Completed { summary: summary_value(&result, &normalizer) })
        }
        Driven::Interrupted { completed } => {
            reporter.info(&format!("interrupted at step {completed}; checkpoint written"));
            Ok(RunStatus::Interrupted)
        }
    }
}
