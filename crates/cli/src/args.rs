//! Argument parsing for `moela-dse` (plain `std::env`, no dependencies).

use std::time::Duration;

use moela_manycore::ObjectiveSet;
use moela_moo::fault::{FaultConfig, FaultPolicy};
use moela_moo::{ChaosSpec, DEFAULT_EVAL_CACHE_CAPACITY};
use moela_obs::LogLevel;
use moela_traffic::Benchmark;

/// A failed parse. `code` is the process exit code: `1` for malformed
/// syntax (unknown flags, bad values), `2` for structurally valid but
/// contradictory flag combinations, following the common CLI convention
/// of reserving 2 for usage errors the user must resolve.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct ArgsError {
    /// Human-readable description naming the offending flag or value.
    pub message: String,
    /// Process exit code (1 = malformed, 2 = contradictory combination).
    pub code: u8,
}

impl ArgsError {
    fn syntax(message: impl Into<String>) -> Self {
        ArgsError { message: message.into(), code: 1 }
    }

    fn contradiction(message: impl Into<String>) -> Self {
        ArgsError { message: message.into(), code: 2 }
    }
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for ArgsError {
    fn from(message: String) -> Self {
        ArgsError::syntax(message)
    }
}

impl From<&str> for ArgsError {
    fn from(message: &str) -> Self {
        ArgsError::syntax(message)
    }
}

/// Which optimizer to run.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Algorithm {
    /// The hybrid evolutionary/learning optimizer (the paper's MOELA).
    Moela,
    /// MOEA/D.
    Moead,
    /// MOOS.
    Moos,
    /// MOO-STAGE.
    MooStage,
    /// NSGA-II.
    Nsga2,
    /// Uniform random search.
    Random,
}

impl Algorithm {
    /// All selectable algorithms with their CLI names.
    pub const ALL: [(Algorithm, &'static str); 6] = [
        (Algorithm::Moela, "moela"),
        (Algorithm::Moead, "moead"),
        (Algorithm::Moos, "moos"),
        (Algorithm::MooStage, "moo-stage"),
        (Algorithm::Nsga2, "nsga2"),
        (Algorithm::Random, "random"),
    ];

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Self::ALL
            .iter()
            .find(|(_, n)| name.eq_ignore_ascii_case(n))
            .map(|(a, _)| *a)
            .ok_or_else(|| format!("unknown algorithm '{name}' (try: moela, moead, moos, moo-stage, nsga2, random)"))
    }

    /// The display name.
    pub fn name(&self) -> &'static str {
        Self::ALL.iter().find(|(a, _)| a == self).map(|(_, n)| *n).expect("every variant is listed")
    }
}

/// Options shared by the run-like subcommands.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOptions {
    /// Application workload.
    pub app: Benchmark,
    /// Objective stack.
    pub set: ObjectiveSet,
    /// Optimizer selection (`run` uses one; `compare` ignores it).
    pub algorithm: Algorithm,
    /// Objective-evaluation budget.
    pub budget: u64,
    /// Population size for population-based algorithms.
    pub population: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for batch objective evaluation (`0` = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Wall-clock guard.
    pub time_guard: Duration,
    /// Optional path to write the PHV trace CSV to.
    pub trace_csv: Option<String>,
    /// Optional path to write the final front CSV to.
    pub front_csv: Option<String>,
    /// Optional path to write the best design's Graphviz DOT rendering to.
    pub dot: Option<String>,
    /// Optional run directory (manifest + checkpoints + result CSVs).
    pub run_dir: Option<String>,
    /// Checkpoint cadence in optimizer steps (used with `run_dir`).
    pub checkpoint_every: u64,
    /// Abort the process after writing this many checkpoints (crash
    /// injection for resume testing).
    pub crash_after_checkpoints: Option<u64>,
    /// What to do with a candidate whose evaluation faults (panics,
    /// non-finite or malformed objectives).
    pub fault_policy: FaultPolicy,
    /// Re-evaluation attempts per faulted candidate before the policy
    /// applies.
    pub eval_retries: u32,
    /// Evaluation-cache capacity in memoized designs (`0` = caching
    /// off, including topology-keyed routing reuse). Results are
    /// bit-identical for every value.
    pub eval_cache: usize,
    /// Incremental move evaluation: score a neighbor by patching the
    /// base design's cached evaluation state instead of re-evaluating
    /// from scratch, falling back to full evaluation whenever a move
    /// cannot be scored exactly. Results are bit-identical on or off.
    pub eval_delta: bool,
    /// Optional seeded fault injection (chaos testing).
    pub chaos: Option<ChaosSpec>,
    /// Seed for the chaos fault stream (required with `--chaos` so the
    /// injected faults are reproducible).
    pub chaos_seed: Option<u64>,
    /// Paint a rate-limited live progress line on stderr.
    pub progress: bool,
    /// Verbosity of human-facing status output (`quiet` = artifacts
    /// only; warnings always reach stderr).
    pub log_level: LogLevel,
}

impl RunOptions {
    /// The fault-containment configuration handed to every optimizer.
    pub fn fault(&self) -> FaultConfig {
        FaultConfig { policy: self.fault_policy, retries: self.eval_retries }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            app: Benchmark::Bfs,
            set: ObjectiveSet::Three,
            algorithm: Algorithm::Moela,
            budget: 4_000,
            population: 24,
            seed: 11,
            threads: 1,
            time_guard: Duration::from_secs(600),
            trace_csv: None,
            front_csv: None,
            dot: None,
            run_dir: None,
            checkpoint_every: 1,
            crash_after_checkpoints: None,
            fault_policy: FaultPolicy::default(),
            eval_retries: 0,
            eval_cache: DEFAULT_EVAL_CACHE_CAPACITY,
            eval_delta: true,
            chaos: None,
            chaos_seed: None,
            progress: false,
            log_level: LogLevel::Info,
        }
    }
}

/// Options for the embedded DSE job server.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Concurrent optimizer-run workers.
    pub workers: usize,
    /// Bounded submission-queue depth; a full queue answers 429.
    pub queue_depth: usize,
    /// Directory that holds one run store per job (also where restart
    /// rediscovers interrupted jobs).
    pub run_root: String,
    /// Checkpoint cadence applied to served jobs that do not set one.
    pub checkpoint_every: u64,
    /// Optional file the server writes its bound address to (for
    /// scripts using port 0).
    pub addr_file: Option<String>,
    /// Attempt budget per job before quarantine (counts the first try).
    pub max_attempts: u64,
    /// First retry backoff in milliseconds (doubles per attempt, plus
    /// deterministic jitter).
    pub retry_base_ms: u64,
    /// Seconds without a step heartbeat before a running job is marked
    /// stalled and interrupted.
    pub stall_timeout_s: u64,
    /// Extra seconds a stalled job may ignore its interrupt before the
    /// worker is abandoned and the job quarantined.
    pub stall_grace_s: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7774".to_owned(),
            workers: 2,
            queue_depth: 16,
            run_root: String::new(),
            checkpoint_every: 1,
            addr_file: None,
            max_attempts: 3,
            retry_base_ms: 1_000,
            stall_timeout_s: 30,
            stall_grace_s: 60,
        }
    }
}

/// The parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run one optimizer and report its front.
    Run(RunOptions),
    /// Run every optimizer at the same budget and compare PHV.
    Compare(RunOptions),
    /// Describe an application's synthesized workload.
    Info {
        /// Application to describe.
        app: Benchmark,
        /// Synthesis seed.
        seed: u64,
    },
    /// Simulate a random design at a given load factor.
    Simulate {
        /// Run options (app/seed reused).
        options: RunOptions,
        /// Injection-rate multiplier.
        load_factor: f64,
        /// Measured cycles.
        cycles: u64,
    },
    /// Analyze a finished run directory: write `report.json` and the
    /// Perfetto-viewable `trace.chrome.json`, print a summary.
    Report {
        /// The run directory (must hold a manifest and a finished run).
        dir: String,
        /// Verbosity of human-facing status output.
        log_level: LogLevel,
    },
    /// Compare two finished runs (or benchmark snapshots) and fail on
    /// regression — the CI bench gate.
    CompareRuns {
        /// Baseline run directory or `BENCH_*.json` snapshot.
        baseline: String,
        /// Candidate run directory or `BENCH_*.json` snapshot.
        candidate: String,
        /// Maximum tolerated relative final-PHV drop.
        max_phv_regression: f64,
        /// Maximum tolerated relative evals/s drop.
        max_rate_regression: f64,
    },
    /// Resume an interrupted run from its run directory.
    Resume {
        /// The run directory (must hold a manifest and checkpoints).
        dir: String,
        /// Optional worker-thread override (results are identical).
        threads: Option<usize>,
        /// Optional checkpoint-cadence override.
        checkpoint_every: Option<u64>,
        /// Crash injection for resume testing.
        crash_after_checkpoints: Option<u64>,
        /// Paint a rate-limited live progress line on stderr.
        progress: bool,
        /// Verbosity of human-facing status output.
        log_level: LogLevel,
    },
    /// Serve DSE jobs over HTTP with bounded queueing and graceful drain.
    Serve(ServeOptions),
    /// Print the build version.
    Version,
    /// Print usage.
    Help,
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns an [`ArgsError`] naming the offending flag or value, with
/// exit code 1 for malformed syntax and 2 for contradictory flag
/// combinations.
pub fn parse(args: &[String]) -> Result<Command, ArgsError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "version" | "--version" | "-V" => Ok(Command::Version),
        "resume" => parse_resume(rest),
        "serve" => parse_serve(rest),
        "report" => parse_report(rest),
        "run" => Ok(Command::Run(parse_run_options(rest)?)),
        // Two forms share the name: `compare [run flags]` re-runs every
        // algorithm at one budget, while `compare <A> <B>` diffs two
        // existing runs/snapshots. A leading positional selects the
        // second form.
        "compare" if rest.first().is_some_and(|a| !a.starts_with("--")) => parse_compare_runs(rest),
        "compare" => Ok(Command::Compare(parse_run_options(rest)?)),
        "info" => {
            let opts = parse_run_options(rest)?;
            Ok(Command::Info { app: opts.app, seed: opts.seed })
        }
        "simulate" => {
            let mut load_factor = 1.0;
            let mut cycles = 50_000;
            let mut filtered = Vec::new();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--load" => {
                        load_factor = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--load needs a number")?;
                    }
                    "--cycles" => {
                        cycles = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--cycles needs an integer")?;
                    }
                    other => {
                        filtered.push(other.to_owned());
                        if let Some(v) = it.next() {
                            filtered.push(v.clone());
                        }
                    }
                }
            }
            Ok(Command::Simulate { options: parse_run_options(&filtered)?, load_factor, cycles })
        }
        other => Err(ArgsError::syntax(format!(
            "unknown subcommand '{other}' (try: run, resume, serve, compare, info, simulate, help)"
        ))),
    }
}

fn parse_resume(args: &[String]) -> Result<Command, ArgsError> {
    let mut dir = None;
    let mut threads = None;
    let mut checkpoint_every = None;
    let mut crash_after_checkpoints = None;
    let mut progress = false;
    let mut log_level = LogLevel::Info;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("flag {arg} needs a value"));
        match arg.as_str() {
            "--progress" => progress = true,
            "--log-level" => {
                let name = value()?;
                log_level = LogLevel::parse(name).ok_or_else(|| {
                    format!("--log-level must be quiet, info, or debug (got {name})")
                })?;
            }
            "--threads" => {
                threads = Some(value()?.parse().map_err(|_| "--threads needs an integer")?);
            }
            "--checkpoint-every" => {
                checkpoint_every =
                    Some(value()?.parse().map_err(|_| "--checkpoint-every needs an integer")?);
            }
            "--crash-after-checkpoints" => {
                crash_after_checkpoints = Some(
                    value()?.parse().map_err(|_| "--crash-after-checkpoints needs an integer")?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(ArgsError::syntax(format!("unknown flag '{flag}'")))
            }
            positional if dir.is_none() => dir = Some(positional.to_owned()),
            extra => return Err(ArgsError::syntax(format!("unexpected argument '{extra}'"))),
        }
    }
    let dir = dir.ok_or("resume needs a run directory (moela-dse resume <DIR>)")?;
    Ok(Command::Resume {
        dir,
        threads,
        checkpoint_every,
        crash_after_checkpoints,
        progress,
        log_level,
    })
}

fn parse_report(args: &[String]) -> Result<Command, ArgsError> {
    let mut dir = None;
    let mut log_level = LogLevel::Info;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log-level" => {
                let name = it.next().ok_or("flag --log-level needs a value")?;
                log_level = LogLevel::parse(name).ok_or_else(|| {
                    format!("--log-level must be quiet, info, or debug (got {name})")
                })?;
            }
            flag if flag.starts_with("--") => {
                return Err(ArgsError::syntax(format!("unknown flag '{flag}'")))
            }
            positional if dir.is_none() => dir = Some(positional.to_owned()),
            extra => return Err(ArgsError::syntax(format!("unexpected argument '{extra}'"))),
        }
    }
    let dir = dir.ok_or("report needs a run directory (moela-dse report <DIR>)")?;
    Ok(Command::Report { dir, log_level })
}

fn parse_compare_runs(args: &[String]) -> Result<Command, ArgsError> {
    let mut paths: Vec<String> = Vec::new();
    let mut max_phv_regression = 0.01;
    let mut max_rate_regression = 0.2;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("flag {arg} needs a value"));
        match arg.as_str() {
            "--max-phv-regression" => {
                max_phv_regression =
                    value()?.parse().map_err(|_| "--max-phv-regression needs a number")?;
            }
            "--max-rate-regression" => {
                max_rate_regression =
                    value()?.parse().map_err(|_| "--max-rate-regression needs a number")?;
            }
            flag if flag.starts_with("--") => {
                return Err(ArgsError::syntax(format!("unknown flag '{flag}'")))
            }
            positional if paths.len() < 2 => paths.push(positional.to_owned()),
            extra => return Err(ArgsError::syntax(format!("unexpected argument '{extra}'"))),
        }
    }
    if !(0.0..=1.0).contains(&max_phv_regression) || !(0.0..=1.0).contains(&max_rate_regression) {
        return Err(ArgsError::syntax("regression thresholds must be between 0 and 1"));
    }
    let mut drain = paths.drain(..);
    match (drain.next(), drain.next()) {
        (Some(baseline), Some(candidate)) => Ok(Command::CompareRuns {
            baseline,
            candidate,
            max_phv_regression,
            max_rate_regression,
        }),
        _ => Err(ArgsError::syntax(
            "compare needs two paths (moela-dse compare <BASELINE> <CANDIDATE>, each a run \
             directory or a BENCH_*.json snapshot)",
        )),
    }
}

fn parse_serve(args: &[String]) -> Result<Command, ArgsError> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = value()?,
            "--workers" => {
                opts.workers = value()?.parse().map_err(|_| "--workers needs an integer")?;
            }
            "--queue-depth" => {
                opts.queue_depth =
                    value()?.parse().map_err(|_| "--queue-depth needs an integer")?;
            }
            "--run-root" => opts.run_root = value()?,
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    value()?.parse().map_err(|_| "--checkpoint-every needs an integer")?;
            }
            "--addr-file" => opts.addr_file = Some(value()?),
            "--max-attempts" => {
                opts.max_attempts =
                    value()?.parse().map_err(|_| "--max-attempts needs an integer")?;
            }
            "--retry-base-ms" => {
                opts.retry_base_ms =
                    value()?.parse().map_err(|_| "--retry-base-ms needs an integer")?;
            }
            "--stall-timeout-s" => {
                opts.stall_timeout_s =
                    value()?.parse().map_err(|_| "--stall-timeout-s needs an integer")?;
            }
            "--stall-grace-s" => {
                opts.stall_grace_s =
                    value()?.parse().map_err(|_| "--stall-grace-s needs an integer")?;
            }
            other => return Err(ArgsError::syntax(format!("unknown flag '{other}'"))),
        }
    }
    if opts.run_root.is_empty() {
        return Err(ArgsError::syntax("serve needs --run-root <DIR> to store job run directories"));
    }
    if opts.workers == 0 {
        return Err(ArgsError::syntax("--workers must be at least 1"));
    }
    if opts.queue_depth == 0 {
        return Err(ArgsError::syntax("--queue-depth must be at least 1"));
    }
    if opts.checkpoint_every == 0 {
        return Err(ArgsError::syntax("--checkpoint-every must be positive"));
    }
    if opts.max_attempts == 0 {
        return Err(ArgsError::syntax("--max-attempts must be at least 1 (the first try counts)"));
    }
    if opts.retry_base_ms == 0 {
        return Err(ArgsError::syntax("--retry-base-ms must be positive"));
    }
    if opts.stall_timeout_s == 0 {
        return Err(ArgsError::syntax("--stall-timeout-s must be positive"));
    }
    Ok(Command::Serve(opts))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, ArgsError> {
    let mut opts = RunOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--app" => {
                let name = value()?;
                opts.app = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown app '{name}'"))?;
            }
            "--objectives" => {
                opts.set = match value()?.as_str() {
                    "3" => ObjectiveSet::Three,
                    "4" => ObjectiveSet::Four,
                    "5" => ObjectiveSet::Five,
                    other => {
                        return Err(ArgsError::syntax(format!(
                            "--objectives must be 3, 4, or 5 (got {other})"
                        )))
                    }
                };
            }
            "--algorithm" => opts.algorithm = Algorithm::parse(&value()?)?,
            "--budget" => {
                opts.budget = value()?.parse().map_err(|_| "--budget needs an integer")?;
            }
            "--population" => {
                opts.population = value()?.parse().map_err(|_| "--population needs an integer")?;
            }
            "--seed" => opts.seed = value()?.parse().map_err(|_| "--seed needs an integer")?,
            "--threads" => {
                opts.threads = value()?.parse().map_err(|_| "--threads needs an integer")?;
            }
            "--time-guard-secs" => {
                opts.time_guard = Duration::from_secs(
                    value()?.parse().map_err(|_| "--time-guard-secs needs an integer")?,
                );
            }
            "--trace-csv" => opts.trace_csv = Some(value()?),
            "--front-csv" => opts.front_csv = Some(value()?),
            "--dot" => opts.dot = Some(value()?),
            "--run-dir" => opts.run_dir = Some(value()?),
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    value()?.parse().map_err(|_| "--checkpoint-every needs an integer")?;
            }
            "--crash-after-checkpoints" => {
                opts.crash_after_checkpoints = Some(
                    value()?.parse().map_err(|_| "--crash-after-checkpoints needs an integer")?,
                );
            }
            "--fault-policy" => opts.fault_policy = FaultPolicy::parse(&value()?)?,
            "--eval-retries" => {
                opts.eval_retries =
                    value()?.parse().map_err(|_| "--eval-retries needs an integer")?;
            }
            "--eval-cache" => {
                let v = value()?;
                opts.eval_cache = if v.eq_ignore_ascii_case("off") {
                    0
                } else {
                    v.parse().map_err(|_| "--eval-cache needs an integer or 'off'")?
                };
            }
            "--eval-delta" => {
                let v = value()?;
                opts.eval_delta = if v.eq_ignore_ascii_case("on") {
                    true
                } else if v.eq_ignore_ascii_case("off") {
                    false
                } else {
                    return Err(ArgsError::syntax(format!(
                        "--eval-delta must be on or off (got {v})"
                    )));
                };
            }
            "--chaos" => opts.chaos = Some(ChaosSpec::parse(&value()?)?),
            "--chaos-seed" => {
                opts.chaos_seed =
                    Some(value()?.parse().map_err(|_| "--chaos-seed needs an integer")?);
            }
            "--progress" => opts.progress = true,
            "--log-level" => {
                let name = value()?;
                opts.log_level = LogLevel::parse(&name).ok_or_else(|| {
                    format!("--log-level must be quiet, info, or debug (got {name})")
                })?;
            }
            other => return Err(ArgsError::syntax(format!("unknown flag '{other}'"))),
        }
    }
    validate_run_options(&opts)?;
    Ok(opts)
}

/// Semantic validation shared by the flag parser and the job server's
/// spec validation, so a served job refuses exactly the configurations
/// the command line refuses.
pub fn validate_run_options(opts: &RunOptions) -> Result<(), ArgsError> {
    if opts.population < 2 {
        return Err(ArgsError::syntax("--population must be at least 2"));
    }
    if opts.budget == 0 {
        return Err(ArgsError::syntax("--budget must be positive"));
    }
    if opts.checkpoint_every == 0 {
        return Err(ArgsError::syntax("--checkpoint-every must be positive"));
    }
    if opts.fault_policy == FaultPolicy::Fail && opts.eval_retries > 0 {
        return Err(ArgsError::contradiction(
            "--fault-policy fail aborts on the first fault, so --eval-retries > 0 can never \
             apply (use --fault-policy penalize-worst or skip to retry faulted candidates)",
        ));
    }
    if opts.chaos.is_some() && opts.chaos_seed.is_none() {
        return Err(ArgsError::contradiction(
            "--chaos injects a seeded fault stream and needs --chaos-seed <N> so the \
             injected faults are reproducible",
        ));
    }
    if opts.chaos_seed.is_some() && opts.chaos.is_none() {
        return Err(ArgsError::contradiction("--chaos-seed has no effect without --chaos <spec>"));
    }
    Ok(())
}

/// The usage text.
pub const USAGE: &str = "\
moela-dse — multi-objective DSE for 3D heterogeneous manycore platforms

USAGE:
    moela-dse <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
    run        run one optimizer and print its Pareto front
    resume     resume an interrupted run from its --run-dir
    serve      serve DSE jobs over HTTP (bounded queue, graceful drain)
    report     analyze a finished run directory (report.json + Perfetto
               trace) and print convergence/phase telemetry
    compare    run every optimizer at the same budget and compare PHV;
               or, with two paths, diff two finished runs/snapshots and
               fail on regression
    info       describe an application's synthesized workload
    simulate   run the flit-level NoC simulator on a random design
    version    print the build version
    help       print this text

COMMON FLAGS:
    --app <BFS|BP|GAU|HOT|PF|SC|SRAD>   workload          [BFS]
    --objectives <3|4|5>                objective stack   [3]
    --algorithm <moela|moead|moos|moo-stage|nsga2|random> [moela]
    --budget <N>                        evaluation budget [4000]
    --population <N>                    population size   [24]
    --seed <N>                          RNG seed          [11]
    --threads <N>                       evaluation worker threads, 0 = auto;
                                        results are identical for any N [1]
    --eval-cache <N|off>                memoize up to N evaluated designs
                                        and reuse routing tables across
                                        placement-only moves; off disables
                                        both layers; results are identical
                                        either way [4096]
    --eval-delta <on|off>               incremental move evaluation: score
                                        a neighbor by patching the base
                                        design's cached evaluation state
                                        (exact; falls back to a full
                                        evaluation for unrecognized moves);
                                        results are identical either way [on]
    --trace-csv <PATH>                  write PHV trace CSV
    --front-csv <PATH>                  write final front CSV
    --dot <PATH>                        write best design as Graphviz DOT

OBSERVABILITY FLAGS:
    --progress                          live progress line on stderr (gen,
                                        evals, evals/s, best PHV, ETA)
    --log-level <quiet|info|debug>      status verbosity [info]; quiet =
                                        artifacts only (warnings still on
                                        stderr); with --run-dir every run
                                        also writes events.jsonl and
                                        metrics.json telemetry

FAULT CONTAINMENT FLAGS:
    --fault-policy <fail|penalize-worst|skip>
                                        what to do when an evaluation
                                        faults (panic, NaN/Inf, wrong
                                        arity): abort with a structured
                                        error, quarantine behind a finite
                                        worst-case penalty, or drop the
                                        candidate [fail]
    --eval-retries <N>                  re-evaluation attempts per faulted
                                        candidate before the policy
                                        applies (not with fail) [0]
    --chaos <SPEC>                      seeded fault injection for chaos
                                        testing; SPEC is key=probability
                                        pairs, e.g. panic=0.05,nan=0.02
                                        (keys: panic, nan, inf, arity,
                                        slow); requires --chaos-seed
    --chaos-seed <N>                    seed for the chaos fault stream

RUN PERSISTENCE FLAGS:
    --run-dir <DIR>                     structured run store: manifest.json,
                                        rotating checkpoints/, trace.csv,
                                        front.csv; enables `resume`
    --checkpoint-every <N>              checkpoint cadence in steps [1]
    --crash-after-checkpoints <N>       abort after N checkpoints (crash
                                        injection for resume testing)

RESUME:
    moela-dse resume <DIR> [--threads N] [--checkpoint-every N]
                           [--progress] [--log-level L]
    continues an interrupted `run --run-dir DIR` from its newest intact
    checkpoint; the finished trace.csv and front.csv are byte-identical
    to an uninterrupted run at any thread count

REPORT:
    moela-dse report <DIR> [--log-level L]
    replays DIR/events.jsonl and joins it with the deterministic
    artifacts into DIR/report.json (convergence telemetry, exact phase
    p50/p90/p99, operator attribution, cache/fault trends) and
    DIR/trace.chrome.json (open at https://ui.perfetto.dev); tolerates
    a torn final event line after SIGKILL

COMPARE (regression gate):
    moela-dse compare <BASELINE> <CANDIDATE>
                      [--max-phv-regression F] [--max-rate-regression F]
    each path is a finished run directory or a BENCH_*.json snapshot;
    prints per-algorithm PHV and throughput deltas and exits 3 when the
    candidate regresses past a threshold (defaults: PHV 0.01, rate 0.2)

SIMULATE FLAGS:
    --load <F>                          injection multiplier [1.0]
    --cycles <N>                        measured cycles      [50000]

SERVE:
    moela-dse serve --run-root <DIR> [--addr HOST:PORT] [--workers N]
                    [--queue-depth N] [--checkpoint-every N]
                    [--addr-file PATH] [--max-attempts N]
                    [--retry-base-ms N] [--stall-timeout-s N]
                    [--stall-grace-s N]
    embedded DSE job server: POST /jobs submits a run spec (the same
    fields as `run` flags, plus timeout_s for a per-job wall-clock
    deadline), GET /jobs/{id} polls state and live phase metrics,
    GET /jobs/{id}/front fetches the finished front, DELETE cancels
    at the next checkpoint, POST /shutdown drains gracefully; a full
    queue answers 429 with Retry-After. Interrupted jobs are
    rediscovered from --run-root and resumed on restart. Every job is
    supervised: transient failures (I/O errors, exhausted fault
    budgets, runner panics) retry from the last checkpoint with
    exponential backoff until --max-attempts, then quarantine; a
    watchdog interrupts jobs whose step heartbeat goes quiet for
    --stall-timeout-s and abandons workers that stay stuck past
    --stall-grace-s more. GET /healthz reports liveness, GET /readyz
    readiness (503 while draining or disk-degraded). Defaults:
    --addr 127.0.0.1:7774, --workers 2, --queue-depth 16,
    --max-attempts 3, --retry-base-ms 1000, --stall-timeout-s 30,
    --stall-grace-s 60.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).expect("ok"), Command::Help);
        assert_eq!(parse(&argv("help")).expect("ok"), Command::Help);
    }

    #[test]
    fn run_parses_all_flags() {
        let cmd = parse(&argv(
            "run --app HOT --objectives 5 --algorithm moead --budget 999 \
             --population 10 --seed 3 --threads 4 --trace-csv t.csv --front-csv f.csv",
        ))
        .expect("ok");
        let Command::Run(o) = cmd else { panic!("expected Run") };
        assert_eq!(o.app, Benchmark::Hot);
        assert_eq!(o.set, ObjectiveSet::Five);
        assert_eq!(o.algorithm, Algorithm::Moead);
        assert_eq!(o.budget, 999);
        assert_eq!(o.population, 10);
        assert_eq!(o.seed, 3);
        assert_eq!(o.threads, 4);
        assert_eq!(o.trace_csv.as_deref(), Some("t.csv"));
        assert_eq!(o.front_csv.as_deref(), Some("f.csv"));
        assert_eq!(o.dot, None);
    }

    #[test]
    fn unknown_values_are_reported_with_context() {
        let err = parse(&argv("run --app NOPE")).expect_err("bad app");
        assert!(err.message.contains("NOPE"));
        assert_eq!(err.code, 1);
        let err = parse(&argv("run --objectives 7")).expect_err("bad set");
        assert!(err.message.contains("7"));
        let err = parse(&argv("frobnicate")).expect_err("bad subcommand");
        assert!(err.message.contains("frobnicate"));
        let err = parse(&argv("run --algorithm simulated-annealing")).expect_err("bad algo");
        assert!(err.message.contains("simulated-annealing"));
    }

    #[test]
    fn simulate_extracts_its_own_flags() {
        let cmd = parse(&argv("simulate --app GAU --load 2.5 --cycles 123 --seed 9")).expect("ok");
        let Command::Simulate { options, load_factor, cycles } = cmd else {
            panic!("expected Simulate")
        };
        assert_eq!(options.app, Benchmark::Gau);
        assert_eq!(options.seed, 9);
        assert!((load_factor - 2.5).abs() < 1e-12);
        assert_eq!(cycles, 123);
    }

    #[test]
    fn validation_rejects_degenerate_budgets() {
        assert!(parse(&argv("run --population 1")).is_err());
        assert!(parse(&argv("run --budget 0")).is_err());
    }

    #[test]
    fn run_parses_persistence_flags() {
        let cmd = parse(&argv("run --run-dir out/run1 --checkpoint-every 5")).expect("ok");
        let Command::Run(o) = cmd else { panic!("expected Run") };
        assert_eq!(o.run_dir.as_deref(), Some("out/run1"));
        assert_eq!(o.checkpoint_every, 5);
        assert_eq!(o.crash_after_checkpoints, None);
        assert!(parse(&argv("run --checkpoint-every 0")).is_err());
    }

    #[test]
    fn resume_parses_dir_and_overrides() {
        let cmd = parse(&argv(
            "resume out/run1 --threads 4 --crash-after-checkpoints 2 --progress --log-level quiet",
        ))
        .expect("ok");
        let Command::Resume {
            dir,
            threads,
            checkpoint_every,
            crash_after_checkpoints,
            progress,
            log_level,
        } = cmd
        else {
            panic!("expected Resume")
        };
        assert_eq!(dir, "out/run1");
        assert_eq!(threads, Some(4));
        assert_eq!(checkpoint_every, None);
        assert_eq!(crash_after_checkpoints, Some(2));
        assert!(progress);
        assert_eq!(log_level, LogLevel::Quiet);
        assert!(parse(&argv("resume")).is_err());
        assert!(parse(&argv("resume a b")).is_err());
    }

    #[test]
    fn report_parses_dir_and_log_level() {
        let cmd = parse(&argv("report out/run1 --log-level quiet")).expect("ok");
        assert_eq!(cmd, Command::Report { dir: "out/run1".into(), log_level: LogLevel::Quiet });
        assert!(parse(&argv("report")).is_err());
        assert!(parse(&argv("report a b")).is_err());
        assert!(parse(&argv("report a --what")).is_err());
    }

    #[test]
    fn compare_with_two_paths_is_the_regression_gate() {
        let cmd = parse(&argv("compare out/a out/b")).expect("ok");
        let Command::CompareRuns { baseline, candidate, max_phv_regression, max_rate_regression } =
            cmd
        else {
            panic!("expected CompareRuns")
        };
        assert_eq!(baseline, "out/a");
        assert_eq!(candidate, "out/b");
        assert_eq!(max_phv_regression, 0.01);
        assert_eq!(max_rate_regression, 0.2);

        let cmd = parse(&argv(
            "compare BENCH_a.json BENCH_b.json --max-phv-regression 0.05 \
             --max-rate-regression 0.5",
        ))
        .expect("ok");
        let Command::CompareRuns { max_phv_regression, max_rate_regression, .. } = cmd else {
            panic!("expected CompareRuns")
        };
        assert_eq!(max_phv_regression, 0.05);
        assert_eq!(max_rate_regression, 0.5);

        assert!(parse(&argv("compare out/a")).is_err(), "one path is not enough");
        assert!(parse(&argv("compare a b c")).is_err());
        assert!(parse(&argv("compare a b --max-phv-regression 2")).is_err());

        // Flag-only compare keeps its historical meaning: run every
        // algorithm at one budget.
        let cmd = parse(&argv("compare --budget 50")).expect("ok");
        assert!(matches!(cmd, Command::Compare(_)));
    }

    #[test]
    fn observability_flags_parse() {
        let Command::Run(o) = parse(&argv("run --progress --log-level debug")).expect("ok") else {
            panic!("expected Run")
        };
        assert!(o.progress);
        assert_eq!(o.log_level, LogLevel::Debug);

        let Command::Run(o) = parse(&argv("run")).expect("ok") else { panic!("expected Run") };
        assert!(!o.progress);
        assert_eq!(o.log_level, LogLevel::Info);

        let err = parse(&argv("run --log-level loud")).expect_err("bad level");
        assert_eq!(err.code, 1);
        assert!(err.message.contains("loud"));
    }

    #[test]
    fn version_has_three_spellings() {
        for v in ["version", "--version", "-V"] {
            assert_eq!(parse(&argv(v)).expect("ok"), Command::Version);
        }
    }

    #[test]
    fn every_algorithm_name_round_trips() {
        for (algo, name) in Algorithm::ALL {
            assert_eq!(Algorithm::parse(name).expect("ok"), algo);
            assert_eq!(algo.name(), name);
        }
    }

    #[test]
    fn eval_cache_parses_sizes_and_off() {
        let Command::Run(o) = parse(&argv("run")).expect("ok") else { panic!("expected Run") };
        assert_eq!(o.eval_cache, DEFAULT_EVAL_CACHE_CAPACITY);

        let Command::Run(o) = parse(&argv("run --eval-cache 128")).expect("ok") else {
            panic!("expected Run")
        };
        assert_eq!(o.eval_cache, 128);

        let Command::Run(o) = parse(&argv("run --eval-cache off")).expect("ok") else {
            panic!("expected Run")
        };
        assert_eq!(o.eval_cache, 0);

        // `0` is an explicit spelling of `off`.
        let Command::Run(o) = parse(&argv("run --eval-cache 0")).expect("ok") else {
            panic!("expected Run")
        };
        assert_eq!(o.eval_cache, 0);

        let err = parse(&argv("run --eval-cache many")).expect_err("bad value");
        assert_eq!(err.code, 1);
        assert!(err.message.contains("--eval-cache"));
    }

    #[test]
    fn eval_delta_parses_on_off_and_defaults_on() {
        let Command::Run(o) = parse(&argv("run")).expect("ok") else { panic!("expected Run") };
        assert!(o.eval_delta, "delta evaluation defaults on");

        let Command::Run(o) = parse(&argv("run --eval-delta off")).expect("ok") else {
            panic!("expected Run")
        };
        assert!(!o.eval_delta);

        let Command::Run(o) = parse(&argv("run --eval-delta on")).expect("ok") else {
            panic!("expected Run")
        };
        assert!(o.eval_delta);

        let err = parse(&argv("run --eval-delta maybe")).expect_err("bad value");
        assert_eq!(err.code, 1);
        assert!(err.message.contains("--eval-delta"));
    }

    #[test]
    fn fault_and_chaos_flags_parse() {
        let cmd = parse(&argv(
            "run --fault-policy skip --eval-retries 2 --chaos panic=0.1,nan=0.05 --chaos-seed 7",
        ))
        .expect("ok");
        let Command::Run(o) = cmd else { panic!("expected Run") };
        assert_eq!(o.fault_policy, FaultPolicy::Skip);
        assert_eq!(o.eval_retries, 2);
        let spec = o.chaos.expect("chaos set");
        assert_eq!(spec.panic, 0.1);
        assert_eq!(spec.nan, 0.05);
        assert_eq!(o.chaos_seed, Some(7));
        assert_eq!(o.fault().policy, FaultPolicy::Skip);
        assert_eq!(o.fault().retries, 2);
    }

    #[test]
    fn defaults_match_the_pre_containment_behavior() {
        let Command::Run(o) = parse(&argv("run")).expect("ok") else { panic!("expected Run") };
        assert_eq!(o.fault_policy, FaultPolicy::Fail);
        assert_eq!(o.eval_retries, 0);
        assert_eq!(o.chaos, None);
        assert_eq!(o.chaos_seed, None);
    }

    #[test]
    fn contradictory_combinations_exit_with_code_2() {
        let err = parse(&argv("run --fault-policy fail --eval-retries 1"))
            .expect_err("fail + retries is contradictory");
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--eval-retries"));

        let err = parse(&argv("run --chaos panic=0.5")).expect_err("chaos needs a seed");
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--chaos-seed"));

        let err = parse(&argv("run --chaos-seed 3")).expect_err("seed without chaos");
        assert_eq!(err.code, 2);

        // Retries with a non-fail policy are fine.
        assert!(parse(&argv("run --fault-policy skip --eval-retries 1")).is_ok());
    }

    #[test]
    fn serve_parses_flags_and_validates() {
        let cmd = parse(&argv(
            "serve --run-root out/jobs --addr 0.0.0.0:0 --workers 3 --queue-depth 5 \
             --checkpoint-every 4 --addr-file out/addr --max-attempts 5 --retry-base-ms 250 \
             --stall-timeout-s 10 --stall-grace-s 20",
        ))
        .expect("ok");
        let Command::Serve(o) = cmd else { panic!("expected Serve") };
        assert_eq!(o.run_root, "out/jobs");
        assert_eq!(o.addr, "0.0.0.0:0");
        assert_eq!(o.workers, 3);
        assert_eq!(o.queue_depth, 5);
        assert_eq!(o.checkpoint_every, 4);
        assert_eq!(o.addr_file.as_deref(), Some("out/addr"));
        assert_eq!(o.max_attempts, 5);
        assert_eq!(o.retry_base_ms, 250);
        assert_eq!(o.stall_timeout_s, 10);
        assert_eq!(o.stall_grace_s, 20);

        let Command::Serve(o) = parse(&argv("serve --run-root r")).expect("defaults") else {
            panic!("expected Serve")
        };
        assert_eq!(o.addr, "127.0.0.1:7774");
        assert_eq!(o.workers, 2);
        assert_eq!(o.queue_depth, 16);
        assert_eq!(o.max_attempts, 3);
        assert_eq!(o.retry_base_ms, 1_000);
        assert_eq!(o.stall_timeout_s, 30);
        assert_eq!(o.stall_grace_s, 60);

        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("serve --run-root r --workers 0")).is_err());
        assert!(parse(&argv("serve --run-root r --queue-depth 0")).is_err());
        assert!(parse(&argv("serve --run-root r --what no")).is_err());
        assert!(parse(&argv("serve --run-root r --max-attempts 0")).is_err());
        assert!(parse(&argv("serve --run-root r --retry-base-ms 0")).is_err());
        assert!(parse(&argv("serve --run-root r --stall-timeout-s 0")).is_err());
    }

    #[test]
    fn malformed_chaos_specs_are_syntax_errors() {
        let err = parse(&argv("run --chaos panik=0.1 --chaos-seed 1")).expect_err("bad key");
        assert_eq!(err.code, 1);
        assert!(err.message.contains("panik"));
        let err = parse(&argv("run --fault-policy explode")).expect_err("bad policy");
        assert_eq!(err.code, 1);
        assert!(err.message.contains("explode"));
    }
}
