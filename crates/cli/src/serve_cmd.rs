//! The `moela-dse serve` subcommand: plugs the CLI's run engine into
//! the embedded `moela-serve` job server.
//!
//! The [`DseRunner`] is the serve-side [`JobRunner`]: it validates a
//! submission spec with the same rules the flag parser applies, then
//! drives the job through `engine::run` — or `engine::resume` when the
//! job's directory already holds checkpoints from a previous server
//! life — so served artifacts are byte-identical to `moela-dse run`
//! with the same configuration.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use moela_manycore::ObjectiveSet;
use moela_moo::fault::FaultPolicy;
use moela_moo::ChaosSpec;
use moela_obs::LogLevel;
use moela_persist::Value;
use moela_serve::{
    JobContext, JobRunner, ReportBuilder, RunError, RunOutcome, ServeConfig, Server,
};
use moela_traffic::Benchmark;

use crate::args::{self, Algorithm, RunOptions, ServeOptions};
use crate::engine::{self, fail, CliError, ErrorClass, ExecHooks, ResumeOverrides, RunStatus};

/// The spec keys a job submission may set; everything else is rejected
/// so a typo (`"algorthm"`) fails loudly instead of running defaults.
const SPEC_KEYS: [&str; 16] = [
    "app",
    "objectives",
    "algorithm",
    "budget",
    "population",
    "seed",
    "threads",
    "time_guard_secs",
    "checkpoint_every",
    "fault_policy",
    "eval_retries",
    "eval_cache",
    "eval_delta",
    "chaos",
    "chaos_seed",
    "timeout_s",
];

/// Translates a submission spec into [`RunOptions`]. Unknown keys are
/// errors; absent keys take the same defaults as the `run` flags,
/// except the checkpoint cadence which falls back to the server's
/// `--checkpoint-every` so every served job is resumable.
fn spec_to_options(spec: &Value, default_checkpoint_every: u64) -> Result<RunOptions, String> {
    let Value::Object(fields) = spec else {
        return Err("job spec must be a JSON object".into());
    };
    for (key, _) in fields {
        if !SPEC_KEYS.contains(&key.as_str()) {
            return Err(format!("unknown spec key '{key}' (accepted: {})", SPEC_KEYS.join(", ")));
        }
    }
    let mut opts = RunOptions { checkpoint_every: default_checkpoint_every, ..Default::default() };
    let str_field = |name: &str| -> Result<Option<&str>, String> {
        match spec.field_opt(name) {
            Some(v) => {
                v.as_str().map(Some).map_err(|_| format!("spec key '{name}' must be a string"))
            }
            None => Ok(None),
        }
    };
    let u64_field = |name: &str| -> Result<Option<u64>, String> {
        match spec.field_opt(name) {
            Some(v) => v
                .as_u64()
                .map(Some)
                .map_err(|_| format!("spec key '{name}' must be a non-negative integer")),
            None => Ok(None),
        }
    };
    if let Some(name) = str_field("app")? {
        opts.app = Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown app '{name}'"))?;
    }
    if let Some(n) = u64_field("objectives")? {
        opts.set = match n {
            3 => ObjectiveSet::Three,
            4 => ObjectiveSet::Four,
            5 => ObjectiveSet::Five,
            other => return Err(format!("objectives must be 3, 4, or 5 (got {other})")),
        };
    }
    if let Some(name) = str_field("algorithm")? {
        opts.algorithm = Algorithm::parse(name)?;
    }
    if let Some(n) = u64_field("budget")? {
        opts.budget = n;
    }
    if let Some(n) = u64_field("population")? {
        opts.population = n as usize;
    }
    if let Some(n) = u64_field("seed")? {
        opts.seed = n;
    }
    if let Some(n) = u64_field("threads")? {
        opts.threads = n as usize;
    }
    if let Some(n) = u64_field("time_guard_secs")? {
        opts.time_guard = Duration::from_secs(n);
    }
    if let Some(n) = u64_field("checkpoint_every")? {
        opts.checkpoint_every = n;
    }
    if let Some(name) = str_field("fault_policy")? {
        opts.fault_policy = FaultPolicy::parse(name)?;
    }
    if let Some(n) = u64_field("eval_retries")? {
        opts.eval_retries = n as u32;
    }
    if let Some(n) = u64_field("eval_cache")? {
        opts.eval_cache = n as usize;
    }
    if let Some(v) = spec.field_opt("eval_delta") {
        opts.eval_delta =
            v.as_bool().map_err(|_| "spec key 'eval_delta' must be a boolean".to_owned())?;
    }
    if let Some(s) = str_field("chaos")? {
        opts.chaos = Some(ChaosSpec::parse(s)?);
    }
    if let Some(n) = u64_field("chaos_seed")? {
        opts.chaos_seed = Some(n);
    }
    // `timeout_s` is validated here (so submission rejects it loudly)
    // but enforced by the server's supervisor, not the run engine.
    timeout_from_spec(spec)?;
    // Served jobs log through job.json and events.jsonl, not the server's
    // stdout; interactive progress painting makes no sense here either.
    opts.log_level = LogLevel::Quiet;
    opts.progress = false;
    args::validate_run_options(&opts).map_err(|e| e.message)?;
    Ok(opts)
}

/// Extracts and validates the optional per-job wall-clock deadline. The
/// engine never sees it — the server's supervisor enforces it at step
/// boundaries through the cancel seam.
fn timeout_from_spec(spec: &Value) -> Result<Option<u64>, String> {
    match spec.field_opt("timeout_s") {
        Some(v) => {
            let secs = v
                .as_u64()
                .map_err(|_| "spec key 'timeout_s' must be a positive integer (seconds)")?;
            if secs == 0 {
                return Err("spec key 'timeout_s' must be at least 1 second".into());
            }
            Ok(Some(secs))
        }
        None => Ok(None),
    }
}

/// Renders the effective configuration back into a spec object. This is
/// what gets persisted in `job.json`, so a restarted server re-derives
/// the identical [`RunOptions`] without reparsing the client's input.
fn normalized_spec(opts: &RunOptions) -> Value {
    let mut fields = vec![
        ("app", Value::Str(opts.app.name().to_owned())),
        ("objectives", Value::U64(opts.set.count() as u64)),
        ("algorithm", Value::Str(opts.algorithm.name().to_owned())),
        ("budget", Value::U64(opts.budget)),
        ("population", Value::U64(opts.population as u64)),
        ("seed", Value::U64(opts.seed)),
        ("threads", Value::U64(opts.threads as u64)),
        ("time_guard_secs", Value::U64(opts.time_guard.as_secs())),
        ("checkpoint_every", Value::U64(opts.checkpoint_every)),
        ("fault_policy", Value::Str(opts.fault_policy.name().to_owned())),
        ("eval_retries", Value::U64(u64::from(opts.eval_retries))),
        ("eval_cache", Value::U64(opts.eval_cache as u64)),
        ("eval_delta", Value::Bool(opts.eval_delta)),
    ];
    if let Some(spec) = &opts.chaos {
        fields.push(("chaos", Value::Str(spec.to_string())));
    }
    if let Some(seed) = opts.chaos_seed {
        fields.push(("chaos_seed", Value::U64(seed)));
    }
    Value::object(fields)
}

/// True when `dir` holds at least one *completed* checkpoint file
/// (`ckpt-NNNNNNNN.json`), ignoring atomic-write `.tmp` siblings a
/// crash may have stranded.
fn has_checkpoint(dir: &std::path::Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else { return false };
    entries.flatten().any(|entry| {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { return false };
        name.strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .is_some_and(|digits| digits.parse::<u64>().is_ok())
    })
}

/// The serve-side job runner backed by the CLI's own engine.
pub(crate) struct DseRunner {
    /// Checkpoint cadence for specs that do not set one (the server's
    /// `--checkpoint-every`).
    default_checkpoint_every: u64,
}

impl JobRunner for DseRunner {
    fn validate(&self, spec: &Value) -> Result<Value, String> {
        let opts = spec_to_options(spec, self.default_checkpoint_every)?;
        let mut normalized = normalized_spec(&opts);
        // The deadline is server-side state, not a RunOptions field, so
        // it must ride the normalized spec to survive in job.json.
        if let Some(secs) = timeout_from_spec(spec)? {
            if let Value::Object(fields) = &mut normalized {
                fields.push(("timeout_s".to_owned(), Value::U64(secs)));
            }
        }
        Ok(normalized)
    }

    fn run(&self, ctx: JobContext<'_>) -> Result<RunOutcome, RunError> {
        let hooks = ExecHooks {
            cancel: Some(&ctx.cancel),
            live: Some(ctx.live),
            heartbeat: Some(ctx.heartbeat),
            attempt: ctx.attempt,
        };
        let dir = ctx.dir.to_string_lossy().into_owned();
        // A manifest plus at least one checkpoint means this directory is
        // a previous life of the same job: resume it. Anything less is a
        // fresh start (a job interrupted before its first checkpoint
        // reruns from scratch — same bytes either way). Only completed
        // `ckpt-*.json` files count: a crash mid-write leaves a `.tmp`
        // sibling behind, and that alone must not route a job into
        // `resume`, which would find nothing usable and fail it.
        let resumable =
            ctx.dir.join("manifest.json").is_file() && has_checkpoint(&ctx.dir.join("checkpoints"));
        let status = if resumable {
            let overrides =
                ResumeOverrides { log_level: Some(LogLevel::Quiet), ..Default::default() };
            engine::resume(&dir, &overrides, &hooks)
        } else {
            let mut opts = spec_to_options(ctx.spec, self.default_checkpoint_every)?;
            opts.run_dir = Some(dir);
            engine::run(&opts, &hooks)
        };
        match status {
            Ok(RunStatus::Completed { summary }) => Ok(RunOutcome::Completed { summary }),
            Ok(RunStatus::Interrupted) => Ok(RunOutcome::Interrupted),
            // The engine's classification drives the supervisor: only
            // transient and disk failures feed retry-with-backoff.
            Err(e) => Err(match e.class {
                ErrorClass::Fatal => RunError::permanent(e.message),
                ErrorClass::Transient => RunError::transient(e.message),
                ErrorClass::Disk => RunError::disk(e.message),
            }),
        }
    }
}

/// The `moela-dse serve` body: binds, announces the address, serves
/// until a `POST /shutdown` drain completes, then returns cleanly.
pub(crate) fn serve(opts: &ServeOptions) -> Result<(), CliError> {
    let mut config = ServeConfig::new(opts.addr.clone(), PathBuf::from(&opts.run_root));
    config.workers = opts.workers;
    config.queue_depth = opts.queue_depth;
    config.supervise.max_attempts = opts.max_attempts;
    config.supervise.retry_base = Duration::from_millis(opts.retry_base_ms);
    config.supervise.stall_timeout = Duration::from_secs(opts.stall_timeout_s);
    config.supervise.stall_grace = Duration::from_secs(opts.stall_grace_s);
    // `GET /jobs/{id}/report` builds the same analysis document as
    // `moela-dse report`, minus the on-disk artifacts (the endpoint is
    // read-only over the job's run store).
    config.report_builder = Some(ReportBuilder::new(|dir| {
        crate::analysis::build_report(dir).map(|(report, _)| report).map_err(|e| e.message)
    }));
    let runner = Arc::new(DseRunner { default_checkpoint_every: opts.checkpoint_every });
    let server = Server::bind(config, runner)
        .map_err(|e| fail(format!("cannot start server on {}: {e}", opts.addr)))?;
    let addr = server.local_addr().map_err(|e| fail(format!("cannot read bound address: {e}")))?;
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, addr.to_string())
            .map_err(|e| fail(format!("cannot write address file '{path}': {e}")))?;
    }
    println!("moela-dse serve listening on http://{addr} (run root {})", opts.run_root);
    println!("  POST /jobs to submit, GET /jobs to list, POST /shutdown to drain");
    server.run().map_err(|e| fail(format!("server failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_reject_unknown_keys_and_bad_values() {
        let err =
            spec_to_options(&Value::object(vec![("algorthm", Value::Str("moela".into()))]), 1)
                .expect_err("typo");
        assert!(err.contains("algorthm"), "{err}");
        let err = spec_to_options(&Value::Array(Vec::new()), 1).expect_err("not an object");
        assert!(err.contains("object"), "{err}");
        let err = spec_to_options(&Value::object(vec![("budget", Value::U64(0))]), 1)
            .expect_err("zero budget");
        assert!(err.contains("--budget"), "{err}");
        // The chaos-needs-seed contradiction applies to specs too.
        let err =
            spec_to_options(&Value::object(vec![("chaos", Value::Str("panic=0.5".into()))]), 1)
                .expect_err("chaos without seed");
        assert!(err.contains("chaos-seed"), "{err}");
    }

    #[test]
    fn specs_normalize_with_run_defaults() {
        let spec = Value::object(vec![
            ("algorithm", Value::Str("nsga2".into())),
            ("budget", Value::U64(120)),
            ("seed", Value::U64(5)),
        ]);
        let opts = spec_to_options(&spec, 7).expect("ok");
        assert_eq!(opts.algorithm, Algorithm::Nsga2);
        assert_eq!(opts.budget, 120);
        assert_eq!(opts.seed, 5);
        assert_eq!(opts.checkpoint_every, 7, "server default cadence applies");
        assert_eq!(opts.population, RunOptions::default().population);
        assert_eq!(opts.log_level, LogLevel::Quiet);

        let normalized = normalized_spec(&opts);
        let reparsed = spec_to_options(&normalized, 1).expect("normalized specs revalidate");
        assert_eq!(reparsed, opts, "normalization round-trips");

        let spec = Value::object(vec![("eval_delta", Value::Bool(false))]);
        let opts = spec_to_options(&spec, 1).expect("ok");
        assert!(!opts.eval_delta, "eval_delta=false must parse");
        let reparsed = spec_to_options(&normalized_spec(&opts), 1).expect("revalidates");
        assert_eq!(reparsed, opts, "eval_delta survives normalization");
        let err = spec_to_options(&Value::object(vec![("eval_delta", Value::U64(1))]), 1)
            .expect_err("non-boolean eval_delta");
        assert!(err.contains("eval_delta"), "{err}");
    }

    #[test]
    fn timeout_s_validates_and_rides_the_normalized_spec() {
        let err = timeout_from_spec(&Value::object(vec![("timeout_s", Value::U64(0))]))
            .expect_err("zero deadline");
        assert!(err.contains("at least 1"), "{err}");
        let err = timeout_from_spec(&Value::object(vec![("timeout_s", Value::Str("5s".into()))]))
            .expect_err("non-integer deadline");
        assert!(err.contains("positive integer"), "{err}");
        assert_eq!(timeout_from_spec(&Value::object(vec![])).expect("absent is fine"), None);

        let runner = DseRunner { default_checkpoint_every: 1 };
        let spec = Value::object(vec![("budget", Value::U64(50)), ("timeout_s", Value::U64(7))]);
        let normalized = runner.validate(&spec).expect("valid spec");
        assert_eq!(
            normalized.field("timeout_s").and_then(|v| v.as_u64()).ok(),
            Some(7),
            "the deadline must survive normalization so a restarted server still enforces it"
        );
        // And the normalized spec (now carrying timeout_s) revalidates.
        runner.validate(&normalized).expect("normalized specs revalidate");
    }
}
