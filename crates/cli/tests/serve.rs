//! End-to-end tests for `moela-dse serve` that drive the real binary
//! over real sockets.
//!
//! The contract under test is the serving tentpole: a job submitted
//! over HTTP must produce artifacts byte-identical to `moela-dse run`
//! with the same configuration — through completion, client cancel +
//! `resume`, a SIGKILL + restart, and a graceful drain + restart. The
//! chaos `slow` injector (200µs per evaluation, no faults) stretches
//! runs enough to hit them reliably mid-flight.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

/// One run configuration, spelled both as `run` flags and as a job
/// spec, so the byte-identical comparison can't drift.
const ALGORITHM: &str = "nsga2";
const BUDGET: &str = "1000";
const POPULATION: &str = "8";
const SEED: &str = "7";
const CHAOS: &str = "slow=1";
const CHAOS_SEED: &str = "1";

fn spec_json() -> String {
    format!(
        "{{\"algorithm\":\"{ALGORITHM}\",\"budget\":{BUDGET},\"population\":{POPULATION},\
         \"seed\":{SEED},\"chaos\":\"{CHAOS}\",\"chaos_seed\":{CHAOS_SEED}}}"
    )
}

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-serve-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Runs the reference `moela-dse run` into `dir` and returns the dir.
fn reference_run(name: &str) -> PathBuf {
    let dir = scratch(name);
    let out = moela_dse(&[
        "run",
        "--algorithm",
        ALGORITHM,
        "--budget",
        BUDGET,
        "--population",
        POPULATION,
        "--seed",
        SEED,
        "--chaos",
        CHAOS,
        "--chaos-seed",
        CHAOS_SEED,
        "--log-level",
        "quiet",
        "--run-dir",
        dir.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "reference run failed: {}", String::from_utf8_lossy(&out.stderr));
    dir
}

/// A `moela-dse serve` process bound to an ephemeral port.
struct ServerProc {
    child: Child,
    addr: String,
    root: PathBuf,
}

impl ServerProc {
    fn start(tag: &str, root: &Path, workers: u32, queue_depth: u32) -> Self {
        let addr_file = std::env::temp_dir()
            .join(format!("moela-serve-addr-{tag}-{}-{workers}", std::process::id()));
        let _ = fs::remove_file(&addr_file);
        let child = Command::new(BIN)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                addr_file.to_str().expect("utf-8 path"),
                "--run-root",
                root.to_str().expect("utf-8 path"),
                "--workers",
                &workers.to_string(),
                "--queue-depth",
                &queue_depth.to_string(),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = fs::read_to_string(&addr_file) {
                if !text.trim().is_empty() {
                    break text.trim().to_owned();
                }
            }
            assert!(Instant::now() < deadline, "server never wrote its address file");
            std::thread::sleep(Duration::from_millis(10));
        };
        let _ = fs::remove_file(&addr_file);
        ServerProc { child, addr, root: root.to_path_buf() }
    }

    /// Sends `POST /shutdown`, waits for a clean exit 0.
    fn shutdown(mut self) {
        let (status, _, _) = http(&self.addr, "POST", "/shutdown", None);
        assert_eq!(status, 200, "shutdown must be accepted");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(code) = self.child.try_wait().expect("wait") {
                assert!(code.success(), "drained server must exit 0, got {code}");
                return;
            }
            assert!(Instant::now() < deadline, "server did not drain in time");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn kill(mut self) {
        self.child.kill().expect("kill serve");
        self.child.wait().expect("reap serve");
    }
}

/// A panicking test must not leak its server: a stray process keeps a
/// run-worker busy-looping and starves every later test. `shutdown`
/// and `kill` have already reaped the child by the time this runs, so
/// the kill here is a no-op on the happy path.
impl Drop for ServerProc {
    fn drop(&mut self) {
        if self.child.kill().is_ok() {
            let _ = self.child.wait();
        }
    }
}

/// One HTTP/1.1 request; returns (status, headers, body).
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let (head, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_owned(), payload.to_owned())
}

/// Submits the shared spec; returns the job id.
fn submit(addr: &str) -> String {
    let (status, _, body) = http(addr, "POST", "/jobs", Some(&spec_json()));
    assert_eq!(status, 202, "submit must be accepted: {body}");
    extract_id(&body)
}

fn extract_id(body: &str) -> String {
    let rest = body.split("\"id\":\"").nth(1).unwrap_or_else(|| panic!("no id in {body}"));
    rest.split('"').next().expect("terminated id").to_owned()
}

fn job_state(addr: &str, id: &str) -> String {
    let (status, _, body) = http(addr, "GET", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200, "job lookup failed: {body}");
    let rest = body.split("\"state\":\"").nth(1).unwrap_or_else(|| panic!("no state in {body}"));
    rest.split('"').next().expect("terminated state").to_owned()
}

/// Polls until the job reaches `want`, failing on any other terminal
/// state.
fn wait_for_state(addr: &str, id: &str, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = job_state(addr, id);
        if state == want {
            return;
        }
        if ["done", "failed", "cancelled", "quarantined", "deadline_exceeded"]
            .contains(&state.as_str())
        {
            let (_, _, body) = http(addr, "GET", &format!("/jobs/{id}"), None);
            panic!("job {id} reached terminal state '{state}' while waiting for '{want}': {body}");
        }
        assert!(Instant::now() < deadline, "timed out waiting for '{want}' (job {id}: {state})");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// True when the job's `checkpoints/` dir holds a *completed*
/// `ckpt-*.json` file — an atomic-write `.tmp` sibling alone does not
/// count, so a kill landing mid-write is not mistaken for a parked
/// checkpoint.
fn has_checkpoint(job_dir: &Path) -> bool {
    fs::read_dir(job_dir.join("checkpoints"))
        .map(|entries| {
            entries.flatten().any(|entry| {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                name.starts_with("ckpt-") && name.ends_with(".json")
            })
        })
        .unwrap_or(false)
}

/// The artifacts the byte-identical contract covers.
const ARTIFACTS: [&str; 4] = ["trace.csv", "front.csv", "trace.json", "front.json"];

fn assert_artifacts_match(reference: &Path, job_dir: &Path, context: &str) {
    for file in ARTIFACTS {
        assert_eq!(
            read(&reference.join(file)),
            read(&job_dir.join(file)),
            "{file} differs from the reference run after {context}"
        );
    }
}

#[test]
fn served_job_matches_cli_run_byte_for_byte() {
    let reference = reference_run("ref-complete");
    let root = scratch("root-complete");
    let server = ServerProc::start("complete", &root, 2, 4);

    let id = submit(&server.addr);
    wait_for_state(&server.addr, &id, "done", Duration::from_secs(120));

    // The front endpoint serves the finished front.json verbatim.
    let (status, _, body) = http(&server.addr, "GET", &format!("/jobs/{id}/front"), None);
    assert_eq!(status, 200);
    assert_eq!(body.as_bytes(), read(&reference.join("front.json")), "served front differs");
    let (status, _, body) = http(&server.addr, "GET", &format!("/jobs/{id}/trace"), None);
    assert_eq!(status, 200);
    assert_eq!(body.as_bytes(), read(&reference.join("trace.json")), "served trace differs");

    assert_artifacts_match(&reference, &server.root.join(&id), "a served run");

    // The listing and metrics reflect the completed job.
    let (status, _, body) = http(&server.addr, "GET", "/jobs", None);
    assert_eq!(status, 200);
    assert!(body.contains(&id), "listing must include {id}: {body}");
    let (status, _, body) = http(&server.addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"jobs_completed\":1"), "metrics must count the job: {body}");

    server.shutdown();
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}

/// Counter blocks in `metrics.json` are per-job state, not process
/// state: two identical jobs served back-to-back by the same server
/// process must report byte-identical cache/delta/fault counters, and
/// both must match a fresh one-shot CLI run. This pins the execute-entry
/// counter snapshot — without it, a job's metrics would absorb the
/// normalizer corpus fit and any earlier run sharing the process.
#[test]
fn sequential_jobs_report_isolated_per_job_counters() {
    let reference = reference_run("ref-counters");
    let root = scratch("root-counters");
    let server = ServerProc::start("counters", &root, 1, 4);

    let first = submit(&server.addr);
    wait_for_state(&server.addr, &first, "done", Duration::from_secs(120));
    let second = submit(&server.addr);
    wait_for_state(&server.addr, &second, "done", Duration::from_secs(120));
    server.shutdown();

    // Flat counter objects close at the first `}`, so substring
    // extraction is exact.
    let block = |dir: &Path, key: &str| -> String {
        let metrics = String::from_utf8(read(&dir.join("metrics.json"))).expect("utf-8 metrics");
        let tail = metrics
            .split(&format!("\"{key}\":{{"))
            .nth(1)
            .unwrap_or_else(|| panic!("metrics.json in {} lacks {key}", dir.display()));
        tail.split('}').next().expect("the object closes").to_owned()
    };
    for key in ["cache", "delta", "faults"] {
        let a = block(&root.join(&first), key);
        let b = block(&root.join(&second), key);
        assert_eq!(a, b, "{key} counters differ between identical sequential jobs");
        let r = block(&reference, key);
        assert_eq!(a, r, "served {key} counters differ from the one-shot CLI run's");
    }
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn full_queue_returns_429_with_retry_after() {
    let root = scratch("root-saturate");
    let server = ServerProc::start("saturate", &root, 1, 1);

    // One job occupies the single worker, one fills the single queue
    // slot; the third must be refused with backpressure.
    let first = submit(&server.addr);
    wait_for_state(&server.addr, &first, "running", Duration::from_secs(30));
    let _second = submit(&server.addr);
    let (status, head, body) = http(&server.addr, "POST", "/jobs", Some(&spec_json()));
    assert_eq!(status, 429, "a full queue must refuse: {body}");
    assert!(head.contains("Retry-After: 1"), "429 must carry Retry-After: {head}");
    assert!(body.contains("queue_full"), "{body}");

    server.shutdown();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cancelled_job_leaves_a_resumable_run_store() {
    let reference = reference_run("ref-cancel");
    let root = scratch("root-cancel");
    let server = ServerProc::start("cancel", &root, 1, 4);

    let id = submit(&server.addr);
    wait_for_state(&server.addr, &id, "running", Duration::from_secs(30));
    let (status, _, body) = http(&server.addr, "DELETE", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200, "cancel must be accepted: {body}");
    let deadline = Instant::now() + Duration::from_secs(60);
    while job_state(&server.addr, &id) != "cancelled" {
        assert!(Instant::now() < deadline, "job never reached cancelled");
        std::thread::sleep(Duration::from_millis(10));
    }
    // An unfinished front is a 409, not a panic or a stale file.
    let (status, _, body) = http(&server.addr, "GET", &format!("/jobs/{id}/front"), None);
    assert_eq!(status, 409, "cancelled jobs have no front yet: {body}");
    server.shutdown();

    // The parked run store resumes to the exact bytes of an
    // uninterrupted run.
    let job_dir = root.join(&id);
    assert!(job_dir.join("manifest.json").is_file(), "cancel must leave the manifest");
    assert!(has_checkpoint(&job_dir), "cancel must park at a written checkpoint");
    let out = moela_dse(&["resume", job_dir.to_str().expect("utf-8 path")]);
    assert!(
        out.status.success(),
        "resume of a cancelled job failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_artifacts_match(&reference, &job_dir, "cancel + resume");
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn killed_server_resumes_the_job_on_restart_byte_identically() {
    let reference = reference_run("ref-kill");
    let root = scratch("root-kill");
    let server = ServerProc::start("kill", &root, 1, 4);

    let id = submit(&server.addr);
    wait_for_state(&server.addr, &id, "running", Duration::from_secs(30));
    // Wait for a real checkpoint so the restart exercises resume rather
    // than a fresh start.
    let job_dir = root.join(&id);
    let deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint(&job_dir) {
        assert!(Instant::now() < deadline, "no checkpoint appeared before the kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.kill();

    let server = ServerProc::start("kill-restart", &root, 1, 4);
    let (status, _, body) = http(&server.addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"jobs_recovered\":1"), "restart must rediscover the job: {body}");
    wait_for_state(&server.addr, &id, "done", Duration::from_secs(120));
    assert_artifacts_match(&reference, &job_dir, "a SIGKILL + restart");
    server.shutdown();
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn graceful_drain_parks_jobs_and_restart_finishes_them() {
    let reference = reference_run("ref-drain");
    let root = scratch("root-drain");
    let server = ServerProc::start("drain", &root, 1, 4);

    let id = submit(&server.addr);
    wait_for_state(&server.addr, &id, "running", Duration::from_secs(30));
    server.shutdown();

    // Drain checkpointed the run and recorded it as interrupted, not
    // cancelled: the client never asked for it to stop.
    let job_dir = root.join(&id);
    let job_json = String::from_utf8(read(&job_dir.join("job.json"))).expect("utf-8 job.json");
    assert!(job_json.contains("\"state\":\"interrupted\""), "drain must park the job: {job_json}");

    let server = ServerProc::start("drain-restart", &root, 1, 4);
    wait_for_state(&server.addr, &id, "done", Duration::from_secs(120));
    assert_artifacts_match(&reference, &job_dir, "a drain + restart");
    server.shutdown();
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}
