//! Run-analysis tests: `report` and the two-path `compare` gate.
//!
//! `report` is a pure reader over a finished run store, so its
//! `report.json` must agree exactly with the totals the engine itself
//! rendered into `metrics.json` — for every algorithm. The Chrome
//! trace export must be well-formed trace-event JSON. The replayer
//! must tolerate a torn final line (a writer killed mid-flush), stitch
//! resumed runs into multiple legs, and `compare` must exit 0 on a
//! self-comparison and 3 on a doctored regression.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use moela_persist::{decode, encode, Value};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("moela-analysis-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Standard tiny run (the golden-test configuration) with extra flags.
fn run_algorithm(algorithm: &str, dir: &Path, extra: &[&str]) -> Output {
    let mut args = vec![
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        algorithm,
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir.to_str().expect("utf-8 path"),
    ];
    args.extend_from_slice(extra);
    let out = moela_dse(&args);
    assert!(
        out.status.success(),
        "{algorithm} run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read_json(path: &Path) -> Value {
    let text =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    decode::from_str(&text).unwrap_or_else(|e| panic!("{} is not JSON: {e}", path.display()))
}

fn get<'a>(value: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = value;
    for key in path {
        cur = cur.field_opt(key).unwrap_or_else(|| panic!("missing field '{key}'"));
    }
    cur
}

fn entries(value: &Value) -> &[(String, Value)] {
    match value {
        Value::Object(fields) => fields,
        other => panic!("expected an object, got {}", other.kind()),
    }
}

/// Runs one algorithm, reports on it, and checks the replay-derived
/// `report.json` against the engine's own `metrics.json`: identical
/// counters, identical per-phase counts and totals, one clean leg.
fn assert_report_round_trips(algorithm: &str) {
    let dir = scratch(&format!("report-{algorithm}"));
    run_algorithm(algorithm, &dir, &[]);
    let out = moela_dse(&["report", dir.to_str().expect("utf-8 path")]);
    assert!(
        out.status.success(),
        "{algorithm} report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = read_json(&dir.join("report.json"));
    let metrics = read_json(&dir.join("metrics.json"));

    // The replayer recomputed exactly what the live aggregator saw:
    // the counter maps are equal as whole objects.
    assert_eq!(
        get(&report, &["counters"]),
        get(&metrics, &["telemetry", "counters"]),
        "{algorithm}: replayed counters must equal the live totals"
    );
    // Same phase set, same counts, same total durations.
    let live_phases = get(&metrics, &["telemetry", "phases"]);
    let replayed = entries(get(&report, &["phases"]));
    assert_eq!(replayed.len(), entries(live_phases).len(), "{algorithm}: phase sets must match");
    for (name, stat) in replayed {
        let live = get(live_phases, &[name]);
        for key in ["count", "total_us", "self_us", "max_us"] {
            assert_eq!(
                get(stat, &[key]),
                get(live, &[key]),
                "{algorithm}: phase '{name}' disagrees on {key}"
            );
        }
        // The quantiles are replay-only; nearest-rank keeps them within
        // the observed range.
        let p50 = get(stat, &["p50_us"]).as_u64().unwrap();
        let p99 = get(stat, &["p99_us"]).as_u64().unwrap();
        let max = get(stat, &["max_us"]).as_u64().unwrap();
        assert!(p50 <= p99 && p99 <= max, "{algorithm}: '{name}' quantiles out of order");
    }
    assert_eq!(
        get(&report, &["throughput", "evaluations"]),
        get(&metrics, &["telemetry", "counters", "evaluations"]),
        "{algorithm}: throughput must come from the replayed counter"
    );

    // A fresh single-process run replays to exactly one leg with fully
    // monotone timestamps and balanced spans.
    let events = get(&report, &["events"]);
    assert_eq!(get(events, &["legs"]).as_u64().unwrap(), 1, "{algorithm}: fresh run has one leg");
    assert_eq!(get(events, &["torn_tail"]), &Value::Bool(false), "{algorithm}: no torn tail");
    assert_eq!(get(events, &["unclosed_spans"]).as_u64().unwrap(), 0, "{algorithm}");
    assert_eq!(get(events, &["nesting_violations"]).as_u64().unwrap(), 0, "{algorithm}");

    assert_chrome_trace_well_formed(algorithm, &dir.join("trace.chrome.json"));
    let _ = fs::remove_dir_all(&dir);
}

/// The export must be loadable by Perfetto: a `traceEvents` array whose
/// complete events carry `ts` + `dur`, with per-worker evaluate lanes
/// and thread-name metadata.
fn assert_chrome_trace_well_formed(algorithm: &str, path: &Path) {
    let trace = read_json(path);
    let events = get(&trace, &["traceEvents"]).as_array().unwrap();
    assert!(!events.is_empty(), "{algorithm}: empty trace");
    let mut saw_complete = false;
    let mut saw_thread_names = false;
    let mut eval_worker_lane = false;
    for event in events {
        let ph = get(event, &["ph"]).as_str().unwrap();
        assert!(
            matches!(ph, "X" | "M" | "C" | "i"),
            "{algorithm}: unexpected phase '{ph}' in trace"
        );
        match ph {
            "X" => {
                saw_complete = true;
                assert!(event.field_opt("ts").is_some(), "{algorithm}: X event without ts");
                assert!(event.field_opt("dur").is_some(), "{algorithm}: X event without dur");
                if get(event, &["name"]).as_str().unwrap() == "evaluate"
                    && get(event, &["tid"]).as_u64().unwrap() >= 1
                {
                    eval_worker_lane = true;
                }
            }
            "M" if get(event, &["name"]).as_str().unwrap() == "thread_name" => {
                saw_thread_names = true;
            }
            _ => {}
        }
    }
    assert!(saw_complete, "{algorithm}: trace has no complete (X) events");
    assert!(saw_thread_names, "{algorithm}: trace has no thread_name metadata");
    assert!(eval_worker_lane, "{algorithm}: evaluate spans never land on a worker lane");
}

macro_rules! round_trip_tests {
    ($($name:ident: $algorithm:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_report_round_trips($algorithm);
        }
    )*};
}

round_trip_tests! {
    moela_report_round_trips: "moela";
    moead_report_round_trips: "moead";
    moos_report_round_trips: "moos";
    moo_stage_report_round_trips: "moo-stage";
    nsga2_report_round_trips: "nsga2";
    random_report_round_trips: "random";
}

/// MOELA attributes improvements to both operator families: the
/// MOEADr-style split must be populated, not zero-filled.
#[test]
fn moela_report_attributes_operator_improvements() {
    let dir = scratch("operators");
    run_algorithm("moela", &dir, &[]);
    let out = moela_dse(&["report", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let report = read_json(&dir.join("report.json"));
    let ls = get(&report, &["operators", "ls_improvements"]).as_u64().unwrap();
    let ea = get(&report, &["operators", "ea_improvements"]).as_u64().unwrap();
    assert!(ls > 0, "local search produced no improvements at this seed");
    assert!(ea > 0, "evolutionary variation produced no improvements at this seed");
    let _ = fs::remove_dir_all(&dir);
}

/// A writer killed mid-flush leaves a torn final line. The replayer
/// must keep everything before the tear, warn, and flag it in the
/// report rather than failing the analysis.
#[test]
fn report_tolerates_a_torn_final_line() {
    let dir = scratch("torn");
    run_algorithm("moela", &dir, &[]);
    let events_path = dir.join("events.jsonl");
    let mut bytes = fs::read(&events_path).expect("events.jsonl");
    assert!(bytes.ends_with(b"\n"), "the intact log is newline-terminated");
    // Chop mid-way through the last record, exactly what a SIGKILL
    // between write and flush leaves behind.
    bytes.truncate(bytes.len() - 7);
    fs::write(&events_path, &bytes).expect("truncate events.jsonl");

    let out = moela_dse(&["report", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "report must survive a torn tail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "no torn-tail warning on stderr: {stderr}");
    let report = read_json(&dir.join("report.json"));
    assert_eq!(get(&report, &["events", "torn_tail"]), &Value::Bool(true));
    let _ = fs::remove_dir_all(&dir);
}

/// A crash-plus-resume run writes two process legs into one log; the
/// replayer stitches them onto a single timeline and says so.
#[test]
fn report_stitches_a_resumed_run_into_two_legs() {
    let dir = scratch("legs");
    let dir_str = dir.to_str().expect("utf-8 path");
    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        "moela",
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir_str,
        "--crash-after-checkpoints",
        "2",
    ]);
    assert!(!out.status.success(), "the crash injection must abort the first leg");
    let out = moela_dse(&["resume", dir_str]);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));

    let out = moela_dse(&["report", dir_str]);
    assert!(out.status.success(), "report failed: {}", String::from_utf8_lossy(&out.stderr));
    let report = read_json(&dir.join("report.json"));
    assert_eq!(
        get(&report, &["events", "legs"]).as_u64().unwrap(),
        2,
        "one crash + one resume = two process legs"
    );
    assert_eq!(get(&report, &["resume", "resumed"]), &Value::Bool(true));
    let _ = fs::remove_dir_all(&dir);
}

/// An unfinished run (no trace.json yet) is a clear operational error,
/// not a crash or an empty report.
#[test]
fn report_refuses_an_unfinished_run() {
    let dir = scratch("unfinished");
    let dir_str = dir.to_str().expect("utf-8 path");
    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        "moela",
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir_str,
        "--crash-after-checkpoints",
        "2",
    ]);
    assert!(!out.status.success());
    let out = moela_dse(&["report", dir_str]);
    assert_eq!(out.status.code(), Some(1), "unfinished run is an operational error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not finished"), "unhelpful error: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

/// Rewrites a run's metrics into a one-entry benchmark snapshot, with
/// its throughput inflated so any real run regresses against it.
fn doctored_bench(metrics_path: &Path, out_path: &Path) {
    let mut metrics = read_json(metrics_path);
    let algorithm = get(&metrics, &["algorithm"]).as_str().unwrap().to_owned();
    let Value::Object(fields) = &mut metrics else { panic!("metrics.json is an object") };
    let telemetry = &mut fields.iter_mut().find(|(n, _)| n == "telemetry").expect("telemetry").1;
    let Value::Object(telemetry) = telemetry else { panic!("telemetry is an object") };
    telemetry.iter_mut().find(|(n, _)| n == "evals_per_sec").expect("evals_per_sec").1 =
        Value::F64(9.9e9);
    let bench = Value::object(vec![("runs", Value::Object(vec![(algorithm, metrics)]))]);
    fs::write(out_path, encode::to_string(&bench)).expect("write bench");
}

/// The regression gate: comparing a run against itself passes; against
/// a baseline with doctored (impossibly fast) throughput it exits 3.
#[test]
fn compare_passes_self_and_gates_a_doctored_regression() {
    let dir = scratch("compare");
    run_algorithm("moela", &dir, &[]);
    let dir_str = dir.to_str().expect("utf-8 path");

    let out = moela_dse(&["compare", dir_str, dir_str]);
    assert!(
        out.status.success(),
        "self-compare must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no regression"), "no verdict line: {stdout}");

    let bench = dir.join("doctored-bench.json");
    doctored_bench(&dir.join("metrics.json"), &bench);
    let out = moela_dse(&["compare", bench.to_str().unwrap(), dir_str]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "a throughput regression must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regress"), "no regression message: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}
