//! End-to-end tests for the self-healing supervision layer, driving
//! the real `moela-dse serve` binary over real sockets.
//!
//! The contract under test: every served job is supervised. Transient
//! failures retry from the last checkpoint with backoff and quarantine
//! after the attempt budget; a SIGKILL burns an attempt that survives
//! the restart via `job.json`; a crash loop quarantines on recovery;
//! `timeout_s` deadlines fire at step boundaries; and a disk fault
//! flips readiness to degraded-but-alive until the job settles clean.
//! Throughout, a healthy sibling job must finish byte-identical to a
//! plain `moela-dse run` — supervision never touches the artifacts.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

/// The healthy-sibling configuration, spelled both as `run` flags and
/// as a job spec, so the byte-identical comparison can't drift. The
/// chaos `slow` injector (200µs per evaluation, no faults) stretches
/// runs enough to observe mid-flight states reliably.
const ALGORITHM: &str = "nsga2";
const BUDGET: &str = "1000";
const POPULATION: &str = "8";
const SEED: &str = "7";
const CHAOS: &str = "slow=1";
const CHAOS_SEED: &str = "1";

fn clean_spec() -> String {
    format!(
        "{{\"algorithm\":\"{ALGORITHM}\",\"budget\":{BUDGET},\"population\":{POPULATION},\
         \"seed\":{SEED},\"chaos\":\"{CHAOS}\",\"chaos_seed\":{CHAOS_SEED}}}"
    )
}

/// A poison job: every evaluation faults (`panic=1`) and the default
/// `fail` policy latches the fault as a run error, which the engine
/// classifies transient — so the supervisor retries it until the
/// attempt budget quarantines it.
fn poison_spec() -> String {
    format!(
        "{{\"algorithm\":\"{ALGORITHM}\",\"budget\":200,\"population\":{POPULATION},\
         \"seed\":{SEED},\"chaos\":\"panic=1\",\"chaos_seed\":3}}"
    )
}

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-resilience-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Runs the reference `moela-dse run` into a scratch dir and returns it.
fn reference_run(name: &str) -> PathBuf {
    let dir = scratch(name);
    let out = moela_dse(&[
        "run",
        "--algorithm",
        ALGORITHM,
        "--budget",
        BUDGET,
        "--population",
        POPULATION,
        "--seed",
        SEED,
        "--chaos",
        CHAOS,
        "--chaos-seed",
        CHAOS_SEED,
        "--log-level",
        "quiet",
        "--run-dir",
        dir.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "reference run failed: {}", String::from_utf8_lossy(&out.stderr));
    dir
}

/// A `moela-dse serve` process bound to an ephemeral port, with
/// arbitrary extra flags for the supervision knobs.
struct ServerProc {
    child: Child,
    addr: String,
    root: PathBuf,
}

impl ServerProc {
    fn start(tag: &str, root: &Path, workers: u32, extra: &[&str]) -> Self {
        let addr_file = std::env::temp_dir()
            .join(format!("moela-resilience-addr-{tag}-{}", std::process::id()));
        let _ = fs::remove_file(&addr_file);
        let mut cmd = Command::new(BIN);
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf-8 path"),
            "--run-root",
            root.to_str().expect("utf-8 path"),
            "--workers",
            &workers.to_string(),
            "--queue-depth",
            "8",
        ]);
        cmd.args(extra);
        let child = cmd.stdout(Stdio::null()).stderr(Stdio::null()).spawn().expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = fs::read_to_string(&addr_file) {
                if !text.trim().is_empty() {
                    break text.trim().to_owned();
                }
            }
            assert!(Instant::now() < deadline, "server never wrote its address file");
            std::thread::sleep(Duration::from_millis(10));
        };
        let _ = fs::remove_file(&addr_file);
        ServerProc { child, addr, root: root.to_path_buf() }
    }

    /// Sends `POST /shutdown`, waits for a clean exit 0.
    fn shutdown(mut self) {
        let (status, _, _) = http(&self.addr, "POST", "/shutdown", None);
        assert_eq!(status, 200, "shutdown must be accepted");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(code) = self.child.try_wait().expect("wait") {
                assert!(code.success(), "drained server must exit 0, got {code}");
                return;
            }
            assert!(Instant::now() < deadline, "server did not drain in time");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn kill(mut self) {
        self.child.kill().expect("kill serve");
        self.child.wait().expect("reap serve");
    }
}

/// A panicking test must not leak its server process.
impl Drop for ServerProc {
    fn drop(&mut self) {
        if self.child.kill().is_ok() {
            let _ = self.child.wait();
        }
    }
}

/// One HTTP/1.1 request; returns (status, headers, body).
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let (head, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_owned(), payload.to_owned())
}

fn submit(addr: &str, spec: &str) -> String {
    let (status, _, body) = http(addr, "POST", "/jobs", Some(spec));
    assert_eq!(status, 202, "submit must be accepted: {body}");
    let rest = body.split("\"id\":\"").nth(1).unwrap_or_else(|| panic!("no id in {body}"));
    rest.split('"').next().expect("terminated id").to_owned()
}

fn job_body(addr: &str, id: &str) -> String {
    let (status, _, body) = http(addr, "GET", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200, "job lookup failed: {body}");
    body
}

fn job_state(addr: &str, id: &str) -> String {
    let body = job_body(addr, id);
    let rest = body.split("\"state\":\"").nth(1).unwrap_or_else(|| panic!("no state in {body}"));
    rest.split('"').next().expect("terminated state").to_owned()
}

/// Polls until the job reaches `want`, failing fast on any *other*
/// terminal state.
fn wait_for_state(addr: &str, id: &str, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = job_state(addr, id);
        if state == want {
            return;
        }
        if ["done", "failed", "cancelled", "quarantined", "deadline_exceeded"]
            .contains(&state.as_str())
        {
            let body = job_body(addr, id);
            panic!("job {id} reached terminal state '{state}' while waiting for '{want}': {body}");
        }
        assert!(Instant::now() < deadline, "timed out waiting for '{want}' (job {id}: {state})");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls `predicate` over the job's `job.json` until it holds — the
/// on-disk manifest lags the in-memory state by one persist call, so
/// asserting it immediately after an HTTP state change is a race.
fn wait_for_on_disk(job_dir: &Path, needle: &str, timeout: Duration) -> String {
    let path = job_dir.join("job.json");
    let deadline = Instant::now() + timeout;
    loop {
        let text = fs::read_to_string(&path).unwrap_or_default();
        if text.contains(needle) {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "job.json never contained {needle:?}; last contents: {text}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn has_checkpoint(job_dir: &Path) -> bool {
    fs::read_dir(job_dir.join("checkpoints"))
        .map(|entries| {
            entries.flatten().any(|entry| {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                name.starts_with("ckpt-") && name.ends_with(".json")
            })
        })
        .unwrap_or(false)
}

/// The artifacts the byte-identical contract covers.
const ARTIFACTS: [&str; 4] = ["trace.csv", "front.csv", "trace.json", "front.json"];

fn assert_artifacts_match(reference: &Path, job_dir: &Path, context: &str) {
    for file in ARTIFACTS {
        assert_eq!(
            read(&reference.join(file)),
            read(&job_dir.join(file)),
            "{file} differs from the reference run after {context}"
        );
    }
}

/// Pulls `"name":<u64>` out of a flat JSON rendering.
fn json_u64(body: &str, name: &str) -> Option<u64> {
    let rest = body.split(&format!("\"{name}\":")).nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn poison_job_quarantines_while_a_sibling_completes_byte_identically() {
    let reference = reference_run("ref-poison");
    let root = scratch("root-poison");
    // Two workers: the poison job must not starve the healthy sibling.
    let server =
        ServerProc::start("poison", &root, 2, &["--max-attempts", "2", "--retry-base-ms", "50"]);

    let poisoned = submit(&server.addr, &poison_spec());
    let clean = submit(&server.addr, &clean_spec());

    wait_for_state(&server.addr, &poisoned, "quarantined", Duration::from_secs(120));
    let body = job_body(&server.addr, &poisoned);
    assert!(
        body.contains("quarantined after 2 attempts"),
        "quarantine must cite the exhausted budget: {body}"
    );
    assert!(body.contains("\"history\""), "job detail must expose the attempt history: {body}");

    // The attempt history survives on disk: a restarted server knows
    // this job is poison without re-running it.
    let job_json =
        wait_for_on_disk(&root.join(&poisoned), "\"quarantined\"", Duration::from_secs(60));
    assert!(job_json.contains("\"attempts\":2"), "attempt counter must persist: {job_json}");
    // The retry shows up in history as a re-queue carrying attempt 1's
    // error, followed by attempt 2 running.
    assert!(
        job_json.contains("{\"state\":\"queued\",\"attempt\":1,\"error\""),
        "history must record the retry re-queue with its error: {job_json}"
    );
    assert!(
        job_json.contains("{\"state\":\"running\",\"attempt\":2}"),
        "history must record the second attempt: {job_json}"
    );

    // Supervision counters surface in /metrics.
    let (status, _, metrics) = http(&server.addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(json_u64(&metrics, "jobs_retried") >= Some(1), "{metrics}");
    assert_eq!(json_u64(&metrics, "jobs_quarantined"), Some(1), "{metrics}");

    // The sibling is untouched by its neighbor's crash-loop.
    wait_for_state(&server.addr, &clean, "done", Duration::from_secs(120));
    assert_artifacts_match(&reference, &server.root.join(&clean), "a quarantined neighbor");

    server.shutdown();
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn sigkill_burns_an_attempt_and_restart_resumes_the_counter() {
    let reference = reference_run("ref-sigkill");
    let root = scratch("root-sigkill");
    let server = ServerProc::start("sigkill", &root, 1, &[]);

    let id = submit(&server.addr, &clean_spec());
    wait_for_state(&server.addr, &id, "running", Duration::from_secs(30));
    let job_dir = root.join(&id);
    // Wait for a real checkpoint so the second attempt resumes rather
    // than restarting from scratch.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint(&job_dir) {
        assert!(Instant::now() < deadline, "no checkpoint appeared before the kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The first attempt was persisted at pickup, so the SIGKILL cannot
    // erase it.
    let job_json = wait_for_on_disk(&job_dir, "\"attempts\":1", Duration::from_secs(30));
    assert!(job_json.contains("\"running\""), "{job_json}");
    server.kill();

    let server = ServerProc::start("sigkill-restart", &root, 1, &[]);
    wait_for_state(&server.addr, &id, "done", Duration::from_secs(120));
    // The recovered execution is attempt 2: the counter carried over.
    let job_json = wait_for_on_disk(&job_dir, "\"done\"", Duration::from_secs(60));
    assert!(
        job_json.contains("\"attempts\":2"),
        "restart must resume the attempt counter, not reset it: {job_json}"
    );
    assert_artifacts_match(&reference, &job_dir, "a SIGKILL mid-attempt");

    server.shutdown();
    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn crash_loop_across_restarts_is_quarantined_on_recovery() {
    let root = scratch("root-crashloop");
    let server = ServerProc::start("crashloop", &root, 1, &["--max-attempts", "1"]);

    let id = submit(&server.addr, &clean_spec());
    wait_for_state(&server.addr, &id, "running", Duration::from_secs(30));
    let job_dir = root.join(&id);
    wait_for_on_disk(&job_dir, "\"attempts\":1", Duration::from_secs(30));
    server.kill();

    // Recovery sees a job that died mid-attempt with its budget already
    // spent: re-running it would crash-loop forever, so it quarantines.
    let server = ServerProc::start("crashloop-restart", &root, 1, &["--max-attempts", "1"]);
    let deadline = Instant::now() + Duration::from_secs(60);
    while job_state(&server.addr, &id) != "quarantined" {
        assert!(Instant::now() < deadline, "recovery never quarantined the crash-looping job");
        std::thread::sleep(Duration::from_millis(10));
    }
    let body = job_body(&server.addr, &id);
    assert!(body.contains("crash loop"), "quarantine must name the crash loop: {body}");
    let (_, _, metrics) = http(&server.addr, "GET", "/metrics", None);
    assert_eq!(json_u64(&metrics, "jobs_quarantined"), Some(1), "{metrics}");

    server.shutdown();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn timeout_s_deadline_interrupts_at_a_step_boundary() {
    let root = scratch("root-deadline");
    let server = ServerProc::start("deadline", &root, 1, &[]);

    // ~4s of work (20k evaluations × 200µs) against a 1s deadline.
    let spec = format!(
        "{{\"algorithm\":\"{ALGORITHM}\",\"budget\":20000,\"population\":{POPULATION},\
         \"seed\":{SEED},\"chaos\":\"{CHAOS}\",\"chaos_seed\":{CHAOS_SEED},\"timeout_s\":1}}"
    );
    let id = submit(&server.addr, &spec);
    wait_for_state(&server.addr, &id, "deadline_exceeded", Duration::from_secs(60));
    let body = job_body(&server.addr, &id);
    assert!(
        body.contains("deadline exceeded: timeout_s=1"),
        "the error must cite the configured deadline: {body}"
    );
    let (_, _, metrics) = http(&server.addr, "GET", "/metrics", None);
    assert_eq!(json_u64(&metrics, "jobs_deadline_exceeded"), Some(1), "{metrics}");

    // The deadline parked the run cooperatively: the directory is a
    // valid run store a human can still resume by hand.
    let job_dir = root.join(&id);
    assert!(job_dir.join("manifest.json").is_file(), "deadline must leave the manifest");

    server.shutdown();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn disk_fault_degrades_readiness_then_recovers() {
    let root = scratch("root-diskfault");
    // A long retry backoff keeps the degraded window wide open for the
    // probes below; the fault is healed before the retry fires.
    let server = ServerProc::start(
        "diskfault",
        &root,
        1,
        &["--max-attempts", "3", "--retry-base-ms", "2000"],
    );

    // Before any fault: alive and ready.
    let (status, _, health) = http(&server.addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(health.contains("\"ready\":true"), "{health}");
    let (status, _, _) = http(&server.addr, "GET", "/readyz", None);
    assert_eq!(status, 200);

    let id = submit(&server.addr, &clean_spec());
    wait_for_state(&server.addr, &id, "running", Duration::from_secs(30));
    let job_dir = root.join(&id);
    let deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint(&job_dir) {
        assert!(Instant::now() < deadline, "no checkpoint appeared before the fault");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Inject the disk fault: the checkpoints directory becomes a plain
    // file, so every subsequent checkpoint write fails with ENOTDIR.
    // (chmod is useless here — tests may run as root.)
    let ckpt_dir = job_dir.join("checkpoints");
    fs::remove_dir_all(&ckpt_dir).expect("remove checkpoints dir");
    fs::write(&ckpt_dir, b"not a directory").expect("plant the fault");

    // Liveness holds while readiness degrades: /healthz stays 200 with
    // live:true, /readyz flips to 503.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, health) = http(&server.addr, "GET", "/healthz", None);
        assert_eq!(status, 200, "liveness must hold through a disk fault");
        assert!(health.contains("\"live\":true"), "{health}");
        if health.contains("\"disk_degraded\":true") {
            assert!(health.contains("\"ready\":false"), "{health}");
            break;
        }
        assert!(Instant::now() < deadline, "disk fault never degraded the server: {health}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _, ready) = http(&server.addr, "GET", "/readyz", None);
    assert_eq!(status, 503, "readiness must fail while disk-degraded: {ready}");

    // The failure was classified and counted, and the job is retrying
    // rather than dead.
    let (_, _, metrics) = http(&server.addr, "GET", "/metrics", None);
    assert!(json_u64(&metrics, "disk_write_failures") >= Some(1), "{metrics}");

    // Heal the disk before the backoff expires; the retry then runs
    // clean, the job completes, and readiness recovers.
    fs::remove_file(&ckpt_dir).expect("remove the fault");
    fs::create_dir_all(&ckpt_dir).expect("restore checkpoints dir");

    wait_for_state(&server.addr, &id, "done", Duration::from_secs(180));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, health) = http(&server.addr, "GET", "/healthz", None);
        assert_eq!(status, 200);
        if health.contains("\"disk_degraded\":false") && health.contains("\"ready\":true") {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered from the disk fault: {health}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _, _) = http(&server.addr, "GET", "/readyz", None);
    assert_eq!(status, 200, "readiness must recover after a clean settle");

    server.shutdown();
    let _ = fs::remove_dir_all(&root);
}
