//! End-to-end crash/resume tests that drive the real `moela-dse` binary.
//!
//! The contract under test is the persistence tentpole: a run killed at
//! an arbitrary checkpoint boundary and resumed — even with a different
//! thread count — must produce `trace.csv` and `front.csv` files that are
//! byte-identical to the uninterrupted run, and damaged checkpoints must
//! degrade (fall back, then fail with a diagnostic) instead of panicking.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

/// A fresh scratch directory under the target-local tmp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-dse-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Shared flags for one run cell; every run in a comparison must use the
/// same values so only the crash/resume cycle differs.
struct Cell {
    algorithm: &'static str,
    threads: &'static str,
    budget: &'static str,
}

impl Cell {
    fn run_args<'a>(&'a self, dir: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
        let mut args = vec![
            "run",
            "--app",
            "BFS",
            "--objectives",
            "3",
            "--algorithm",
            self.algorithm,
            "--budget",
            self.budget,
            "--population",
            "8",
            "--seed",
            "7",
            "--threads",
            self.threads,
            "--run-dir",
            dir,
        ];
        args.extend_from_slice(extra);
        args
    }
}

/// Runs `cell` uninterrupted, then again with an injected crash after
/// `crash_after` checkpoints, resumes the crashed run, and asserts the
/// two run directories hold byte-identical traces and fronts.
fn assert_crash_resume_is_bit_identical(cell: &Cell, crash_after: &str) {
    let tag = format!("{}-t{}", cell.algorithm, cell.threads);
    let full = scratch(&format!("full-{tag}"));
    let full_dir = full.to_str().expect("utf-8 path");
    let out = moela_dse(&cell.run_args(full_dir, &[]));
    assert!(out.status.success(), "uninterrupted run failed: {}", stderr_of(&out));

    let crashed = scratch(&format!("crashed-{tag}"));
    let crashed_dir = crashed.to_str().expect("utf-8 path");
    let out = moela_dse(&cell.run_args(crashed_dir, &["--crash-after-checkpoints", crash_after]));
    assert!(!out.status.success(), "crash injection must abort the process");
    assert!(
        !crashed.join("trace.csv").exists(),
        "a crashed run must not have written final outputs"
    );

    let out = moela_dse(&["resume", crashed_dir]);
    assert!(out.status.success(), "resume failed: {}", stderr_of(&out));

    for file in ["trace.csv", "front.csv"] {
        assert_eq!(
            read(&full.join(file)),
            read(&crashed.join(file)),
            "{file} differs after crash+resume for {tag}"
        );
    }
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}

macro_rules! crash_resume_tests {
    ($($name:ident: $algorithm:literal / $threads:literal / budget $budget:literal;)*) => {$(
        #[test]
        fn $name() {
            let cell = Cell { algorithm: $algorithm, threads: $threads, budget: $budget };
            assert_crash_resume_is_bit_identical(&cell, "1");
        }
    )*};
}

crash_resume_tests! {
    moela_resumes_bit_identical_single_threaded: "moela" / "1" / budget "120";
    moela_resumes_bit_identical_multi_threaded: "moela" / "4" / budget "120";
    moead_resumes_bit_identical_single_threaded: "moead" / "1" / budget "120";
    moead_resumes_bit_identical_multi_threaded: "moead" / "4" / budget "120";
    nsga2_resumes_bit_identical_single_threaded: "nsga2" / "1" / budget "120";
    nsga2_resumes_bit_identical_multi_threaded: "nsga2" / "4" / budget "120";
    moos_resumes_bit_identical_single_threaded: "moos" / "1" / budget "160";
    moos_resumes_bit_identical_multi_threaded: "moos" / "4" / budget "160";
    moo_stage_resumes_bit_identical_single_threaded: "moo-stage" / "1" / budget "160";
    moo_stage_resumes_bit_identical_multi_threaded: "moo-stage" / "4" / budget "160";
    random_resumes_bit_identical_single_threaded: "random" / "1" / budget "200";
    random_resumes_bit_identical_multi_threaded: "random" / "4" / budget "200";
}

/// A crashed MOELA run directory with at least two intact checkpoints,
/// plus a completed sibling for byte comparison.
fn crashed_run_pair(name: &str) -> (PathBuf, PathBuf) {
    let cell = Cell { algorithm: "moela", threads: "1", budget: "120" };
    let full = scratch(&format!("{name}-full"));
    let out = moela_dse(&cell.run_args(full.to_str().expect("utf-8 path"), &[]));
    assert!(out.status.success(), "uninterrupted run failed: {}", stderr_of(&out));

    let crashed = scratch(&format!("{name}-crashed"));
    let out = moela_dse(
        &cell.run_args(crashed.to_str().expect("utf-8 path"), &["--crash-after-checkpoints", "3"]),
    );
    assert!(!out.status.success(), "crash injection must abort the process");
    (full, crashed)
}

fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir.join("checkpoints"))
        .expect("checkpoints dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
}

/// Flips one payload byte so the CRC no longer matches.
fn corrupt(path: &Path) {
    let mut bytes = read(path);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(path, bytes).expect("rewrite checkpoint");
}

#[test]
fn resume_falls_back_when_the_newest_checkpoint_is_corrupt() {
    let (full, crashed) = crashed_run_pair("fallback");
    let files = checkpoint_files(&crashed);
    assert!(files.len() >= 2, "need an older checkpoint to fall back to");
    corrupt(files.last().expect("newest checkpoint"));

    let out = moela_dse(&["resume", crashed.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "fallback resume failed: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("skipped corrupt checkpoint"),
        "fallback must warn about the skipped file, got: {}",
        stderr_of(&out)
    );
    for file in ["trace.csv", "front.csv"] {
        assert_eq!(read(&full.join(file)), read(&crashed.join(file)), "{file} differs");
    }
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}

#[test]
fn resume_reports_a_diagnostic_when_every_checkpoint_is_damaged() {
    let (full, crashed) = crashed_run_pair("all-damaged");
    for file in checkpoint_files(&crashed) {
        corrupt(&file);
    }

    let out = moela_dse(&["resume", crashed.to_str().expect("utf-8 path")]);
    let stderr = stderr_of(&out);
    assert!(!out.status.success(), "resume must fail when no checkpoint is intact");
    assert!(stderr.contains("error:"), "expected a user-facing diagnostic, got: {stderr}");
    assert!(!stderr.contains("panicked"), "corruption must not panic: {stderr}");
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}

#[test]
fn resume_reports_an_empty_checkpoint_directory() {
    let (full, crashed) = crashed_run_pair("emptied");
    for file in checkpoint_files(&crashed) {
        fs::remove_file(&file).expect("delete checkpoint");
    }

    let out = moela_dse(&["resume", crashed.to_str().expect("utf-8 path")]);
    let stderr = stderr_of(&out);
    assert!(!out.status.success());
    assert!(stderr.contains("no checkpoints"), "got: {stderr}");
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}

#[test]
fn resume_refuses_a_directory_without_a_manifest() {
    let dir = scratch("no-manifest");
    fs::create_dir_all(&dir).expect("mkdir");
    let out = moela_dse(&["resume", dir.to_str().expect("utf-8 path")]);
    let stderr = stderr_of(&out);
    assert!(!out.status.success());
    assert!(stderr.contains("error:"), "got: {stderr}");
    assert!(!stderr.contains("panicked"), "got: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_future_checkpoint_format() {
    let (full, crashed) = crashed_run_pair("future-format");
    let manifest = crashed.join("manifest.json");
    let text = String::from_utf8(read(&manifest)).expect("manifest is UTF-8");
    assert!(text.contains("\"format\":1,"), "manifest format field moved? {text}");
    fs::write(&manifest, text.replace("\"format\":1,", "\"format\":99,"))
        .expect("rewrite manifest");

    let out = moela_dse(&["resume", crashed.to_str().expect("utf-8 path")]);
    let stderr = stderr_of(&out);
    assert!(!out.status.success());
    assert!(stderr.contains("format 99"), "must name the offending version, got: {stderr}");
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}

#[test]
fn version_subcommand_prints_the_build_version() {
    for spelling in ["version", "--version", "-V"] {
        let out = moela_dse(&[spelling]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(stdout.trim(), format!("moela-dse {}", env!("CARGO_PKG_VERSION")));
    }
}
