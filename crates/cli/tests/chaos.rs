//! End-to-end fault-containment tests that drive the real `moela-dse`
//! binary under seeded chaos injection.
//!
//! The contract under test is the fault-containment tentpole:
//!
//! * every algorithm runs to completion under every injected fault kind
//!   (panic, NaN, Inf, wrong arity), producing traces and fronts that
//!   are bit-identical at any thread count;
//! * a chaotic run killed at a checkpoint boundary and resumed is
//!   byte-identical to the uninterrupted chaotic run (the fault stream
//!   round-trips through the checkpoint);
//! * contradictory flag combinations are rejected with exit code 2;
//! * a `fail`-policy fault surfaces as a structured `error:` exit.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

/// One chaos spec per injected fault kind, each at a rate that faults
/// several times within a 120-evaluation budget without drowning the run.
const FAULT_KINDS: [(&str, &str); 4] =
    [("panic", "panic=0.05"), ("nan", "nan=0.05"), ("inf", "inf=0.05"), ("arity", "arity=0.05")];

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-chaos-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Base flags for one chaotic run cell writing into `dir`.
fn chaos_args<'a>(
    algorithm: &'a str,
    spec: &'a str,
    threads: &'a str,
    dir: &'a str,
    extra: &[&'a str],
) -> Vec<&'a str> {
    let mut args = vec![
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        algorithm,
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--threads",
        threads,
        "--run-dir",
        dir,
        "--chaos",
        spec,
        "--chaos-seed",
        "41",
        "--fault-policy",
        "penalize-worst",
        "--eval-retries",
        "1",
    ];
    args.extend_from_slice(extra);
    args
}

/// Extracts the `"faults":{...}` object from a metrics.json body. The
/// object holds only flat counters, so it ends at the first `}`.
fn faults_object(metrics: &str) -> &str {
    let tail = metrics.split("\"faults\":{").nth(1).expect("metrics.json has a faults object");
    tail.split('}').next().expect("the faults object closes")
}

/// Extracts the contained-fault total from a metrics.json body.
fn fault_count(metrics: &str) -> u64 {
    let tail = faults_object(metrics).split("\"total\":").nth(1).expect("faults has a total");
    tail.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("integer")
}

/// Runs `algorithm` under each fault kind at 1 and 4 threads and asserts
/// the deterministic artifacts (trace, front) are byte-identical across
/// thread counts, that faults were actually injected and contained (per
/// the metrics.json fault counters), and that the front holds only
/// finite objective values.
fn assert_chaos_matrix_row(algorithm: &str) {
    for (kind, spec) in FAULT_KINDS {
        let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
        for threads in ["1", "4"] {
            let dir = scratch(&format!("matrix-{algorithm}-{kind}-t{threads}"));
            let dir_str = dir.to_str().expect("utf-8 path");
            let out = moela_dse(&chaos_args(algorithm, spec, threads, dir_str, &[]));
            assert!(
                out.status.success(),
                "{algorithm} under {kind} chaos (threads {threads}) failed: {}",
                stderr_of(&out)
            );

            let metrics = String::from_utf8_lossy(&read(&dir.join("metrics.json"))).into_owned();
            assert!(
                fault_count(&metrics) > 0,
                "{algorithm}/{kind}: the chaos spec must actually inject ({metrics})"
            );

            let front = read(&dir.join("front.csv"));
            let front_text = String::from_utf8_lossy(&front);
            for token in front_text.lines().skip(1).flat_map(|l| l.split(',')) {
                let v: f64 = token.parse().unwrap_or_else(|e| {
                    panic!("{algorithm}/{kind}: non-numeric front cell '{token}': {e}")
                });
                assert!(v.is_finite(), "{algorithm}/{kind}: non-finite front value {v}");
                assert!(v < 1e30, "{algorithm}/{kind}: penalty vector leaked onto the front");
            }

            let artifacts = (read(&dir.join("trace.csv")), front);
            match &reference {
                None => reference = Some(artifacts),
                Some(first) => assert_eq!(
                    first, &artifacts,
                    "{algorithm}/{kind}: artifacts differ between 1 and 4 threads"
                ),
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

macro_rules! chaos_matrix_tests {
    ($($name:ident: $algorithm:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_chaos_matrix_row($algorithm);
        }
    )*};
}

chaos_matrix_tests! {
    moela_contains_every_fault_kind_at_any_thread_count: "moela";
    moead_contains_every_fault_kind_at_any_thread_count: "moead";
    moos_contains_every_fault_kind_at_any_thread_count: "moos";
    moo_stage_contains_every_fault_kind_at_any_thread_count: "moo-stage";
    nsga2_contains_every_fault_kind_at_any_thread_count: "nsga2";
    random_contains_every_fault_kind_at_any_thread_count: "random";
}

/// Kills a chaotic run after one checkpoint, resumes it, and asserts the
/// artifacts are byte-identical to the uninterrupted chaotic run — the
/// fault stream (chaos ordinal) and fault counters round-trip through
/// the checkpoint envelope.
fn assert_chaos_crash_resume_is_bit_identical(algorithm: &str) {
    let spec = "panic=0.03,nan=0.03,arity=0.02";
    let full = scratch(&format!("chaos-full-{algorithm}"));
    let full_dir = full.to_str().expect("utf-8 path");
    let out = moela_dse(&chaos_args(algorithm, spec, "1", full_dir, &[]));
    assert!(out.status.success(), "uninterrupted chaotic run failed: {}", stderr_of(&out));

    let crashed = scratch(&format!("chaos-crashed-{algorithm}"));
    let crashed_dir = crashed.to_str().expect("utf-8 path");
    let out = moela_dse(&chaos_args(
        algorithm,
        spec,
        "1",
        crashed_dir,
        &["--crash-after-checkpoints", "1"],
    ));
    assert!(!out.status.success(), "crash injection must abort the process");

    // Resume with a different thread count: still byte-identical.
    let out = moela_dse(&["resume", crashed_dir, "--threads", "4"]);
    assert!(out.status.success(), "chaotic resume failed: {}", stderr_of(&out));

    for file in ["trace.csv", "front.csv"] {
        assert_eq!(
            read(&full.join(file)),
            read(&crashed.join(file)),
            "{file} differs after chaotic crash+resume for {algorithm}"
        );
    }
    // metrics.json carries wall-clock data so whole files cannot be
    // compared, but the fault counters must round-trip exactly through
    // the checkpoint envelope.
    let faults_of = |dir: &Path| {
        let metrics = String::from_utf8_lossy(&read(&dir.join("metrics.json"))).into_owned();
        faults_object(&metrics).to_owned()
    };
    assert_eq!(
        faults_of(&full),
        faults_of(&crashed),
        "fault counters differ after chaotic crash+resume for {algorithm}"
    );
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}

#[test]
fn moela_chaotic_crash_resume_is_bit_identical() {
    assert_chaos_crash_resume_is_bit_identical("moela");
}

#[test]
fn moead_chaotic_crash_resume_is_bit_identical() {
    assert_chaos_crash_resume_is_bit_identical("moead");
}

#[test]
fn random_chaotic_crash_resume_is_bit_identical() {
    assert_chaos_crash_resume_is_bit_identical("random");
}

#[test]
fn skip_policy_also_completes_under_chaos() {
    let dir = scratch("skip-policy");
    let dir_str = dir.to_str().expect("utf-8 path");
    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        "nsga2",
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir_str,
        "--chaos",
        "nan=0.1",
        "--chaos-seed",
        "5",
        "--fault-policy",
        "skip",
    ]);
    assert!(out.status.success(), "skip-policy run failed: {}", stderr_of(&out));
    let metrics = String::from_utf8_lossy(&read(&dir.join("metrics.json"))).into_owned();
    assert!(fault_count(&metrics) > 0, "nan=0.1 must inject: {metrics}");
    assert!(
        faults_object(&metrics).contains("\"fault_policy\":\"skip\""),
        "metrics record the policy: {metrics}"
    );
    // The deprecated health.json is gone for good: current runs write
    // the fault counters into metrics.json only.
    assert!(!dir.join("health.json").exists(), "health.json must no longer be written");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fail_policy_surfaces_a_structured_error() {
    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--algorithm",
        "random",
        "--budget",
        "50",
        "--chaos",
        "panic=1",
        "--chaos-seed",
        "1",
        "--fault-policy",
        "fail",
    ]);
    assert_eq!(out.status.code(), Some(1), "a latched fail fault exits 1");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("error:"), "expected a user-facing error, got: {stderr}");
    assert!(stderr.contains("panic"), "the error names the fault kind: {stderr}");
    assert!(!stderr.contains("panicked at"), "the process itself must not panic: {stderr}");
}

#[test]
fn contradictory_flag_combinations_exit_with_code_2() {
    let cases: [&[&str]; 3] = [
        &["run", "--fault-policy", "fail", "--eval-retries", "2"],
        &["run", "--chaos", "panic=0.1"],
        &["run", "--chaos-seed", "9"],
    ];
    for args in cases {
        let out = moela_dse(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "contradictory combo {args:?} must exit 2, stderr: {}",
            stderr_of(&out)
        );
        assert!(stderr_of(&out).contains("error:"), "combo {args:?} prints a diagnostic");
    }
}

#[test]
fn malformed_flags_still_exit_with_code_1() {
    for args in [
        ["run", "--chaos", "panik=0.1", "--chaos-seed", "1"],
        ["run", "--fault-policy", "explode", "--budget", "10"],
    ] {
        let out = moela_dse(&args);
        assert_eq!(out.status.code(), Some(1), "malformed {args:?} exits 1");
    }
}

#[test]
fn clean_runs_print_no_health_line_but_chaotic_runs_do() {
    let out = moela_dse(&["run", "--app", "BFS", "--algorithm", "random", "--budget", "40"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        !stdout.contains("evaluation health"),
        "clean run must not print a health line: {stdout}"
    );

    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--algorithm",
        "random",
        "--budget",
        "40",
        "--chaos",
        "nan=0.2",
        "--chaos-seed",
        "3",
        "--fault-policy",
        "penalize-worst",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("evaluation health:"), "chaotic run prints health: {stdout}");
    assert!(stdout.contains("chaos injection:"), "chaotic run announces chaos: {stdout}");
}

#[test]
fn manifest_with_chaos_but_no_seed_exits_2_without_panicking() {
    // A resumable chaotic run directory, then a doctored manifest that
    // configures chaos without recording its seed — the same
    // contradiction `--chaos` without `--chaos-seed` is on the command
    // line, arriving through the bypass path the flag parser never sees.
    let dir = scratch("manifest-no-seed");
    let dir_str = dir.to_str().expect("utf-8 path");
    let out = moela_dse(&chaos_args(
        "random",
        "nan=0.05",
        "1",
        dir_str,
        &["--crash-after-checkpoints", "1"],
    ));
    assert!(!out.status.success(), "crash injection must abort the process");

    let manifest = dir.join("manifest.json");
    let text = String::from_utf8(read(&manifest)).expect("manifest is UTF-8");
    assert!(text.contains("\"chaos_seed\":41,"), "chaos_seed field moved? {text}");
    fs::write(&manifest, text.replace("\"chaos_seed\":41,", "")).expect("rewrite manifest");

    let out = moela_dse(&["resume", dir_str]);
    let stderr = stderr_of(&out);
    assert_eq!(
        out.status.code(),
        Some(2),
        "a chaos manifest without a seed is a user error (exit 2), stderr: {stderr}"
    );
    assert!(stderr.contains("error:"), "expected a structured diagnostic, got: {stderr}");
    assert!(stderr.contains("chaos"), "the diagnostic names the contradiction: {stderr}");
    assert!(!stderr.contains("panicked"), "the process must not panic: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}
