//! Evaluation-cache parity tests: caching must be invisible in every
//! deterministic artifact.
//!
//! The contract under test is the two-layer evaluation cache:
//!
//! * for every optimizer, `trace.csv` and `front.csv` are byte-identical
//!   with the cache on (any capacity, including eviction-heavy tiny
//!   ones) and off, at 1 and 4 threads;
//! * the same holds under `--chaos` fault injection, where the cache
//!   sits below the injector and faulted evaluations bypass it;
//! * `metrics.json` reports the cache and routing-reuse counters.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-cache-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Standard tiny run (the golden-test configuration) with extra flags.
fn run_algorithm(algorithm: &str, dir: &Path, extra: &[&str]) {
    let mut args = vec![
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        algorithm,
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir.to_str().expect("utf-8 path"),
    ];
    args.extend_from_slice(extra);
    let out = moela_dse(&args);
    assert!(
        out.status.success(),
        "{algorithm} run {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Runs `algorithm` with `extra` cells on top of the cache-off baseline
/// and asserts the deterministic artifacts never move by a byte.
fn assert_cache_is_invisible(algorithm: &str, chaos: &[&str]) {
    let baseline = scratch(&format!("{algorithm}-baseline"));
    let mut off = vec!["--eval-cache", "off", "--threads", "1"];
    off.extend_from_slice(chaos);
    run_algorithm(algorithm, &baseline, &off);
    let reference = (read(&baseline.join("trace.csv")), read(&baseline.join("front.csv")));
    let _ = fs::remove_dir_all(&baseline);

    // Default capacity at both thread counts, plus a capacity so small
    // that almost every insert evicts — eviction must be invisible too.
    let cells: [&[&str]; 3] =
        [&["--threads", "1"], &["--threads", "4"], &["--eval-cache", "2", "--threads", "4"]];
    for (i, cell) in cells.iter().enumerate() {
        let dir = scratch(&format!("{algorithm}-cell{i}"));
        let mut args = cell.to_vec();
        args.extend_from_slice(chaos);
        run_algorithm(algorithm, &dir, &args);
        let artifacts = (read(&dir.join("trace.csv")), read(&dir.join("front.csv")));
        assert_eq!(
            reference, artifacts,
            "{algorithm}: artifacts with cache cell {cell:?} differ from the cache-off baseline"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

macro_rules! parity_tests {
    ($($name:ident: $algorithm:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_cache_is_invisible($algorithm, &[]);
        }
    )*};
}

parity_tests! {
    moela_artifacts_identical_with_cache_on_or_off: "moela";
    moead_artifacts_identical_with_cache_on_or_off: "moead";
    moos_artifacts_identical_with_cache_on_or_off: "moos";
    moo_stage_artifacts_identical_with_cache_on_or_off: "moo-stage";
    nsga2_artifacts_identical_with_cache_on_or_off: "nsga2";
    random_artifacts_identical_with_cache_on_or_off: "random";
}

/// Under chaos the cache sits below the injector: the fault stream
/// consumes ordinals identically and faulted evaluations are never
/// admitted, so the artifacts still match the cache-off chaotic run.
#[test]
fn chaotic_artifacts_identical_with_cache_on_or_off() {
    let chaos = [
        "--chaos",
        "panic=0.03,nan=0.03,arity=0.02",
        "--chaos-seed",
        "41",
        "--fault-policy",
        "penalize-worst",
        "--eval-retries",
        "1",
    ];
    assert_cache_is_invisible("moela", &chaos);
    assert_cache_is_invisible("nsga2", &chaos);
}

/// Pulls the `"cache":{...}` object out of a metrics.json body. The
/// object holds only flat counters, so it ends at the first `}`.
fn cache_object(metrics: &str) -> &str {
    let tail = metrics.split("\"cache\":{").nth(1).expect("metrics.json has a cache object");
    tail.split('}').next().expect("the cache object closes")
}

fn counter_in(object: &str, name: &str) -> u64 {
    let tail = object.split(&format!("\"{name}\":")).nth(1).unwrap_or_else(|| {
        panic!("cache object lacks {name}: {object}");
    });
    tail.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("integer")
}

#[test]
fn metrics_report_cache_and_routing_counters() {
    let dir = scratch("metrics-on");
    run_algorithm("moela", &dir, &[]);
    let metrics = String::from_utf8(read(&dir.join("metrics.json"))).expect("utf-8 metrics");
    let cache = cache_object(&metrics);
    assert!(cache.contains("\"enabled\":true"), "default runs cache: {cache}");
    assert_eq!(counter_in(cache, "capacity"), 4096, "default capacity: {cache}");
    assert!(counter_in(cache, "misses") > 0, "every unique design misses once: {cache}");
    assert!(
        counter_in(cache, "routing_rebuilds") > 0,
        "at least one routing table is built: {cache}"
    );
    let _ = fs::remove_dir_all(&dir);

    let dir = scratch("metrics-off");
    run_algorithm("moela", &dir, &["--eval-cache", "off"]);
    let metrics = String::from_utf8(read(&dir.join("metrics.json"))).expect("utf-8 metrics");
    let cache = cache_object(&metrics);
    assert!(cache.contains("\"enabled\":false"), "--eval-cache off is recorded: {cache}");
    assert_eq!(counter_in(cache, "hits"), 0, "no memo layer, no hits: {cache}");
    assert_eq!(counter_in(cache, "routing_hits"), 0, "off disables routing reuse as well: {cache}");
    let _ = fs::remove_dir_all(&dir);
}

/// Resume round-trips `--eval-cache` through the manifest, and a run
/// resumed with caching still matches the golden uninterrupted output.
#[test]
fn crash_resume_with_cache_is_bit_identical() {
    let full = scratch("resume-full");
    run_algorithm("moela", &full, &[]);

    let crashed = scratch("resume-crashed");
    let crashed_dir = crashed.to_str().expect("utf-8 path");
    let mut args = vec![
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        "moela",
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        crashed_dir,
    ];
    args.extend_from_slice(&["--crash-after-checkpoints", "1"]);
    let out = moela_dse(&args);
    assert!(!out.status.success(), "crash injection must abort the process");
    let manifest = String::from_utf8(read(&crashed.join("manifest.json"))).expect("utf-8");
    assert!(manifest.contains("\"eval_cache\":4096"), "manifest records the capacity: {manifest}");

    let out = moela_dse(&["resume", crashed_dir, "--threads", "4"]);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    for file in ["trace.csv", "front.csv"] {
        assert_eq!(
            read(&full.join(file)),
            read(&crashed.join(file)),
            "{file} differs after crash+resume with the cache enabled"
        );
    }
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}
